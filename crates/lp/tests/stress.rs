//! Stress tests: branch-and-bound-like bound-change sequences, deadline
//! behaviour, degenerate/structured LP families, and the sparse-backend
//! tier — large synthesized-topology max-flow LPs where the sparse LU
//! core must beat the dense inverse on wall clock, plus deterministic
//! singular-basis injection exercising the recovery ladder on the sparse
//! path.

use metaopt_lp::{
    FactorBackend, FaultPlan, FaultSite, LpProblem, RowSense, Simplex, SimplexConfig,
    SolveStatus, VarId, INF,
};
use proptest::prelude::*;

/// Builds a transportation-style LP (m sources × n sinks) — heavily
/// degenerate, a classic simplex stressor.
fn transportation(m: usize, n: usize, seed: u64) -> LpProblem {
    let mut p = LpProblem::new();
    let mut cost = seed;
    let mut next = move || {
        cost ^= cost << 13;
        cost ^= cost >> 7;
        cost ^= cost << 17;
        (cost % 97) as f64 / 10.0 + 0.1
    };
    let xs: Vec<Vec<VarId>> = (0..m)
        .map(|_| {
            (0..n)
                .map(|_| p.add_var(0.0, INF, next()).unwrap())
                .collect()
        })
        .collect();
    let supply = 10.0 * n as f64 / m as f64;
    for row in &xs {
        p.add_row(RowSense::Le, supply, row.iter().map(|&v| (v, 1.0)))
            .unwrap();
    }
    for j in 0..n {
        p.add_row(RowSense::Ge, 8.0, xs.iter().map(|row| (row[j], 1.0)))
            .unwrap();
    }
    p
}

#[test]
fn transportation_families_solve() {
    for (m, n, seed) in [(3, 4, 1), (5, 5, 2), (6, 8, 3), (10, 10, 4)] {
        let p = transportation(m, n, seed);
        let sol = Simplex::new(&p).solve().unwrap();
        assert_eq!(
            sol.status,
            SolveStatus::Optimal,
            "transportation({m},{n},{seed})"
        );
        assert!(p.max_violation(&sol.x) < 1e-6);
    }
}

/// Simulates a branch-and-bound dive: repeatedly fix variables to zero and
/// warm re-solve, then backtrack (relax) in reverse order. Every warm
/// answer must match a cold solve of the same bound set.
#[test]
fn bnb_like_bound_sequences_stay_consistent() {
    let p = transportation(4, 5, 9);
    let mut warm = Simplex::new(&p);
    let first = warm.solve().unwrap();
    assert_eq!(first.status, SolveStatus::Optimal);

    let fix_order = [0usize, 7, 3, 11, 5];
    let mut fixed: Vec<usize> = Vec::new();
    // Dive.
    for &j in &fix_order {
        warm.set_var_bounds(VarId(j), 0.0, 0.0).unwrap();
        fixed.push(j);
        let w = warm.resolve().unwrap();
        let mut cold_p = p.clone();
        for &k in &fixed {
            cold_p.set_bounds(VarId(k), 0.0, 0.0).unwrap();
        }
        let c = Simplex::new(&cold_p).solve().unwrap();
        assert_eq!(w.status, c.status, "dive at {fixed:?}");
        if w.status == SolveStatus::Optimal {
            assert!(
                (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                "dive {fixed:?}: warm {} cold {}",
                w.objective,
                c.objective
            );
        }
    }
    // Backtrack.
    while let Some(j) = fixed.pop() {
        warm.set_var_bounds(VarId(j), 0.0, INF).unwrap();
        let w = warm.resolve().unwrap();
        let mut cold_p = p.clone();
        for &k in &fixed {
            cold_p.set_bounds(VarId(k), 0.0, 0.0).unwrap();
        }
        let c = Simplex::new(&cold_p).solve().unwrap();
        assert_eq!(w.status, c.status, "backtrack at {fixed:?}");
        if w.status == SolveStatus::Optimal {
            assert!(
                (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                "backtrack {fixed:?}: warm {} cold {}",
                w.objective,
                c.objective
            );
        }
    }
}

/// A deadline in the past aborts promptly with a `DeadlineExceeded` fault
/// instead of hanging; clearing it restores normal solves.
#[test]
fn deadline_aborts_and_clears() {
    let p = transportation(12, 12, 5);
    let mut sx = Simplex::new(&p);
    sx.set_deadline(Some(std::time::Instant::now()));
    match sx.solve() {
        Err(metaopt_lp::LpError::Fault(metaopt_lp::SolverFault::DeadlineExceeded)) => {}
        Ok(sol) => {
            // Tiny problems may finish before the first deadline check —
            // acceptable, but the answer must then be optimal.
            assert_eq!(sol.status, SolveStatus::Optimal);
        }
        Err(e) => panic!("unexpected error {e}"),
    }
    sx.set_deadline(None);
    let sol = sx.solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
}

/// Tight custom configs (frequent refactor, low degen threshold) must not
/// change answers.
#[test]
fn config_variations_agree() {
    let p = transportation(5, 6, 11);
    let baseline = Simplex::new(&p).solve().unwrap().objective;
    for cfg in [
        SimplexConfig {
            refactor_every: 8,
            ..Default::default()
        },
        SimplexConfig {
            degen_threshold: 1,
            ..Default::default()
        },
        SimplexConfig {
            refactor_every: 4,
            degen_threshold: 2,
            ..Default::default()
        },
    ] {
        let sol = Simplex::with_config(&p, cfg).solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective - baseline).abs() <= 1e-6 * (1.0 + baseline.abs()),
            "config changed objective: {} vs {baseline}",
            sol.objective
        );
    }
}

/// Max-flow LP over a synthesized connected topology with `n_nodes`
/// nodes: a bounded pair list keeps the row count in the hundreds (the
/// scale the campaign sweeps actually solve) while the basis stays
/// sparse — each column touches one demand row plus the hops of one
/// path.
fn synth_max_flow(n_nodes: usize, n_pairs: usize, seed: u64) -> LpProblem {
    let topo = metaopt_topology::synth::random_connected(n_nodes, n_nodes / 2, 8.0, seed);
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut pairs = Vec::with_capacity(n_pairs);
    while pairs.len() < n_pairs {
        let s = (next() % n_nodes as u64) as usize;
        let d = (next() % n_nodes as u64) as usize;
        if s != d {
            pairs.push((metaopt_topology::NodeId(s), metaopt_topology::NodeId(d)));
        }
    }
    let inst = metaopt_te::instance::TeInstance::with_pairs(topo, pairs, 2)
        .expect("synth instance");
    let demands: Vec<f64> = (0..inst.n_pairs())
        .map(|_| (next() % 50) as f64 / 10.0)
        .collect();
    let (lp, _) = metaopt_te::flow::opt_max_flow_lp(&inst, &demands).expect("synth lp");
    lp
}

fn timed_solve(backend: FactorBackend, p: &LpProblem) -> (f64, std::time::Duration) {
    let cfg = SimplexConfig {
        backend,
        ..SimplexConfig::default()
    };
    let t0 = std::time::Instant::now();
    let sol = Simplex::with_config(p, cfg).solve().expect("stress solve");
    assert_eq!(sol.status, SolveStatus::Optimal, "{backend} stress solve");
    (sol.objective, t0.elapsed())
}

/// On ≥100-node synthesized instances the sparse backend must agree with
/// the dense one on the objective *and* win on wall clock. Each backend
/// gets two runs and keeps its best, so a single scheduler hiccup cannot
/// decide the comparison; the margin demanded is only "faster at all"
/// because the asymptotics at this size (hundreds of rows, ~1% fill)
/// already put the backends far apart.
#[test]
fn sparse_beats_dense_on_large_synth_instances() {
    for (n_nodes, n_pairs, seed) in [(100usize, 300usize, 7u64), (140, 420, 23)] {
        let p = synth_max_flow(n_nodes, n_pairs, seed);
        let (obj_d1, t_d1) = timed_solve(FactorBackend::Dense, &p);
        let (obj_s1, t_s1) = timed_solve(FactorBackend::SparseLU, &p);
        let (_, t_d2) = timed_solve(FactorBackend::Dense, &p);
        let (_, t_s2) = timed_solve(FactorBackend::SparseLU, &p);
        assert!(
            (obj_d1 - obj_s1).abs() <= 1e-9 * (1.0 + obj_d1.abs()),
            "objectives diverged on synth({n_nodes},{n_pairs},{seed}): dense {obj_d1} sparse {obj_s1}"
        );
        let dense = t_d1.min(t_d2);
        let sparse = t_s1.min(t_s2);
        assert!(
            sparse < dense,
            "sparse ({sparse:?}) did not beat dense ({dense:?}) on synth({n_nodes},{n_pairs},{seed})"
        );
    }
}

/// Deterministic singular-basis injection on the sparse path: the fault
/// plan forces the k-th refactorization to report a singular matrix, and
/// the recovery ladder must clear it — same final objective as an
/// uninjected run, with the fault provably fired.
#[test]
fn singular_refactor_injection_recovers_on_sparse() {
    let p = synth_max_flow(60, 150, 42);
    let cfg = SimplexConfig {
        backend: FactorBackend::SparseLU,
        // Frequent refactorization guarantees the armed occurrence is
        // reached deterministically within the solve.
        refactor_every: 8,
        ..SimplexConfig::default()
    };
    let baseline = Simplex::with_config(&p, cfg.clone())
        .solve()
        .expect("baseline solve");
    assert_eq!(baseline.status, SolveStatus::Optimal);
    for occurrence in [1usize, 3] {
        let plan = FaultPlan::new().inject_at(FaultSite::SingularRefactor, occurrence);
        let mut sx = Simplex::with_config(&p, cfg.clone());
        sx.set_fault_plan(Some(plan.clone()));
        let sol = sx.solve().expect("injected solve must recover");
        assert_eq!(sol.status, SolveStatus::Optimal, "occurrence {occurrence}");
        assert!(
            (sol.objective - baseline.objective).abs()
                <= 1e-9 * (1.0 + baseline.objective.abs()),
            "recovered objective drifted at occurrence {occurrence}: {} vs {}",
            sol.objective,
            baseline.objective
        );
        assert!(
            plan.fired(FaultSite::SingularRefactor) > 0,
            "occurrence {occurrence} never fired — injection site unreachable"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random multi-step bound tightening on random transportation LPs:
    /// warm always agrees with cold.
    #[test]
    fn random_bound_walks_agree(
        m in 2usize..5,
        n in 2usize..5,
        seed in 1u64..500,
        steps in proptest::collection::vec((0usize..25, 0usize..3), 1..6),
    ) {
        let p = transportation(m, n, seed);
        let nvars = m * n;
        let mut warm = Simplex::new(&p);
        if warm.solve().unwrap().status != SolveStatus::Optimal {
            return Ok(());
        }
        let mut bounds: Vec<(f64, f64)> = (0..nvars).map(|_| (0.0, INF)).collect();
        for (raw_j, action) in steps {
            let j = raw_j % nvars;
            let nb = match action {
                0 => (0.0, 0.0),          // fix to zero
                1 => (0.0, 4.0),          // cap
                _ => (0.0, INF),          // relax
            };
            bounds[j] = nb;
            warm.set_var_bounds(VarId(j), nb.0, nb.1).unwrap();
            let w = warm.resolve().unwrap();
            let mut cold_p = p.clone();
            for (k, &(lo, hi)) in bounds.iter().enumerate() {
                cold_p.set_bounds(VarId(k), lo, hi).unwrap();
            }
            let c = Simplex::new(&cold_p).solve().unwrap();
            prop_assert_eq!(w.status, c.status);
            if w.status == SolveStatus::Optimal {
                prop_assert!((w.objective - c.objective).abs() <= 1e-5 * (1.0 + c.objective.abs()),
                    "warm {} cold {}", w.objective, c.objective);
            }
        }
    }
}
