//! Plain-text topology serialization.
//!
//! A minimal, diff-friendly format so users can version their own
//! topologies without pulling in a serialization framework:
//!
//! ```text
//! # comment
//! topology MyWan
//! node Seattle
//! node Denver
//! link Seattle Denver 1000          # bidirectional, capacity per direction
//! edge Denver Seattle 500 2.5       # directed, capacity [weight]
//! ```
//!
//! Node order is preserved; names must be unique and whitespace-free.

use crate::graph::Topology;
use crate::TopologyError;
use std::collections::BTreeMap;

/// Errors specific to parsing (wrapped into [`TopologyError`] variants
/// where possible; syntax errors carry line numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Malformed line with its 1-based number and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A link/edge referenced an undeclared node.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The missing name.
        name: String,
    },
    /// Graph-construction error (bad capacity, self loop, …).
    Graph(TopologyError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node '{name}'")
            }
            ParseError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<TopologyError> for ParseError {
    fn from(e: TopologyError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses a topology from the text format described in the module docs.
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    let mut topo = Topology::new("unnamed");
    let mut nodes: BTreeMap<String, crate::NodeId> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "topology" => {
                let [name] = rest.as_slice() else {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "expected: topology <name>".into(),
                    });
                };
                topo = rename(topo, name);
            }
            "node" => {
                let [name] = rest.as_slice() else {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "expected: node <name>".into(),
                    });
                };
                if nodes.contains_key(*name) {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: format!("duplicate node '{name}'"),
                    });
                }
                let id = topo.add_node(*name);
                nodes.insert((*name).to_string(), id);
            }
            "link" | "edge" => {
                if rest.len() < 3 || rest.len() > 4 {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: format!("expected: {keyword} <a> <b> <capacity> [weight]"),
                    });
                }
                let a = *nodes.get(rest[0]).ok_or_else(|| ParseError::UnknownNode {
                    line: line_no,
                    name: rest[0].into(),
                })?;
                let b = *nodes.get(rest[1]).ok_or_else(|| ParseError::UnknownNode {
                    line: line_no,
                    name: rest[1].into(),
                })?;
                let cap: f64 = rest[2].parse().map_err(|_| ParseError::Syntax {
                    line: line_no,
                    message: format!("bad capacity '{}'", rest[2]),
                })?;
                let weight: f64 = match rest.get(3) {
                    Some(w) => w.parse().map_err(|_| ParseError::Syntax {
                        line: line_no,
                        message: format!("bad weight '{w}'"),
                    })?,
                    None => 1.0,
                };
                if keyword == "link" {
                    topo.add_weighted_edge(a, b, cap, weight)?;
                    topo.add_weighted_edge(b, a, cap, weight)?;
                } else {
                    topo.add_weighted_edge(a, b, cap, weight)?;
                }
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword '{other}'"),
                });
            }
        }
    }
    Ok(topo)
}

/// Serializes a topology to the text format (directed `edge` lines; a
/// round-trip through [`parse_topology`] reproduces the same graph).
pub fn write_topology(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", sanitize(topo.name())));
    for n in topo.nodes() {
        out.push_str(&format!("node {}\n", sanitize(topo.node_name(n))));
    }
    for e in topo.edges() {
        let (a, b) = topo.endpoints(e);
        let w = topo.weight(e);
        if (w - 1.0).abs() < 1e-15 {
            out.push_str(&format!(
                "edge {} {} {}\n",
                sanitize(topo.node_name(a)),
                sanitize(topo.node_name(b)),
                topo.capacity(e)
            ));
        } else {
            out.push_str(&format!(
                "edge {} {} {} {}\n",
                sanitize(topo.node_name(a)),
                sanitize(topo.node_name(b)),
                topo.capacity(e),
                w
            ));
        }
    }
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() || c == '#' { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "_".into()
    } else {
        cleaned
    }
}

fn rename(t: Topology, name: &str) -> Topology {
    // Topology has no rename setter by design (names are immutable after
    // construction elsewhere); rebuild with the new name.
    let mut out = Topology::new(name);
    for n in t.nodes() {
        out.add_node(t.node_name(n));
    }
    for e in t.edges() {
        let (a, b) = t.endpoints(e);
        out.add_weighted_edge(a, b, t.capacity(e), t.weight(e))
            .expect("copying a valid edge");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::abilene;
    use crate::paths::shortest_path;
    use crate::NodeId;

    #[test]
    fn parse_minimal() {
        let t = parse_topology(
            "# demo\ntopology T\nnode a\nnode b\nnode c\nlink a b 100\nedge b c 50 2.5\n",
        )
        .unwrap();
        assert_eq!(t.name(), "T");
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_edges(), 3); // link = 2 directed + 1 edge
        assert_eq!(t.capacity(crate::EdgeId(2)), 50.0);
        assert_eq!(t.weight(crate::EdgeId(2)), 2.5);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_topology("node a\nfrobnicate x\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
        let err = parse_topology("node a\nnode a\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse_topology("node a\nlink a ghost 5\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownNode { line: 2, .. }));
        let err = parse_topology("node a\nnode b\nlink a b nocap\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 3, .. }));
    }

    #[test]
    fn graph_errors_propagate() {
        let err = parse_topology("node a\nedge a a 5\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(TopologyError::SelfLoop(_))));
        let err = parse_topology("node a\nnode b\nedge a b -3\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(TopologyError::BadCapacity(_))));
    }

    #[test]
    fn roundtrip_builtin() {
        let orig = abilene(1000.0);
        let text = write_topology(&orig);
        let back = parse_topology(&text).unwrap();
        assert_eq!(back.name(), orig.name());
        assert_eq!(back.n_nodes(), orig.n_nodes());
        assert_eq!(back.n_edges(), orig.n_edges());
        for e in orig.edges() {
            assert_eq!(back.endpoints(e), orig.endpoints(e));
            assert_eq!(back.capacity(e), orig.capacity(e));
            assert_eq!(back.weight(e), orig.weight(e));
        }
        // Behaviourally identical too.
        let p1 = shortest_path(&orig, NodeId(0), NodeId(10)).unwrap();
        let p2 = shortest_path(&back, NodeId(0), NodeId(10)).unwrap();
        assert_eq!(p1.edges, p2.edges);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = parse_topology("\n  # full comment\nnode a # trailing\nnode b\nlink a b 7 # x\n")
            .unwrap();
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.n_edges(), 2);
    }
}
