//@ rel: crates/server/src/api.rs
fn worker() {
    let _ = std::panic::catch_unwind(|| ());
}

fn launch() {
    std::thread::spawn(|| worker());
}
