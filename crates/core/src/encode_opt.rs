//! Encoding of the inner `OptMaxFlow` problem (Eq. 3) into the single-shot
//! adversarial program.

use crate::finder::OptEncoding;
use crate::CoreResult;
use metaopt_model::{kkt, LinExpr, Model, ObjSense, VarRef};
use metaopt_te::{flow::feasible_flow_inner, FlowVars, TeInstance};

/// Artifacts of the OPT encoding.
#[derive(Debug, Clone)]
pub struct OptEncoded {
    /// Flow variables of the optimal scheme.
    pub flows: FlowVars,
    /// `Σ f` — the optimal scheme's total-flow expression.
    pub total_flow: LinExpr,
}

/// Appends the inner OPT problem for symbolic demands `d` onto `model`.
///
/// * `OptEncoding::Kkt` (paper-faithful, §3.1): primal feasibility +
///   stationarity + complementary slackness — any feasible point is an
///   optimal OPT solution.
/// * `OptEncoding::PrimalOnly` (documented speedup): primal feasibility
///   only. Sound because the OPT value enters the outer objective with a
///   positive sign under maximization, so the outer search itself drives
///   the OPT flows to optimality; this halves the complementarity count.
pub fn encode_opt(
    model: &mut Model,
    inst: &TeInstance,
    d: &[VarRef],
    encoding: OptEncoding,
    dual_bound: f64,
) -> CoreResult<OptEncoded> {
    let d_exprs: Vec<LinExpr> = d.iter().map(|&v| LinExpr::from(v)).collect();
    let (mut inner, flows) = feasible_flow_inner(model, "opt", inst, &d_exprs)?;
    let total_flow = flows.total_flow();
    inner.set_objective(ObjSense::Max, total_flow.clone());
    match encoding {
        OptEncoding::Kkt => {
            kkt::append_kkt(model, &inner, dual_bound)?;
        }
        OptEncoding::PrimalOnly => {
            kkt::append_primal(model, &inner)?;
        }
    }
    Ok(OptEncoded { flows, total_flow })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::line;

    #[test]
    fn kkt_encoding_adds_complementarities() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let mut m = Model::new();
        let d: Vec<VarRef> = (0..inst.n_pairs())
            .map(|k| m.add_var(format!("d{k}"), 0.0, 10.0).unwrap())
            .collect();
        encode_opt(&mut m, &inst, &d, OptEncoding::Kkt, 1e4).unwrap();
        assert!(m.n_complementarities() > 0);
    }

    #[test]
    fn primal_only_adds_none() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let mut m = Model::new();
        let d: Vec<VarRef> = (0..inst.n_pairs())
            .map(|k| m.add_var(format!("d{k}"), 0.0, 10.0).unwrap())
            .collect();
        encode_opt(&mut m, &inst, &d, OptEncoding::PrimalOnly, 1e4).unwrap();
        assert_eq!(m.n_complementarities(), 0);
        assert!(m.n_constraints() > 0);
    }
}
