//! The job-submission wire format: JSON in, a validated [`CellSpec`] out.
//!
//! Admission runs the *full* modelcheck gate
//! ([`metaopt_core::validate_adversarial_setup`]): the spec is built into
//! its single-shot adversarial program once and statically analyzed, so a
//! malformed job is rejected with a diagnostic at submit time instead of
//! failing mid-solve on a worker an hour later. The built model is then
//! discarded — workers rebuild deterministically from the spec, exactly
//! like campaign resume does.

use crate::json::Json;
use metaopt_campaign::{CellHeuristic, CellSpec, TopologySpec};
use metaopt_model::ModelStats;
use metaopt_resilience::ServiceFault;

/// Hard ceilings on admitted job shapes: a multi-tenant server must not
/// let one client submit a job that monopolizes memory or the pool.
#[derive(Debug, Clone)]
pub struct AdmissionLimits {
    /// Maximum `FinderConfig::threads` a job may request.
    pub max_threads: usize,
    /// Maximum branch-and-bound nodes per probe.
    pub max_probe_cap_nodes: usize,
    /// Maximum sweep grid points (`(hi-lo)/resolution`).
    pub max_grid_points: usize,
    /// Maximum single-shot model variables (from the paper's Figure-6 size
    /// axis) — structurally huge encodings are rejected at admission.
    pub max_model_vars: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_threads: 8,
            max_probe_cap_nodes: 2_000_000,
            max_grid_points: 100_000,
            max_model_vars: 2_000_000,
        }
    }
}

/// A parsed, *not yet validated* submission.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Client identity (quota accounting); defaults to `"anonymous"`.
    pub client: String,
    /// Priority class `0..=9` (0 = most urgent); defaults to 5.
    pub priority: u8,
    /// Requested solver threads (0 = server default).
    pub threads: usize,
    /// The work itself.
    pub spec: CellSpec,
}

fn bad(msg: impl Into<String>) -> ServiceFault {
    ServiceFault::AdmissionRejected(msg.into())
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, ServiceFault> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric `{key}`")))
}

fn get_usize(obj: &Json, key: &str, default: usize) -> Result<usize, ServiceFault> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

/// Parses a submission body. Shape:
///
/// ```json
/// {
///   "client": "alice", "priority": 2, "threads": 1,
///   "label": "fig1-dp50",
///   "topology": {"kind": "fig1", "cap": 100.0},
///   "paths_per_pair": 2,
///   "heuristic": {"kind": "dp", "threshold": 50.0},
///   "sweep": {"lo": 0.0, "hi": 100.0, "resolution": 2.0},
///   "budget": {"probe_cap_nodes": 4000, "slice_nodes": 16, "timeout_secs": null},
///   "quantized": [0.0, 50.0, 100.0]
/// }
/// ```
///
/// `topology.kind` is `"fig1"` or `"builtin"` (with `"name"`);
/// `heuristic.kind` is `"dp"` (with `"threshold"`) or `"pop"` (with
/// `"n_parts"`, `"n_insts"`, `"seed"`, optional `"tail_rank"`). `budget`
/// and `quantized` are optional.
pub fn parse_submit(body: &[u8]) -> Result<SubmitRequest, ServiceFault> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let v = Json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;

    let client = match v.get("client") {
        None | Some(Json::Null) => "anonymous".to_string(),
        Some(c) => {
            let c = c.as_str().ok_or_else(|| bad("`client` must be a string"))?;
            if c.is_empty() || c.len() > 64 {
                return Err(bad("`client` must be 1..=64 bytes"));
            }
            c.to_string()
        }
    };
    let priority = get_usize(&v, "priority", 5)?;
    if priority > 9 {
        return Err(bad("`priority` must be 0..=9 (0 = most urgent)"));
    }
    let threads = get_usize(&v, "threads", 0)?;

    let label = match v.get("label") {
        None | Some(Json::Null) => "unnamed-job".to_string(),
        Some(l) => l
            .as_str()
            .ok_or_else(|| bad("`label` must be a string"))?
            .to_string(),
    };

    let topo = v.get("topology").ok_or_else(|| bad("missing `topology`"))?;
    let topology = match topo.get("kind").and_then(Json::as_str) {
        Some("fig1") => TopologySpec::Fig1 {
            cap: get_f64(topo, "cap")?,
        },
        Some("builtin") => TopologySpec::Builtin {
            name: topo
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("builtin topology needs a `name`"))?
                .to_string(),
            cap: get_f64(topo, "cap")?,
        },
        other => return Err(bad(format!("unknown topology kind {other:?}"))),
    };
    let paths_per_pair = get_usize(&v, "paths_per_pair", 2)?;

    let heu = v.get("heuristic").ok_or_else(|| bad("missing `heuristic`"))?;
    let heuristic = match heu.get("kind").and_then(Json::as_str) {
        Some("dp") => CellHeuristic::Dp {
            threshold: get_f64(heu, "threshold")?,
        },
        Some("pop") => CellHeuristic::Pop {
            n_parts: get_usize(heu, "n_parts", 0)?,
            n_insts: get_usize(heu, "n_insts", 0)?,
            seed: heu
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("pop heuristic needs a `seed`"))?,
            tail_rank: match heu.get("tail_rank") {
                None | Some(Json::Null) => None,
                Some(t) => Some(
                    t.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| bad("`tail_rank` must be a non-negative integer"))?,
                ),
            },
        },
        other => return Err(bad(format!("unknown heuristic kind {other:?}"))),
    };

    let sweep = v.get("sweep").ok_or_else(|| bad("missing `sweep`"))?;
    let lo = get_f64(sweep, "lo")?;
    let hi = get_f64(sweep, "hi")?;
    let resolution = get_f64(sweep, "resolution")?;

    let budget = v.get("budget").cloned().unwrap_or(Json::Obj(Vec::new()));
    let probe_cap_nodes = get_usize(&budget, "probe_cap_nodes", 4_000)?;
    let slice_nodes = get_usize(&budget, "slice_nodes", 64)?;
    let timeout_secs = match budget.get("timeout_secs") {
        None | Some(Json::Null) => None,
        Some(t) => Some(
            t.as_f64()
                .filter(|s| *s > 0.0)
                .ok_or_else(|| bad("`timeout_secs` must be a positive number"))?,
        ),
    };

    let quantized = match v.get("quantized") {
        None | Some(Json::Null) => None,
        Some(q) => {
            let levels = q
                .as_array()
                .ok_or_else(|| bad("`quantized` must be an array of numbers"))?
                .iter()
                .map(|l| l.as_f64().ok_or_else(|| bad("`quantized` must be numeric")))
                .collect::<Result<Vec<f64>, _>>()?;
            if levels.is_empty() {
                return Err(bad("`quantized` must not be empty"));
            }
            Some(levels)
        }
    };

    Ok(SubmitRequest {
        client,
        priority: priority as u8,
        threads,
        spec: CellSpec {
            label,
            topology,
            paths_per_pair,
            heuristic,
            lo,
            hi,
            resolution,
            probe_cap_nodes,
            slice_nodes,
            timeout_secs,
            fault_seed: None,
            quantized,
        },
    })
}

/// Validates an admitted request against the server's limits and the
/// modelcheck gate. Returns the single-shot program's size statistics on
/// success (reported back to the client in the `202`).
pub fn validate_submit(
    req: &SubmitRequest,
    limits: &AdmissionLimits,
) -> Result<ModelStats, ServiceFault> {
    let s = &req.spec;
    if req.threads > limits.max_threads {
        return Err(bad(format!(
            "threads {} exceeds server cap {}",
            req.threads, limits.max_threads
        )));
    }
    if !(s.lo.is_finite() && s.hi.is_finite()) || s.lo > s.hi {
        return Err(bad(format!("bad sweep range [{}, {}]", s.lo, s.hi)));
    }
    if !(s.resolution.is_finite() && s.resolution > 0.0) {
        return Err(bad(format!("bad sweep resolution {}", s.resolution)));
    }
    let grid_points = ((s.hi - s.lo) / s.resolution).ceil();
    if grid_points > limits.max_grid_points as f64 {
        return Err(bad(format!(
            "sweep grid of ~{grid_points} points exceeds cap {}",
            limits.max_grid_points
        )));
    }
    if s.probe_cap_nodes == 0 || s.probe_cap_nodes > limits.max_probe_cap_nodes {
        return Err(bad(format!(
            "probe_cap_nodes {} outside 1..={}",
            s.probe_cap_nodes, limits.max_probe_cap_nodes
        )));
    }
    if s.slice_nodes == 0 {
        return Err(bad("slice_nodes must be >= 1"));
    }
    if s.paths_per_pair == 0 {
        return Err(bad("paths_per_pair must be >= 1"));
    }
    if let CellHeuristic::Pop { n_parts, n_insts, .. } = &s.heuristic {
        if *n_parts < 1 || *n_insts < 1 {
            return Err(bad("pop needs n_parts >= 1 and n_insts >= 1"));
        }
    }
    // Build the actual problem and run the full static analyzer over the
    // assembled single-shot program — the modelcheck gate at admission.
    let (inst, heu, cs, cfg) = s
        .build()
        .map_err(|e| bad(format!("spec does not build: {e}")))?;
    let stats = metaopt_core::validate_adversarial_setup(&inst, &heu, &cs, &cfg)
        .map_err(|e| bad(format!("modelcheck gate: {e}")))?;
    if stats.n_vars > limits.max_model_vars {
        return Err(bad(format!(
            "model of {} variables exceeds cap {}",
            stats.n_vars, limits.max_model_vars
        )));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fig1_body(label: &str) -> String {
        format!(
            r#"{{"client":"alice","priority":2,"label":"{label}",
                "topology":{{"kind":"fig1","cap":100.0}},
                "heuristic":{{"kind":"dp","threshold":50.0}},
                "sweep":{{"lo":40.0,"hi":60.0,"resolution":10.0}},
                "budget":{{"probe_cap_nodes":4000,"slice_nodes":64}}}}"#
        )
    }

    #[test]
    fn parses_and_validates_a_good_job() {
        let req = parse_submit(fig1_body("t1").as_bytes()).unwrap();
        assert_eq!(req.client, "alice");
        assert_eq!(req.priority, 2);
        assert_eq!(req.spec.label, "t1");
        let stats = validate_submit(&req, &AdmissionLimits::default()).unwrap();
        assert!(stats.n_vars > 0);
    }

    #[test]
    fn defaults_fill_in() {
        let body = r#"{"topology":{"kind":"fig1","cap":100.0},
            "heuristic":{"kind":"dp","threshold":50.0},
            "sweep":{"lo":0.0,"hi":100.0,"resolution":2.0}}"#;
        let req = parse_submit(body.as_bytes()).unwrap();
        assert_eq!(req.client, "anonymous");
        assert_eq!(req.priority, 5);
        assert_eq!(req.threads, 0);
        assert_eq!(req.spec.slice_nodes, 64);
    }

    #[test]
    fn rejects_malformed_submissions() {
        let cases: Vec<String> = vec![
            "not json".into(),
            "{}".into(),
            r#"{"topology":{"kind":"hypercube","cap":1.0},
                "heuristic":{"kind":"dp","threshold":1.0},
                "sweep":{"lo":0,"hi":1,"resolution":1}}"#
                .into(),
            fig1_body("x").replace("\"priority\":2", "\"priority\":12"),
            fig1_body("x").replace("\"threshold\":50.0", "\"threshold\":\"high\""),
        ];
        for body in cases {
            assert!(parse_submit(body.as_bytes()).is_err(), "accepted `{body}`");
        }
    }

    #[test]
    fn validation_rejects_out_of_limit_jobs() {
        let limits = AdmissionLimits::default();
        let mut req = parse_submit(fig1_body("x").as_bytes()).unwrap();
        req.threads = limits.max_threads + 1;
        assert!(validate_submit(&req, &limits).is_err());

        let mut req = parse_submit(fig1_body("x").as_bytes()).unwrap();
        req.spec.lo = 10.0;
        req.spec.hi = 0.0;
        assert!(validate_submit(&req, &limits).is_err());

        let mut req = parse_submit(fig1_body("x").as_bytes()).unwrap();
        req.spec.resolution = 1e-9;
        assert!(validate_submit(&req, &limits).is_err());

        // Unknown builtin topology only fails at build time — the gate
        // catches it.
        let mut req = parse_submit(fig1_body("x").as_bytes()).unwrap();
        req.spec.topology = TopologySpec::Builtin {
            name: "tokamak".into(),
            cap: 1.0,
        };
        let err = validate_submit(&req, &limits).unwrap_err();
        assert_eq!(err.kind(), "admission_rejected");
    }
}
