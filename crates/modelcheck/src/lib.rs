#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-modelcheck
//!
//! A static analyzer for the metaopt optimization stack. The soundness of
//! every reported adversarial gap rests on the KKT rewrite being *encoded*
//! correctly: a silently flipped dual sign, a stationarity row that does not
//! balance the objective gradient, or a dangling complementarity pair
//! produces a "gap" that is an encoding bug, not a heuristic failure. This
//! crate walks a [`Model`] (and, separately, a lowered
//! [`LpProblem`](metaopt_lp::LpProblem)) *before any solver runs* and emits
//! structured [`Diagnostic`]s with stable codes, severities, and source
//! spans pointing back to the originating constraint/variable names.
//!
//! Four check families (see DESIGN.md §10 for the full catalogue):
//!
//! * **MC0xx structural** ([`structural`]) — empty/infeasible rows,
//!   inverted bounds, unreferenced or duplicate variables, complementarity
//!   pairs referencing fixed or missing variables,
//! * **MC1xx KKT** ([`kkt`]) — every primal row has a matching dual
//!   multiplier with the right sign convention, stationarity coefficients
//!   balance the primal gradients, every inequality appears in exactly one
//!   complementarity pair, big-M constants dominate variable bounds,
//! * **MC2xx numerical** ([`numerical`]) — coefficient dynamic range,
//!   mixed magnitudes in one row, near-zero entries that should be dropped,
//! * **MC3xx TE-semantic** ([`semantic`]) — demand rows touch only their
//!   own commodity's path variables, capacity rows cover every used edge
//!   with the exact path incidence.
//!
//! The KKT checks need no side channel from the rewriter: they reconstruct
//! the KKT system from the stable naming convention
//! `{inner}::pf[{c}]` / `{inner}::lam[{c}]` / `{inner}::mu[{c}]` /
//! `{inner}::stat[{var}]` that [`metaopt_model::kkt::append_kkt`] emits.
//! Inner problems encoded primal-only (no multipliers at all for a prefix)
//! are recognized as intentional and skipped.
//!
//! `metaopt-core` runs [`check_model`] as a deny-by-default gate before
//! every solve: error-severity diagnostics abort in debug builds and are
//! downgraded to recorded `SolverFault::EncodingSuspect` warnings in
//! release builds.

pub mod kkt;
pub mod numerical;
pub mod semantic;
pub mod structural;

mod lp_checks;
mod names;

pub use lp_checks::check_lp;
pub use semantic::TopologyContext;

use metaopt_model::Model;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth a look, never blocks a solve.
    Info,
    /// Suspicious but possibly intentional; never blocks a solve.
    Warning,
    /// An encoding bug: any result computed from this model is untrusted.
    /// The `core::finder` gate refuses to solve (debug) or records a
    /// solver fault (release).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the model a diagnostic points.
#[derive(Debug, Clone, PartialEq)]
pub enum Span {
    /// A model variable, by dense index and diagnostic name.
    Var {
        /// Dense variable index.
        index: usize,
        /// Diagnostic name (may be empty).
        name: String,
    },
    /// A model constraint, by insertion index and diagnostic name.
    Constraint {
        /// Constraint index.
        index: usize,
        /// Diagnostic name (may be empty).
        name: String,
    },
    /// A complementarity pair, by insertion index and multiplier name.
    Complementarity {
        /// Pair index.
        index: usize,
        /// Diagnostic name of the multiplier variable.
        multiplier: String,
    },
    /// The objective function.
    Objective,
    /// A row of a lowered `LpProblem`.
    LpRow {
        /// Row index.
        index: usize,
    },
    /// A column of a lowered `LpProblem`.
    LpVar {
        /// Column index.
        index: usize,
    },
    /// The model as a whole.
    Model,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Var { index, name } if name.is_empty() => write!(f, "var #{index}"),
            Span::Var { index, name } => write!(f, "var #{index} `{name}`"),
            Span::Constraint { index, name } if name.is_empty() => write!(f, "row #{index}"),
            Span::Constraint { index, name } => write!(f, "row #{index} `{name}`"),
            Span::Complementarity { index, multiplier } => {
                write!(f, "compl #{index} (mult `{multiplier}`)")
            }
            Span::Objective => write!(f, "objective"),
            Span::LpRow { index } => write!(f, "lp row #{index}"),
            Span::LpVar { index } => write!(f, "lp col #{index}"),
            Span::Model => write!(f, "model"),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`MC0xx` structural, `MC1xx` KKT, `MC2xx` numerical,
    /// `MC3xx` TE-semantic). Codes never change meaning across versions.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description with concrete values.
    pub message: String,
    /// Source span back to the originating name.
    pub span: Span,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// The outcome of an analysis pass: an ordered list of diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, code: &'static str, severity: Severity, span: Span, message: String) {
        self.diags.push(Diagnostic {
            code,
            severity,
            message,
            span,
        });
    }

    /// Absorbs another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any error-severity diagnostic was emitted.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is completely empty.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether a diagnostic with the given code was emitted.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// One-line summary: `"2 errors, 1 warning (MC102, MC104, MC201)"`.
    pub fn summary(&self) -> String {
        let errors = self.errors().count();
        let warnings = self
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        let mut codes: Vec<&str> = self.diags.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        format!(
            "{errors} error(s), {warnings} warning(s) ({})",
            codes.join(", ")
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Numeric thresholds used by the MC2xx checks.
#[derive(Debug, Clone, Copy)]
pub struct NumericThresholds {
    /// Max tolerated `max|coef| / min|coef|` within one row before a
    /// mixed-magnitude warning (MC201).
    pub row_range_ratio: f64,
    /// Coefficients below this magnitude (but nonzero) should have been
    /// dropped (MC202).
    pub tiny: f64,
    /// Coefficients above this magnitude risk conditioning trouble (MC203).
    pub huge: f64,
    /// Max tolerated model-wide coefficient range (MC204).
    pub model_range_ratio: f64,
}

impl Default for NumericThresholds {
    fn default() -> Self {
        NumericThresholds {
            row_range_ratio: 1e8,
            tiny: 1e-10,
            huge: 1e10,
            model_range_ratio: 1e12,
        }
    }
}

/// Configuration of an analysis pass.
#[derive(Debug, Clone, Default)]
pub struct CheckConfig {
    /// Numeric thresholds for the MC2xx family.
    pub numeric: NumericThresholds,
    /// TE-semantic contexts: `(inner-problem prefix, topology shape)`. Only
    /// prefixes registered here get the MC3xx checks (POP sub-instances,
    /// whose partitions are internal to the encoder, are typically not
    /// registered and are skipped).
    pub semantic: Vec<(String, TopologyContext)>,
}

impl CheckConfig {
    /// Registers a TE-semantic context for an inner-problem prefix.
    pub fn with_semantic(mut self, prefix: impl Into<String>, ctx: TopologyContext) -> Self {
        self.semantic.push((prefix.into(), ctx));
        self
    }
}

/// Runs every model-level check family over `model`.
///
/// The returned [`Report`] lists findings in family order (structural,
/// KKT, numerical, semantic). A clean KKT encoding produced by
/// [`metaopt_model::kkt::append_kkt`] yields zero error-severity
/// diagnostics.
pub fn check_model(model: &Model, cfg: &CheckConfig) -> Report {
    let mut report = Report::new();
    report.merge(structural::check(model));
    report.merge(kkt::check(model));
    report.merge(numerical::check(model, &cfg.numeric));
    for (prefix, ctx) in &cfg.semantic {
        report.merge(semantic::check(model, prefix, ctx));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::{LinExpr, Model, ObjSense, Sense};

    #[test]
    fn clean_tiny_model_is_clean() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0).unwrap();
        m.constrain_named("cap", x, Sense::Le, 4.0).unwrap();
        m.set_objective(ObjSense::Max, LinExpr::from(x)).unwrap();
        let r = check_model(&m, &CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn report_summary_counts() {
        let mut r = Report::new();
        r.push("MC001", Severity::Error, Span::Model, "boom".into());
        r.push("MC201", Severity::Warning, Span::Objective, "meh".into());
        assert!(r.has_errors());
        assert!(r.has_code("MC201"));
        assert!(r.summary().starts_with("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn diagnostic_display_is_stable() {
        let d = Diagnostic {
            code: "MC104",
            severity: Severity::Error,
            message: "dangling".into(),
            span: Span::Constraint {
                index: 3,
                name: "opt::pf[c0]".into(),
            },
        };
        assert_eq!(
            d.to_string(),
            "error [MC104] row #3 `opt::pf[c0]`: dangling"
        );
    }
}
