//! Figure 1 — Demand Pinning's suboptimality on a 3-node topology with
//! unidirectional links.
//!
//! The paper's figure shows a concrete instance where DP (threshold 50)
//! loses flow versus OPT because the at-threshold demand 1→3 is pinned on
//! its (two-hop) shortest path, displacing the single-hop demands 1→2 and
//! 2→3. The exact capacities of the figure are not recoverable from the
//! text (see EXPERIMENTS.md); this harness reproduces the *phenomenon* on
//! the canonical reconstruction and then asks the white-box finder for the
//! provably worst input on the same topology.

use metaopt_bench::{campaign_dir, f, run_or_resume_campaign, CsvOut};
use metaopt_campaign::{CellHeuristic, CellSpec, CellStatus, TopologySpec};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_te::{demand_pinning::demand_pinning, opt::opt_max_flow, TeInstance};
use metaopt_topology::synth::figure1_triangle;

fn main() {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let demands = vec![50.0, 100.0, 100.0]; // 1→3 at the threshold
    let t_d = 50.0;

    println!("Figure 1 reconstruction: capacities 100, threshold {t_d}");
    println!("demands: 1→3 = 50, 1→2 = 100, 2→3 = 100\n");

    let dp = demand_pinning(&inst, &demands, t_d).unwrap();
    let opt = opt_max_flow(&inst, &demands).unwrap();

    let mut table = CsvOut::new("fig1_allocations", &["demand", "DP flow", "OPT flow"]);
    let names = ["1→3", "1→2", "2→3"];
    for (k, name) in names.iter().enumerate() {
        let dpf: f64 = dp.flows[k].iter().sum();
        let optf: f64 = opt.flows[k].iter().sum();
        table.row([name.to_string(), f(dpf), f(optf)]);
    }
    table.row([
        "TOTAL".to_string(),
        f(dp.total_flow),
        f(opt.total_flow),
    ]);
    table.print();
    let csv = table.flush().unwrap();
    println!(
        "\ngap = {} flow units ({:.1}% of OPT)   [csv: {}]",
        f(opt.total_flow - dp.total_flow),
        100.0 * (opt.total_flow - dp.total_flow) / opt.total_flow,
        csv.display()
    );

    // The provably worst input on this topology and threshold. With
    // `METAOPT_CAMPAIGN_DIR` set the search runs as a journaled campaign
    // cell (interruptible and resumable); otherwise it runs in-process.
    if let Some(dir) = campaign_dir() {
        let cell = CellSpec {
            label: "fig1-dp-50".into(),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold: t_d },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 8_000,
            slice_nodes: 64,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        };
        let report = run_or_resume_campaign(&dir, "fig1", vec![cell]).unwrap();
        println!("\nwhite-box worst case on the same topology (campaign-backed):");
        match &report.state.status[0] {
            CellStatus::Done(o) => println!(
                "  demands = ({})  certified gap >= {} ({} probes, {} nodes)",
                o.demands.iter().map(|&d| f(d)).collect::<Vec<_>>().join(", "),
                o.verified_gap.map_or("-".into(), f),
                o.probes,
                o.nodes
            ),
            other => println!("  cell did not complete: {other:?}"),
        }
        return;
    }
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: t_d },
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    println!("\nwhite-box worst case on the same topology:");
    println!(
        "  demands = ({}, {}, {})  gap = {} ({:?})",
        f(r.demands[0]),
        f(r.demands[1]),
        f(r.demands[2]),
        f(r.verified_gap),
        r.status
    );
}
