//! `OptMaxFlow` (Eq. 3): the optimal scheme and its fast evaluator.

use crate::flow::opt_max_flow_lp;
use crate::instance::TeInstance;
use crate::{TeError, TeResult};
use metaopt_lp::{Simplex, SolveStatus};

/// Result of evaluating the optimal scheme on concrete demands.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// Total carried flow `Σ_k f_k`.
    pub total_flow: f64,
    /// `flows[k][p]`: flow of pair `k` on its `p`-th path.
    pub flows: Vec<Vec<f64>>,
}

/// Solves `OptMaxFlow(V, E, D, P)` for concrete demand volumes.
///
/// The polytope always contains `f = 0`, so the LP is feasible and bounded;
/// any other status is a solver-level error.
pub fn opt_max_flow(inst: &TeInstance, demands: &[f64]) -> TeResult<OptOutcome> {
    let (lp, grid) = opt_max_flow_lp(inst, demands)?;
    let sol = Simplex::new(&lp).solve()?;
    if sol.status != SolveStatus::Optimal {
        return Err(TeError::Model(format!(
            "OptMaxFlow LP ended {:?} (expected Optimal)",
            sol.status
        )));
    }
    let flows = grid
        .iter()
        .map(|vars| vars.iter().map(|v| sol.x[v.0]).collect())
        .collect();
    Ok(OptOutcome {
        total_flow: -sol.objective,
        flows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::{directed_line, line};

    #[test]
    fn directed_instances_need_reachable_pairs() {
        // all_pairs on a one-way chain contains unreachable pairs → error.
        assert!(TeInstance::all_pairs(directed_line(3, 10.0), 2).is_err());
        // Explicit reachable pairs work.
        let t = directed_line(3, 10.0);
        let pairs = vec![
            (metaopt_topology::NodeId(0), metaopt_topology::NodeId(2)),
            (metaopt_topology::NodeId(0), metaopt_topology::NodeId(1)),
            (metaopt_topology::NodeId(1), metaopt_topology::NodeId(2)),
        ];
        let inst = TeInstance::with_pairs(t, pairs, 2).unwrap();
        let out = opt_max_flow(&inst, &[9.0, 9.0, 9.0]).unwrap();
        // Both edges have cap 10; max total = 9 + 9 + min spare = optimal
        // drops the long 0→2 demand: f01 = 9, f12 = 9, f02 = 1 → 19.
        assert!((out.total_flow - 19.0).abs() < 1e-7, "{}", out.total_flow);
    }

    #[test]
    fn zero_demands_zero_flow() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 2).unwrap();
        let out = opt_max_flow(&inst, &vec![0.0; inst.n_pairs()]).unwrap();
        assert_eq!(out.total_flow, 0.0);
        assert!(out.flows.iter().flatten().all(|&f| f.abs() < 1e-9));
    }

    #[test]
    fn respects_demand_and_capacity() {
        let inst = TeInstance::all_pairs(line(4, 10.0), 2).unwrap();
        let mut demands = vec![0.0; inst.n_pairs()];
        demands[0] = 25.0; // 0→1, capped by capacity 10
        let out = opt_max_flow(&inst, &demands).unwrap();
        // 0→1 direct path cap 10; no second simple path on a line... the
        // line is bidirectional so the only simple alternative 0→...→1
        // does not exist; carried = 10.
        assert!((out.total_flow - 10.0).abs() < 1e-7, "{}", out.total_flow);
    }

    #[test]
    fn multipath_uses_alternates() {
        use metaopt_topology::Topology;
        // Two parallel routes a→b: direct (cap 5) and via c (cap 5 each hop).
        let mut t = Topology::new("par");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_edge(a, b, 5.0).unwrap();
        t.add_edge(a, c, 5.0).unwrap();
        t.add_edge(c, b, 5.0).unwrap();
        let inst = TeInstance::with_pairs(t, vec![(a, b)], 3).unwrap();
        let out = opt_max_flow(&inst, &[8.0]).unwrap();
        assert!((out.total_flow - 8.0).abs() < 1e-7);
        // Direct path carries 5, detour 3 (or any split summing to 8).
        let total: f64 = out.flows[0].iter().sum();
        assert!((total - 8.0).abs() < 1e-7);
    }

    #[test]
    fn wrong_demand_length_rejected() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        assert!(matches!(
            opt_max_flow(&inst, &[1.0, 2.0]),
            Err(TeError::DemandMismatch { .. })
        ));
    }
}
