//! End-to-end API tests: a real `GapServer` behind a real TCP listener,
//! exercised through the std-only HTTP client.

use metaopt_server::client::{request, Response};
use metaopt_server::json::Json;
use metaopt_server::{serve, GapServer, ServerConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaopt-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Harness {
    addr: String,
    serve_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Harness {
    fn start(cfg: ServerConfig) -> Harness {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = GapServer::open(cfg).unwrap();
        let workers = server.start_workers();
        let serve_server = Arc::clone(&server);
        let serve_thread =
            std::thread::spawn(move || serve(&serve_server, listener).unwrap());
        drop(server);
        Harness {
            addr,
            serve_thread: Some(serve_thread),
            workers,
        }
    }

    fn call(&self, method: &str, path: &str, body: Option<&[u8]>) -> Response {
        request(&self.addr, method, path, body, Duration::from_secs(120)).unwrap()
    }

    fn job(&self, id: u64) -> Json {
        let resp = self.call("GET", &format!("/jobs/{id}"), None);
        assert_eq!(resp.status, 200, "{}", resp.text());
        Json::parse(&resp.text()).unwrap()
    }

    fn wait_status(&self, id: u64, want: &str, timeout: Duration) -> Json {
        let deadline = Instant::now() + timeout;
        loop {
            let job = self.job(id);
            let status = job.get("status").and_then(Json::as_str).unwrap().to_string();
            if status == want {
                return job;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} stuck at `{status}`, wanted `{want}`"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn shutdown(mut self) {
        let resp = self.call("POST", "/admin/drain", None);
        assert_eq!(resp.status, 202, "{}", resp.text());
        self.serve_thread.take().unwrap().join().unwrap();
        for w in self.workers.drain(..) {
            w.join().unwrap();
        }
    }
}

fn job_body(label: &str, client: &str, lo: f64, hi: f64, resolution: f64) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"{}\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"fig1\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":50.0}},",
            "\"sweep\":{{\"lo\":{},\"hi\":{},\"resolution\":{}}},",
            "\"budget\":{{\"probe_cap_nodes\":4000,\"slice_nodes\":64}}}}"
        ),
        client, label, lo, hi, resolution
    )
    .into_bytes()
}

fn cfg(tag: &str) -> ServerConfig {
    ServerConfig {
        name: format!("test-{tag}"),
        dir: tmp_dir(tag),
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn submit_runs_to_certified_result_and_streams_events() {
    let h = Harness::start(cfg("api-happy"));

    // Durable admission: 202 with the assigned id and a Location header.
    let resp = h.call("POST", "/jobs", Some(&job_body("happy", "alice", 40.0, 60.0, 10.0)));
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert_eq!(resp.header("location"), Some("/jobs/1"));
    let ack = Json::parse(&resp.text()).unwrap();
    assert_eq!(ack.get("id").and_then(Json::as_u64), Some(1));
    assert!(ack.get("model_vars").and_then(Json::as_u64).unwrap() > 0);

    // The job runs to a certified result.
    let done = h.wait_status(1, "done", Duration::from_secs(120));
    let result = done.get("result").unwrap();
    let gap = result.get("verified_gap").and_then(Json::as_f64).unwrap();
    assert!(gap > 0.0, "fig1/dp-50 must certify a positive gap, got {gap}");
    let wire = result.get("outcome_wire").and_then(Json::as_str).unwrap();
    assert!(!wire.is_empty());

    // The listing shows it.
    let list = Json::parse(&h.call("GET", "/jobs", None).text()).unwrap();
    assert_eq!(list.as_array().unwrap().len(), 1);

    // The event stream replays the whole lifecycle and terminates.
    let events = h.call("GET", "/jobs/1/events", None);
    assert_eq!(events.status, 200);
    assert_eq!(events.header("transfer-encoding"), Some("chunked"));
    let lines: Vec<Json> = events
        .text()
        .lines()
        .map(|l| Json::parse(l).expect("every event line is valid JSON"))
        .collect();
    let kinds: Vec<String> = lines
        .iter()
        .map(|l| l.get("event").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert_eq!(kinds.first().map(String::as_str), Some("admitted"));
    assert!(kinds.iter().any(|k| k == "run"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "checkpoint"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("done"));

    // Health endpoint reports the tally.
    let health = Json::parse(&h.call("GET", "/healthz", None).text()).unwrap();
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("done").and_then(Json::as_u64), Some(1));

    h.shutdown();
}

#[test]
fn malformed_and_unknown_requests_map_to_client_errors() {
    let h = Harness::start(cfg("api-errors"));

    let resp = h.call("POST", "/jobs", Some(b"{not json"));
    assert_eq!(resp.status, 422, "{}", resp.text());
    let err = Json::parse(&resp.text()).unwrap();
    assert_eq!(
        err.get("error").and_then(Json::as_str),
        Some("admission_rejected")
    );

    // A shape that parses but fails the modelcheck admission gate.
    let resp = h.call(
        "POST",
        "/jobs",
        Some(&job_body("bad-range", "alice", 60.0, 40.0, 10.0)),
    );
    assert_eq!(resp.status, 422, "{}", resp.text());

    assert_eq!(h.call("GET", "/jobs/999", None).status, 404);
    assert_eq!(h.call("GET", "/jobs/zero", None).status, 400);
    assert_eq!(h.call("DELETE", "/jobs/999", None).status, 404);
    assert_eq!(h.call("GET", "/nope", None).status, 404);
    assert_eq!(h.call("PUT", "/jobs/1", None).status, 405);

    h.shutdown();
}

#[test]
fn cancel_queued_immediately_and_running_at_checkpoint() {
    let mut config = cfg("api-cancel");
    config.workers = 1; // one worker: job 2 must queue behind job 1
    let h = Harness::start(config);

    // Job 1: long enough to still be running when we cancel it (fine
    // resolution, small slices → many checkpoint boundaries).
    let body = concat!(
        "{\"client\":\"alice\",\"label\":\"long\",",
        "\"topology\":{\"kind\":\"fig1\",\"cap\":100.0},",
        "\"heuristic\":{\"kind\":\"dp\",\"threshold\":50.0},",
        "\"sweep\":{\"lo\":0.0,\"hi\":100.0,\"resolution\":0.5},",
        "\"budget\":{\"probe_cap_nodes\":4000,\"slice_nodes\":8}}"
    );
    assert_eq!(h.call("POST", "/jobs", Some(body.as_bytes())).status, 202);
    assert_eq!(
        h.call("POST", "/jobs", Some(&job_body("queued", "alice", 40.0, 60.0, 10.0)))
            .status,
        202
    );

    // Job 2 is queued, not running: cancellation completes immediately.
    let resp = h.call("DELETE", "/jobs/2", None);
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body2 = Json::parse(&resp.text()).unwrap();
    assert_eq!(body2.get("status").and_then(Json::as_str), Some("cancelled"));

    // Job 1 drains to its next checkpoint and then cancels.
    let resp = h.call("DELETE", "/jobs/1", None);
    assert_eq!(resp.status, 200, "{}", resp.text());
    h.wait_status(1, "cancelled", Duration::from_secs(120));

    // Cancelling a terminal job conflicts.
    assert_eq!(h.call("DELETE", "/jobs/1", None).status, 409);

    h.shutdown();
}

#[test]
fn drain_preserves_queued_jobs_for_the_next_boot() {
    let mut config = cfg("api-drain-resume");
    config.workers = 1;
    let dir = config.dir.clone();
    let name = config.name.clone();
    let h = Harness::start(config);

    // Enough queued work that drain cannot have finished it all.
    for i in 0..3 {
        let resp = h.call(
            "POST",
            "/jobs",
            Some(&job_body(&format!("j{i}"), "alice", 40.0, 60.0, 10.0)),
        );
        assert_eq!(resp.status, 202, "{}", resp.text());
    }
    h.shutdown();

    // Second boot on the same directory: the journal replays, leftover
    // pending jobs re-enter the queue and run to completion.
    let h2 = Harness::start(ServerConfig {
        name,
        dir,
        workers: 1,
        ..ServerConfig::default()
    });
    for id in 1..=3u64 {
        let job = h2.wait_status(id, "done", Duration::from_secs(240));
        assert!(job
            .get("result")
            .and_then(|r| r.get("verified_gap"))
            .and_then(Json::as_f64)
            .is_some());
    }
    // Draining refuses new admissions.
    let resp = h2.call("POST", "/admin/drain", None);
    assert_eq!(resp.status, 202);
    // The server may take a moment to finish stopping; admission must
    // refuse either way (503 draining) or the connection fails outright.
    if let Ok(resp) = request(
        &h2.addr,
        "POST",
        "/jobs",
        Some(&job_body("late", "alice", 40.0, 60.0, 10.0)),
        Duration::from_secs(5),
    ) {
        assert_eq!(resp.status, 503, "{}", resp.text());
    }
    if let Some(t) = h2.serve_thread {
        t.join().unwrap();
    }
    for w in h2.workers {
        w.join().unwrap();
    }
}

/// A worker panic mid-job is contained: the attempt is journaled with
/// failure kind `panic`, the job is quarantined immediately (a panic is
/// almost certainly deterministic, so retries would burn attempts), and
/// the server still drains cleanly — the panicking worker must neither
/// wedge `drain` nor leave the job stuck in `running`.
#[test]
fn worker_panic_quarantines_job_and_server_still_drains() {
    use metaopt_resilience::{FaultPlan, FaultSite};
    let plan = FaultPlan::new().inject(FaultSite::EvalPanic);
    let mut config = cfg("api-worker-panic");
    config.fault_plan = Some(plan.clone());
    let h = Harness::start(config);

    let resp = h.call("POST", "/jobs", Some(&job_body("boom", "mallory", 40.0, 60.0, 10.0)));
    assert_eq!(resp.status, 202, "{}", resp.text());

    let job = h.wait_status(1, "quarantined", Duration::from_secs(60));
    assert_eq!(job.get("running").and_then(Json::as_bool), Some(false));
    let failures = job.get("failures").unwrap().as_array().unwrap();
    assert!(
        failures
            .iter()
            .any(|f| f.get("kind").and_then(Json::as_str) == Some("panic")),
        "quarantine must record the contained panic: {job:?}"
    );
    assert_eq!(plan.fired(FaultSite::EvalPanic), 1);

    // The pool survived the panic: a drain completes and joins all workers.
    h.shutdown();
}
