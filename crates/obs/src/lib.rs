#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-obs
//!
//! The workspace's observability subsystem: a std-only (zero external
//! dependencies) metrics registry, structured tracer, and flight
//! recorder. Everything above it in the dependency graph — `lp`, `milp`,
//! `campaign`, `server`, the bench harnesses — records through handles
//! minted here; the gap server's `GET /metrics` renders the registry in
//! Prometheus text exposition format and `GET /admin/trace` tails the
//! flight recorder as NDJSON.
//!
//! Three design rules hold everywhere (DESIGN.md §15):
//!
//! 1. **Observation never perturbs computation.** Handles are plain
//!    atomics; no metric or span feeds back into solver decisions, so the
//!    deterministic wave engine stays bit-identical with the recorder on.
//! 2. **Disabled means free.** [`Registry::disabled`] /
//!    [`Tracer::disabled`] handles are `None`-backed no-ops; the `bnb`
//!    bench pins their overhead at under 2%.
//! 3. **Time is injected.** Spans are clocked by the [`Clock`] trait —
//!    this crate hosts the workspace's one approved `Instant::now()`
//!    call site (`clock::SystemClock`), checked by lint AN001.

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{Clock, SystemClock, TestClock};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{Record, RecordKind, SpanGuard, Tracer};
