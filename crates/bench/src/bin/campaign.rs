//! Crash-safe campaign harness over the paper's experiment grid.
//!
//! Unlike the one-shot `fig*.rs` harnesses, this bin runs the grid through
//! `metaopt-campaign`: every state transition is journaled, workers are
//! supervised and panic-contained, and an interrupted run — graceful drain
//! or `kill -9` — resumes from its write-ahead journal without redoing
//! completed cells or restarting in-flight branch-and-bound searches.
//!
//! ```text
//! campaign run    <dir>           start a fresh campaign in <dir>
//! campaign resume <dir>           continue after a crash or drain
//! campaign status <dir> [--json]  replay the journal and report, without
//!                                 running; `--json` emits one machine-
//!                                 readable JSON document on stdout
//! ```
//!
//! `status` exit codes are scriptable: `0` all cells done, `3` cells still
//! pending, `4` cells quarantined (quarantine wins when both apply) — so
//! CI can gate on `campaign status "$dir" --json`.
//!
//! Environment:
//! * `METAOPT_QUICK=1` — small Figure-1-only grid,
//! * `METAOPT_BUDGET_SECS` — per-cell wall-clock timeout (default 30),
//! * `METAOPT_CAMPAIGN_WORKERS` — worker threads (default 2),
//! * `METAOPT_CAMPAIGN_DEADLINE_SECS` — drain gracefully after this many
//!   seconds, checkpointing in-flight sweeps (resume later with `resume`).

use metaopt_bench::{budget_secs, quick_mode, CsvOut};
use metaopt_campaign::{
    resume, run, status, CampaignConfig, CampaignState, CellHeuristic, CellSpec, CellStatus,
    RunEnd, ShutdownFlag, TopologySpec,
};
use metaopt_obs::trace::DEFAULT_RING_CAPACITY;
use metaopt_obs::{SystemClock, Tracer};
use metaopt_resilience::RetryPolicy;
use metaopt_server::Json;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fig1_cells(timeout: Option<f64>) -> Vec<CellSpec> {
    let mut cells: Vec<CellSpec> = [30.0, 50.0, 70.0]
        .into_iter()
        .map(|threshold| CellSpec {
            label: format!("fig1-dp-{threshold}"),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 8_000,
            slice_nodes: 64,
            timeout_secs: timeout,
            fault_seed: None,
            quantized: None,
        })
        .collect();
    for (mode, tail_rank) in [("avg", None), ("tail0", Some(0))] {
        cells.push(CellSpec {
            label: format!("fig1-pop-2x3-{mode}"),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Pop {
                n_parts: 2,
                n_insts: 3,
                seed: 42,
                tail_rank,
            },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 8_000,
            slice_nodes: 64,
            timeout_secs: timeout,
            fault_seed: None,
            quantized: None,
        });
    }
    cells
}

fn wan_cells(timeout: Option<f64>) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for name in ["swan", "b4", "abilene", "geant"] {
        for (variant, quantized) in [
            ("cont", None),
            ("quant", Some(vec![0.0, 50.0, 1000.0])),
        ] {
            cells.push(CellSpec {
                label: format!("{name}-dp-50-{variant}"),
                topology: TopologySpec::Builtin {
                    name: name.into(),
                    cap: 1000.0,
                },
                paths_per_pair: 2,
                heuristic: CellHeuristic::Dp { threshold: 50.0 },
                lo: 0.0,
                hi: 1000.0,
                resolution: 50.0,
                probe_cap_nodes: 50_000,
                slice_nodes: 512,
                timeout_secs: timeout,
                fault_seed: None,
                quantized,
            });
        }
    }
    cells
}

fn grid() -> Vec<CellSpec> {
    let timeout = Some(budget_secs());
    let mut cells = fig1_cells(timeout);
    if !quick_mode() {
        cells.extend(wan_cells(timeout));
    }
    cells
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn config() -> CampaignConfig {
    let deadline = std::env::var("METAOPT_CAMPAIGN_DEADLINE_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|secs| Instant::now() + Duration::from_secs_f64(secs));
    CampaignConfig {
        workers: env_usize("METAOPT_CAMPAIGN_WORKERS", 2),
        retry: RetryPolicy::default(),
        deadline,
        threads_per_cell: env_usize("METAOPT_CAMPAIGN_THREADS_PER_CELL", 0),
        ..CampaignConfig::default()
    }
}

fn report(state: &CampaignState) {
    let mut csv = CsvOut::new(
        "campaign",
        &["cell", "status", "threshold", "gap", "probes", "nodes"],
    );
    let num = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
    for (cell, st) in state.cells.iter().zip(&state.status) {
        let row = match st {
            CellStatus::Done(o) => [
                cell.label.clone(),
                "done".into(),
                num(o.threshold),
                num(o.verified_gap),
                o.probes.to_string(),
                o.nodes.to_string(),
            ],
            CellStatus::Quarantined { reason, attempts } => [
                cell.label.clone(),
                format!("quarantined:{reason} after {attempts} attempts"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
            CellStatus::Pending { attempt, resume } => [
                cell.label.clone(),
                format!(
                    "pending (attempt {attempt}{})",
                    if resume.is_some() { ", checkpointed" } else { "" }
                ),
                "-".into(),
                "-".into(),
                "-".into(),
                resume.as_ref().map_or("0".into(), |r| r.nodes.to_string()),
            ],
        };
        csv.row(row);
    }
    csv.print();
    if let Ok(path) = csv.flush() {
        println!("\nseries written to {}", path.display());
    }
    let (done, quarantined, pending) = state.counts();
    println!("done {done}, quarantined {quarantined}, pending {pending}");
}

/// Machine-readable status document: everything `report` prints, as JSON.
fn status_json(state: &CampaignState) -> Json {
    let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    let cells: Vec<Json> = state
        .cells
        .iter()
        .zip(&state.status)
        .map(|(cell, st)| {
            let mut pairs = vec![("label", Json::str(cell.label.clone()))];
            match st {
                CellStatus::Done(o) => {
                    pairs.push(("status", Json::str("done")));
                    pairs.push(("threshold", opt_num(o.threshold)));
                    pairs.push(("verified_gap", opt_num(o.verified_gap)));
                    pairs.push(("probes", Json::Num(o.probes as f64)));
                    pairs.push(("nodes", Json::Num(o.nodes as f64)));
                }
                CellStatus::Quarantined { reason, attempts } => {
                    pairs.push(("status", Json::str("quarantined")));
                    pairs.push(("reason", Json::str(reason.kind())));
                    pairs.push(("attempts", Json::Num(*attempts as f64)));
                }
                CellStatus::Pending { attempt, resume } => {
                    pairs.push(("status", Json::str("pending")));
                    pairs.push(("attempts_failed", Json::Num(*attempt as f64)));
                    pairs.push(("checkpointed", Json::Bool(resume.is_some())));
                    if let Some(r) = resume {
                        pairs.push(("nodes", Json::Num(r.nodes as f64)));
                    }
                }
            }
            Json::obj(pairs)
        })
        .collect();
    let (done, quarantined, pending) = state.counts();
    Json::obj(vec![
        ("name", Json::str(state.name.clone())),
        ("cells", Json::Arr(cells)),
        ("done", Json::Num(done as f64)),
        ("quarantined", Json::Num(quarantined as f64)),
        ("pending", Json::Num(pending as f64)),
    ])
}

/// `0` all done, `4` anything quarantined, `3` anything still pending.
fn status_exit(state: &CampaignState) -> ExitCode {
    let (_, quarantined, pending) = state.counts();
    if quarantined > 0 {
        ExitCode::from(4)
    } else if pending > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    // Diagnostics go through the obs event API (flight recorder dumped
    // on panic); stderr bytes are identical to the old `eprintln!`s.
    let tracer = Tracer::new(Arc::new(SystemClock), DEFAULT_RING_CAPACITY);
    tracer.install_panic_dump();
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: campaign <run|resume|status> <dir> [--json]";
    let (cmd, dir) = match (args.get(1), args.get(2)) {
        (Some(c), Some(d)) => (c.as_str(), Path::new(d)),
        _ => {
            tracer.log_stderr("bench.usage", usage);
            return ExitCode::from(2);
        }
    };
    let json_flag = args.iter().skip(3).any(|a| a == "--json");
    let outcome = match cmd {
        "run" => {
            let cells = grid();
            println!(
                "campaign: {} cells, {} workers, journal at {}\n",
                cells.len(),
                config().workers,
                dir.join(metaopt_campaign::JOURNAL_FILE).display()
            );
            run(dir, "bench", cells, &config(), &ShutdownFlag::new())
        }
        "resume" => resume(dir, &config(), &ShutdownFlag::new()),
        "status" => {
            return match status(dir) {
                Ok(st) => {
                    if json_flag {
                        println!("{}", status_json(&st).render());
                    } else {
                        report(&st);
                    }
                    status_exit(&st)
                }
                Err(e) => {
                    tracer.log_stderr("bench.status_failed", &format!("status failed: {e}"));
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            tracer.log_stderr(
                "bench.bad_command",
                &format!("unknown command `{other}`\n{usage}"),
            );
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(rep) => {
            report(&rep.state);
            match rep.end {
                RunEnd::Complete => ExitCode::SUCCESS,
                RunEnd::Drained => {
                    println!("\ndrained before completion — resume with `campaign resume`");
                    ExitCode::from(3)
                }
            }
        }
        Err(e) => {
            tracer.log_stderr("bench.campaign_failed", &format!("campaign failed: {e}"));
            ExitCode::FAILURE
        }
    }
}
