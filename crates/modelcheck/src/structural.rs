//! MC0xx — structural checks on the model IR.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | MC001 | error    | constant row is infeasible (`c SENSE 0` fails)   |
//! | MC002 | warning  | constant row is vacuous (no variable terms)      |
//! | MC003 | error    | binary variable with bounds outside `[0, 1]`     |
//! | MC004 | error    | empty or non-finite variable box (`lo > hi`)     |
//! | MC005 | warning  | variable referenced by nothing                   |
//! | MC006 | warning  | duplicate variable name                          |
//! | MC007 | warning  | duplicate constraint name                        |
//! | MC008 | warning/error | complementarity multiplier fixed by bounds |
//! | MC009 | error    | expression references an out-of-range variable   |

use crate::{Report, Severity, Span};
use metaopt_model::{LinExpr, Model, Sense, VarKind, VarRef};
use std::collections::HashMap;

fn cname(model: &Model, i: usize) -> String {
    model.constraints()[i]
        .name
        .clone()
        .unwrap_or_default()
}

/// Runs the structural family over `model`.
pub fn check(model: &Model) -> Report {
    let mut report = Report::new();
    let n = model.n_vars();

    // --- variable boxes -------------------------------------------------
    let mut names: HashMap<&str, usize> = HashMap::new();
    for i in 0..n {
        let v = VarRef(i);
        let (lo, hi) = model.var_bounds(v);
        let span = || Span::Var {
            index: i,
            name: model.var_name(v).to_string(),
        };
        if lo.is_nan() || hi.is_nan() || lo > hi {
            report.push(
                "MC004",
                Severity::Error,
                span(),
                format!("empty or non-finite bounds [{lo}, {hi}]"),
            );
        }
        if model.var_kind(v) == VarKind::Binary && (lo < 0.0 || hi > 1.0) {
            report.push(
                "MC003",
                Severity::Error,
                span(),
                format!("binary variable with bounds [{lo}, {hi}] outside [0, 1]"),
            );
        }
        let name = model.var_name(v);
        if !name.is_empty() {
            if let Some(&first) = names.get(name) {
                report.push(
                    "MC006",
                    Severity::Warning,
                    span(),
                    format!("duplicate variable name (first used by var #{first})"),
                );
            } else {
                names.insert(name, i);
            }
        }
    }

    // --- reference tracking + expression hygiene ------------------------
    let mut referenced = vec![false; n];
    let mark = |e: &LinExpr, referenced: &mut Vec<bool>, report: &mut Report, span: Span| {
        for (v, _) in e.terms() {
            if v.0 >= n {
                report.push(
                    "MC009",
                    Severity::Error,
                    span.clone(),
                    format!("references variable #{} but the model has {n} variables", v.0),
                );
            } else {
                referenced[v.0] = true;
            }
        }
    };
    for (i, c) in model.constraints().iter().enumerate() {
        let span = Span::Constraint {
            index: i,
            name: cname(model, i),
        };
        mark(&c.expr, &mut referenced, &mut report, span.clone());
        if c.expr.n_terms() == 0 {
            let k = c.expr.constant_part();
            let feasible = match c.sense {
                Sense::Le => k <= 0.0,
                Sense::Ge => k >= 0.0,
                Sense::Eq => k == 0.0,
            };
            if feasible {
                report.push(
                    "MC002",
                    Severity::Warning,
                    span,
                    format!("constant row `{k} {:?} 0` is vacuous", c.sense),
                );
            } else {
                report.push(
                    "MC001",
                    Severity::Error,
                    span,
                    format!("constant row `{k} {:?} 0` is infeasible", c.sense),
                );
            }
        }
    }
    mark(
        model.objective(),
        &mut referenced,
        &mut report,
        Span::Objective,
    );
    for (i, compl) in model.complementarities().iter().enumerate() {
        let mult_name = if compl.multiplier.0 < n {
            model.var_name(compl.multiplier).to_string()
        } else {
            format!("#{}", compl.multiplier.0)
        };
        let span = Span::Complementarity {
            index: i,
            multiplier: mult_name.clone(),
        };
        mark(&compl.slack, &mut referenced, &mut report, span.clone());
        if compl.multiplier.0 >= n {
            report.push(
                "MC009",
                Severity::Error,
                span,
                format!(
                    "multiplier is variable #{} but the model has {n} variables",
                    compl.multiplier.0
                ),
            );
            continue;
        }
        referenced[compl.multiplier.0] = true;
        let (lo, hi) = model.var_bounds(compl.multiplier);
        if lo == hi {
            let (sev, what) = if lo == 0.0 {
                (
                    Severity::Warning,
                    "pair is vacuous (was a multiplier dropped?)".to_string(),
                )
            } else {
                (
                    Severity::Error,
                    format!("slack is statically forced to zero (multiplier fixed at {lo})"),
                )
            };
            report.push(
                "MC008",
                sev,
                span,
                format!("multiplier `{mult_name}` is fixed by its bounds: {what}"),
            );
        }
    }

    // --- unreferenced variables -----------------------------------------
    for (i, referenced) in referenced.iter().enumerate() {
        if !referenced {
            report.push(
                "MC005",
                Severity::Warning,
                Span::Var {
                    index: i,
                    name: model.var_name(VarRef(i)).to_string(),
                },
                "variable appears in no constraint, objective, or complementarity".to_string(),
            );
        }
    }

    // --- duplicate constraint names --------------------------------------
    let mut cnames: HashMap<&str, usize> = HashMap::new();
    for (i, c) in model.constraints().iter().enumerate() {
        if let Some(name) = c.name.as_deref() {
            if let Some(&first) = cnames.get(name) {
                report.push(
                    "MC007",
                    Severity::Warning,
                    Span::Constraint {
                        index: i,
                        name: name.to_string(),
                    },
                    format!("duplicate constraint name (first used by row #{first})"),
                );
            } else {
                cnames.insert(name, i);
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::{LinExpr, Model, ObjSense};

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn infeasible_and_vacuous_constant_rows() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        m.set_objective(ObjSense::Max, LinExpr::from(x)).unwrap();
        // x − x cancels to the constant row `1 <= 0`.
        m.constrain(LinExpr::from(x) - x + 1.0, Sense::Le, 0.0)
            .unwrap();
        m.constrain(LinExpr::from(x) - x, Sense::Le, 2.0).unwrap();
        let r = check(&m);
        assert!(codes(&r).contains(&"MC001"), "{r}");
        assert!(codes(&r).contains(&"MC002"), "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn unreferenced_and_duplicate_names() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        let _orphan = m.add_var("orphan", 0.0, 1.0).unwrap();
        let _dup = m.add_var("x", 0.0, 1.0).unwrap();
        m.constrain_named("c", x, Sense::Le, 1.0).unwrap();
        m.constrain_named("c", x, Sense::Ge, 0.0).unwrap();
        let r = check(&m);
        assert!(codes(&r).contains(&"MC005"), "{r}");
        assert!(codes(&r).contains(&"MC006"), "{r}");
        assert!(codes(&r).contains(&"MC007"), "{r}");
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn fixed_multiplier_flagged() {
        let mut m = Model::new();
        let lam0 = m.add_var("lam0", 0.0, 0.0).unwrap();
        let lam1 = m.add_var("lam1", 2.0, 2.0).unwrap();
        let s = m.add_var("s", 0.0, 10.0).unwrap();
        m.add_complementarity(lam0, LinExpr::from(s)).unwrap();
        m.add_complementarity(lam1, LinExpr::from(s)).unwrap();
        m.constrain(s, Sense::Le, 10.0).unwrap();
        let r = check(&m);
        let mc008: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "MC008")
            .collect();
        assert_eq!(mc008.len(), 2, "{r}");
        assert_eq!(mc008[0].severity, Severity::Warning);
        assert_eq!(mc008[1].severity, Severity::Error);
    }

    #[test]
    fn binary_bad_bounds() {
        let mut m = Model::new();
        let z = m
            .add_var_kind("z", 0.0, 3.0, VarKind::Binary)
            .unwrap();
        m.constrain(z, Sense::Le, 1.0).unwrap();
        let r = check(&m);
        assert!(codes(&r).contains(&"MC003"), "{r}");
    }
}
