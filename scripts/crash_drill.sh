#!/usr/bin/env bash
# Crash-recovery drills against the real release binaries and a real
# `kill -9`, in three phases:
#
#   1. Campaign drill: SIGKILL a running campaign mid-flight, resume it
#      from the write-ahead journal in a fresh process, and assert the
#      completed (cell, threshold, gap) result set is byte-identical to
#      an uninterrupted run's.
#
#   2. Server drill: start the gap-finding job server, submit jobs over
#      HTTP, SIGKILL the server after the acks, restart it on the same
#      directory, and assert every acknowledged job reaches the same
#      certified result (exact f64 bit patterns, compared via the
#      `outcome_wire` encoding) as an uninterrupted server run.
#
#   3. Blast-radius drill: (a) SIGKILL a sandboxed *worker child* mid-cell
#      and assert the supervisor retries it to the same bit-identical
#      results with the server never wobbling; (b) inject ENOSPC under
#      the journal (GAPSERVER_IO_FAULTS) and assert the server degrades
#      to read-only draining — refusing new work, still answering
#      /healthz and /metrics, still drainable.
#
# usage: scripts/crash_drill.sh [path/to/campaign_drill] [path/to/gapserver]
set -euo pipefail

BIN="${1:-target/release/campaign_drill}"
GAPSERVER="${2:-target/release/gapserver}"
if [[ ! -x "$BIN" ]]; then
    echo "drill binary not found: $BIN (build with \`cargo build --release -p metaopt-campaign\`)" >&2
    exit 1
fi
if [[ ! -x "$GAPSERVER" ]]; then
    echo "server binary not found: $GAPSERVER (build with \`cargo build --release -p metaopt-server\`)" >&2
    exit 1
fi
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# ----------------------------------------------------------------------
# Phase 1: campaign drill (kill -9 mid-campaign, resume, compare).
# ----------------------------------------------------------------------

# Uninterrupted baseline. Slice size 1 keeps ticks (and journal writes)
# frequent, which widens the useful kill window.
SLICE=1
"$BIN" run "$WORK/baseline" "$SLICE" | grep '^RESULT' | sort > "$WORK/want.txt"
[[ -s "$WORK/want.txt" ]]

phase1_ok=0
delay_ms=80
for attempt in $(seq 1 30); do
    dir="$WORK/kill-$attempt"
    "$BIN" run "$dir" "$SLICE" >/dev/null 2>&1 &
    pid=$!
    sleep "$(awk "BEGIN { print $delay_ms / 1000 }")"
    if ! kill -0 "$pid" 2>/dev/null; then
        # Finished before the kill landed: shorten the delay and retry.
        wait "$pid" || true
        delay_ms=$(( delay_ms * 2 / 3 ))
        (( delay_ms >= 5 )) || delay_ms=5
        continue
    fi
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
    # A useful kill leaves pending work behind in a readable journal
    # (killing before the header is journaled makes `status` fail: retry).
    if "$BIN" status "$dir" 2>/dev/null | grep -q '^PENDING'; then
        "$BIN" resume "$dir" | grep '^RESULT' | sort > "$WORK/got.txt"
        diff -u "$WORK/want.txt" "$WORK/got.txt"
        echo "campaign crash drill OK: post-SIGKILL resume matches uninterrupted run (attempt $attempt)"
        phase1_ok=1
        break
    fi
    delay_ms=$(( delay_ms + 20 ))
done
if [[ "$phase1_ok" != 1 ]]; then
    echo "could not land a mid-run SIGKILL in 30 attempts" >&2
    exit 1
fi

# ----------------------------------------------------------------------
# Phase 2: server drill (kill -9 after ack, restart, compare bit-exact).
# ----------------------------------------------------------------------

job_spec() { # job_spec <label> <threshold>
    cat <<EOF
{"client":"drill","label":"$1",
 "topology":{"kind":"fig1","cap":100.0},
 "heuristic":{"kind":"dp","threshold":$2},
 "sweep":{"lo":0.0,"hi":100.0,"resolution":4.0},
 "budget":{"probe_cap_nodes":4000,"slice_nodes":16}}
EOF
}

start_server() { # start_server <dir>; sets SERVER_PID and ADDR
    rm -f "$1/ADDR"
    "$GAPSERVER" serve --dir "$1" --addr 127.0.0.1:0 --workers 2 >/dev/null &
    SERVER_PID=$!
    for _ in $(seq 1 300); do
        if [[ -s "$1/ADDR" ]]; then
            ADDR="$(cat "$1/ADDR")"
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died during boot" >&2; exit 1; }
        sleep 0.05
    done
    echo "server never wrote $1/ADDR" >&2
    exit 1
}

submit_jobs() { # submit_jobs; uses ADDR
    for t in 30 50 70; do
        job_spec "drill-$t" "$t" | "$GAPSERVER" submit --addr "$ADDR" >/dev/null \
            || { echo "submit drill-$t refused" >&2; exit 1; }
    done
}

metric() { # metric <family>; scrapes /metrics on ADDR, prints the value
    "$GAPSERVER" metrics --addr "$ADDR" | awk -v m="$1" '$1 == m { print $2 }'
}

expect_metric() { # expect_metric <family> <want> <context>
    local got
    got="$(metric "$1")"
    if [[ "$got" != "$2" ]]; then
        echo "metric $1 = $got, expected $2 ($3)" >&2
        exit 1
    fi
}

collect_results() { # collect_results <outfile>; waits for jobs 1..3
    : > "$1"
    for id in 1 2 3; do
        "$GAPSERVER" wait --addr "$ADDR" "$id" --timeout-secs 300 > "$WORK/job-$id.json" \
            || { echo "job $id did not complete cleanly" >&2; cat "$WORK/job-$id.json" >&2; exit 1; }
        # label + exact-bit outcome encoding, independent of float printing.
        sed -n 's/.*"label":"\([^"]*\)".*"outcome_wire":"\([^"]*\)".*/\1 \2/p' \
            "$WORK/job-$id.json" >> "$1"
    done
    sort -o "$1" "$1"
    [[ "$(wc -l < "$1")" == 3 ]] || { echo "expected 3 results in $1" >&2; exit 1; }
}

# Uninterrupted server baseline.
start_server "$WORK/server-baseline"
submit_jobs
collect_results "$WORK/server-want.txt"
"$GAPSERVER" drain --addr "$ADDR" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Crash run: SIGKILL lands after the acks, before completion. Each 202
# ack means the job record is fsynced, so the admitted counter must read
# 3 on the live server — and must read 3 again after the restart below,
# re-derived purely from journal replay.
start_server "$WORK/server-crash"
submit_jobs
expect_metric metaopt_server_jobs_admitted_total 3 "pre-SIGKILL scrape"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Restart on the same directory: journal replay must resurrect every
# acknowledged job and run it to the identical certified result, with
# the journal-derived job counters consistent with the pre-kill scrape.
start_server "$WORK/server-crash"
expect_metric metaopt_server_jobs_admitted_total 3 "post-restart boot replay"
collect_results "$WORK/server-got.txt"
diff -u "$WORK/server-want.txt" "$WORK/server-got.txt"
expect_metric metaopt_server_jobs_admitted_total 3 "post-restart steady state"
expect_metric metaopt_server_jobs_completed_total 3 "all acknowledged jobs re-ran to done"
expect_metric metaopt_server_jobs_quarantined_total 0 "no job may quarantine in the drill"
"$GAPSERVER" drain --addr "$ADDR" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "server crash drill OK: post-SIGKILL restart reproduced all acknowledged jobs bit-identically (metrics re-derived consistently by replay)"

# ----------------------------------------------------------------------
# Phase 3a: worker-kill drill (SIGKILL a sandboxed child, not the server).
# ----------------------------------------------------------------------

# The phase-2 specs finish in milliseconds of actual compute, which makes
# a mid-cell kill a coin flip: by the time /proc shows the child it has
# often already delivered its `done` frame. Phase 3 sweeps the abilene
# topology (real branch-and-bound work, ~1s per job) with small slices so
# each worker stays busy long enough to be shot mid-cell.
slow_job_spec() { # slow_job_spec <label> <threshold>
    cat <<EOF
{"client":"drill","label":"$1",
 "topology":{"kind":"builtin","name":"abilene","cap":100.0},
 "heuristic":{"kind":"dp","threshold":$2},
 "sweep":{"lo":0.0,"hi":100.0,"resolution":4.0},
 "budget":{"probe_cap_nodes":50000,"slice_nodes":8}}
EOF
}

submit_slow_jobs() { # submit_slow_jobs; uses ADDR
    for t in 30 50 70; do
        slow_job_spec "kill-$t" "$t" | "$GAPSERVER" submit --addr "$ADDR" >/dev/null \
            || { echo "submit kill-$t refused" >&2; exit 1; }
    done
}

worker_child() { # worker_child <server-pid>; prints the first live --worker child
    local p ppid
    for p in /proc/[0-9]*; do
        p="${p#/proc/}"
        # ppid is the 2nd field after the parenthesised comm in stat.
        ppid="$(awk -F') ' '{ split($NF, f, " "); print f[2] }' "/proc/$p/stat" 2>/dev/null)" || continue
        [[ "$ppid" == "$1" ]] || continue
        if tr '\0' ' ' < "/proc/$p/cmdline" 2>/dev/null | grep -q -- '--worker'; then
            echo "$p"
            return 0
        fi
    done
    return 1
}

# Uninterrupted baseline with the phase-3 specs.
start_server "$WORK/worker-kill-baseline"
submit_slow_jobs
collect_results "$WORK/worker-kill-want.txt"
"$GAPSERVER" drain --addr "$ADDR" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

phase3_ok=0
for attempt in $(seq 1 5); do
    dir="$WORK/worker-kill-$attempt"
    start_server "$dir"
    submit_slow_jobs
    victim=""
    for _ in $(seq 1 400); do
        if victim="$(worker_child "$SERVER_PID")"; then
            break
        fi
        sleep 0.02
    done
    if [[ -z "$victim" ]]; then
        echo "no sandboxed worker child appeared under $SERVER_PID" >&2
        exit 1
    fi
    kill -9 "$victim" 2>/dev/null || true
    collect_results "$WORK/worker-kill-got.txt"
    diff -u "$WORK/worker-kill-want.txt" "$WORK/worker-kill-got.txt"
    expect_metric metaopt_server_jobs_quarantined_total 0 "a killed worker must retry, not quarantine"
    lost="$(metric metaopt_server_workers_lost_total)"
    "$GAPSERVER" drain --addr "$ADDR" >/dev/null
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    if [[ "${lost:-0}" -ge 1 ]]; then
        phase3_ok=1
        echo "worker-kill drill OK: SIGKILLed child retried to bit-identical results (attempt $attempt, workers_lost=$lost)"
        break
    fi
    # The child delivered its result in the instant before the kill
    # landed; results were still identical, but the drill wants to see a
    # *lost* worker recovered, so try again.
done
if [[ "$phase3_ok" != 1 ]]; then
    echo "could not land a mid-cell worker SIGKILL in 5 attempts" >&2
    exit 1
fi

# ----------------------------------------------------------------------
# Phase 3b: disk-full drill (injected ENOSPC => read-only draining mode).
# ----------------------------------------------------------------------

# The append schedule must be deterministic for the fault occurrence to
# land after the acks: single-slice jobs (slice == probe cap) journal no
# mid-cell checkpoints, so the only appends that can precede the third
# 202 are the boot header (1), the three job records, and a run record
# per worker (two workers) — six at most. Occurrence 7 therefore always
# fires after every submit is acknowledged, on a run or result append,
# while both workers are still busy with ~1s of branch-and-bound.
fault_job_spec() { # fault_job_spec <label> <threshold>
    cat <<EOF
{"client":"drill","label":"$1",
 "topology":{"kind":"builtin","name":"abilene","cap":100.0},
 "heuristic":{"kind":"dp","threshold":$2},
 "sweep":{"lo":0.0,"hi":100.0,"resolution":4.0},
 "budget":{"probe_cap_nodes":50000,"slice_nodes":50000}}
EOF
}

dir="$WORK/disk-full"
rm -f "$dir/ADDR"
mkdir -p "$dir"
GAPSERVER_IO_FAULTS="append:7:enospc" "$GAPSERVER" serve --dir "$dir" --addr 127.0.0.1:0 --workers 2 >/dev/null &
SERVER_PID=$!
for _ in $(seq 1 300); do
    [[ -s "$dir/ADDR" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "faulty server died during boot" >&2; exit 1; }
    sleep 0.05
done
ADDR="$(cat "$dir/ADDR")"
for t in 30 50 70; do
    fault_job_spec "enospc-$t" "$t" | "$GAPSERVER" submit --addr "$ADDR" >/dev/null \
        || { echo "submit enospc-$t refused before the fault fired" >&2; exit 1; }
done
degraded=0
for _ in $(seq 1 600); do
    if "$GAPSERVER" health --addr "$ADDR" | grep -q '"degraded":"'; then
        degraded=1
        break
    fi
    sleep 0.05
done
if [[ "$degraded" != 1 ]]; then
    echo "injected ENOSPC never degraded the server" >&2
    exit 1
fi
# Degraded, not dead: reads and metrics still answer on the same socket…
"$GAPSERVER" health --addr "$ADDR" | grep -q '"stopped":false' \
    || { echo "degraded server must not be stopped" >&2; exit 1; }
"$GAPSERVER" metrics --addr "$ADDR" | grep -q '^metaopt_campaign_journal_poisonings_total 1' \
    || { echo "journal poisoning not visible in /metrics" >&2; exit 1; }
"$GAPSERVER" status --addr "$ADDR" >/dev/null \
    || { echo "degraded server must still list jobs" >&2; exit 1; }
# …while new work is refused (503, submit exits nonzero)…
if job_spec "after-enospc" 50 | "$GAPSERVER" submit --addr "$ADDR" >/dev/null 2>&1; then
    echo "degraded server accepted a submission it cannot journal" >&2
    exit 1
fi
# …and drain still lands.
"$GAPSERVER" drain --addr "$ADDR" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "disk-full drill OK: injected ENOSPC degraded the server to read-only draining (refusing work, still observable, cleanly drained)"
