//! Gap-finding as a service: a supervised, multi-tenant HTTP job server
//! over the crash-safe campaign journal.
//!
//! The server turns the deterministic sweep cells of the campaign layer
//! into durable jobs behind a small HTTP/1.1 API. Every lifecycle
//! transition — admission, each execution attempt, every incumbent
//! checkpoint, retries, quarantine, cancellation, shutdown — is an
//! fsynced record in the same CRC-framed write-ahead journal the batch
//! campaign runner uses, appended *before* the transition is
//! acknowledged. Kill the process at any instant and the next boot
//! replays the journal back to the exact same state: acknowledged jobs
//! run (or resume mid-sweep from their last checkpoint) and produce
//! bit-identical certified results, because thresholds and demands are
//! journaled as exact `f64` bit patterns and cells tick in fixed
//! node-budget slices.
//!
//! Multi-tenancy and overload safety are first-class: per-client token
//! buckets meter admission (`429 Retry-After`), a bounded queue sheds
//! bursts instead of accepting work it cannot journal honestly, priority
//! classes age so background work cannot starve, and drain stops the
//! world at the next checkpoint boundary without losing a single
//! acknowledged job.
//!
//! Everything is `std`-only — the HTTP layer, the JSON layer, the quota
//! machinery — because this workspace builds with no registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod quota;
pub mod server;
pub mod spec;

pub use api::{serve, MAX_CONNECTIONS};
pub use json::Json;
pub use metrics::{RouteMetrics, ServerMetrics, ROUTES};
pub use quota::{AgingQueue, QueuedJob, QuotaBook, TokenBucket};
pub use server::{CancelError, GapServer, RecordVerdict, ServerConfig, SubmitError};
pub use spec::{parse_submit, validate_submit, AdmissionLimits, SubmitRequest};
