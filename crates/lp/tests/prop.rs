//! Property tests: random feasible-by-construction LPs must solve to
//! optimality, and the returned point must carry a valid optimality
//! certificate (primal feasibility + dual sign conditions + complementary
//! slackness), which by LP duality proves the answer is truly optimal —
//! no reference solver needed.

use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus};
use proptest::prelude::*;

/// A randomly generated LP that is feasible by construction (rows are
/// anchored around the activity of an interior point) and bounded (every
/// variable is boxed).
#[derive(Debug, Clone)]
struct RandomLp {
    problem: LpProblem,
    n: usize,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    // (n, m, seed-ish data)
    (2usize..7, 1usize..9).prop_flat_map(|(n, m)| {
        let var_data = proptest::collection::vec((-5.0f64..5.0, 0.1f64..8.0, -4.0f64..4.0), n);
        let row_data = proptest::collection::vec(
            (
                proptest::collection::vec(proptest::option::weighted(0.6, -3.0f64..3.0), n),
                0usize..3, // sense selector
                0.5f64..6.0,
            ),
            m,
        );
        let anchor = proptest::collection::vec(0.0f64..1.0, n);
        (Just(n), var_data, row_data, anchor).prop_map(|(n, vars, rows, anchor)| {
            let mut p = LpProblem::new();
            let mut ids = Vec::new();
            let mut point = Vec::new();
            for (i, (lo_off, width, obj)) in vars.iter().enumerate() {
                let lo = *lo_off;
                let hi = lo + width;
                ids.push(p.add_var(lo, hi, *obj).unwrap());
                // Interior anchor point inside the box.
                point.push(lo + anchor[i] * width);
            }
            for (coeffs, sense_sel, margin) in rows {
                let entries: Vec<(usize, f64)> = coeffs
                    .iter()
                    .enumerate()
                    .filter_map(|(j, c)| c.map(|v| (j, v)))
                    .collect();
                if entries.is_empty() {
                    continue;
                }
                let act: f64 = entries.iter().map(|(j, c)| c * point[*j]).sum();
                match sense_sel {
                    0 => {
                        p.add_row(
                            RowSense::Le,
                            act + margin,
                            entries.iter().map(|(j, c)| (ids[*j], *c)),
                        )
                        .unwrap();
                    }
                    1 => {
                        p.add_row(
                            RowSense::Ge,
                            act - margin,
                            entries.iter().map(|(j, c)| (ids[*j], *c)),
                        )
                        .unwrap();
                    }
                    _ => {
                        p.add_row(
                            RowSense::Eq,
                            act,
                            entries.iter().map(|(j, c)| (ids[*j], *c)),
                        )
                        .unwrap();
                    }
                }
            }
            RandomLp { problem: p, n }
        })
    })
}

/// Verifies the KKT certificate of optimality for a boxed, ranged LP.
fn check_certificate(p: &LpProblem, sol: &metaopt_lp::Solution) {
    const TOL: f64 = 1e-5;
    assert_eq!(sol.status, SolveStatus::Optimal);
    // Primal feasibility.
    assert!(
        p.max_violation(&sol.x) <= TOL,
        "primal violation {}",
        p.max_violation(&sol.x)
    );
    let act = p.row_activity(&sol.x);
    // Row duals: complementary slackness + signs.
    for (i, &ai) in act.iter().enumerate().take(p.n_rows()) {
        let y = sol.duals[i];
        let (rlo, rhi) = row_range(p, i);
        let at_lo = rlo.is_finite() && (ai - rlo).abs() <= TOL;
        let at_hi = rhi.is_finite() && (ai - rhi).abs() <= TOL;
        if !at_lo && !at_hi {
            assert!(y.abs() <= TOL, "interior row {i} has dual {y}");
        }
        if rlo != rhi {
            // Inequality-style row: sign condition. For the minimization
            // form: active at upper → y <= 0 would… the convention is pinned
            // by the logical variable's reduced cost equaling y_i; at upper
            // it must be <= tol, at lower >= -tol.
            if at_hi && !at_lo {
                assert!(y <= TOL, "row {i} active at upper but dual {y} > 0");
            }
            if at_lo && !at_hi {
                assert!(y >= -TOL, "row {i} active at lower but dual {y} < 0");
            }
        }
    }
    // Variable reduced costs: sign + complementary slackness.
    for j in 0..p.n_vars() {
        let d = sol.reduced_costs[j];
        let (lo, hi) = var_bounds(p, j);
        let at_lo = lo.is_finite() && (sol.x[j] - lo).abs() <= TOL;
        let at_hi = hi.is_finite() && (sol.x[j] - hi).abs() <= TOL;
        if !at_lo && !at_hi {
            assert!(d.abs() <= 1e-4, "interior var {j} has reduced cost {d}");
        } else {
            if at_lo && !at_hi {
                assert!(d >= -TOL, "var {j} at lower with reduced cost {d}");
            }
            if at_hi && !at_lo {
                assert!(d <= TOL, "var {j} at upper with reduced cost {d}");
            }
        }
    }
}

fn row_range(p: &LpProblem, _i: usize) -> (f64, f64) {
    // LpProblem does not expose row ranges publicly; recover them through a
    // probing clone is overkill — instead re-derive from activity bounds via
    // the public API added for this purpose.
    p.row_bounds(_i)
}

fn var_bounds(p: &LpProblem, j: usize) -> (f64, f64) {
    p.bounds(metaopt_lp::VarId(j))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feasible-by-construction LPs must come back Optimal with a valid
    /// optimality certificate.
    #[test]
    fn random_lps_solve_with_certificate(rlp in random_lp_strategy()) {
        let sol = Simplex::new(&rlp.problem).solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        check_certificate(&rlp.problem, &sol);
        prop_assert_eq!(sol.x.len(), rlp.n);
    }

    /// Warm dual-simplex re-solve after a bound tightening must agree with a
    /// cold solve of the modified problem (both in status and objective).
    #[test]
    fn warm_resolve_agrees_with_cold(
        rlp in random_lp_strategy(),
        which in 0usize..6,
        shrink in 0.0f64..1.0,
    ) {
        let mut warm = Simplex::new(&rlp.problem);
        let first = warm.solve().unwrap();
        prop_assert_eq!(first.status, SolveStatus::Optimal);

        let j = which % rlp.n;
        let v = metaopt_lp::VarId(j);
        let (lo, hi) = rlp.problem.bounds(v);
        // Tighten the box around a point biased toward the current optimum.
        let mid = lo + (hi - lo) * shrink;
        let (nlo, nhi) = (lo, mid.max(lo));

        warm.set_var_bounds(v, nlo, nhi).unwrap();
        let resolved = warm.resolve().unwrap();

        let mut p2 = rlp.problem.clone();
        p2.set_bounds(v, nlo, nhi).unwrap();
        let cold = Simplex::new(&p2).solve().unwrap();

        prop_assert_eq!(resolved.status, cold.status);
        if resolved.status == SolveStatus::Optimal {
            prop_assert!((resolved.objective - cold.objective).abs() <= 1e-5 * (1.0 + cold.objective.abs()),
                "warm {} vs cold {}", resolved.objective, cold.objective);
            check_certificate(&p2, &resolved);
        }
    }
}
