//! MC1xx — KKT-encoding checks.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | MC101 | error    | primal row without a matching dual multiplier (or vice versa) |
//! | MC102 | error/warning | multiplier with the wrong sign convention  |
//! | MC103 | error    | stationarity coefficient does not balance the primal gradient |
//! | MC104 | error    | inequality multiplier in ≠ 1 complementarity pairs |
//! | MC105 | error    | complementarity slack is not the negated primal row |
//! | MC106 | error    | inner variable with neither stationarity row nor reduced-cost pair |
//! | MC107 | warning  | big-M/bounds conflict: a binary setting is infeasible by interval analysis |
//!
//! The KKT system is reconstructed from the rewriter's stable naming
//! convention (see [`crate::names`]): for an inner problem `X`,
//! [`metaopt_model::kkt::append_kkt`] emits primal rows `X::pf[c]`,
//! multipliers `X::lam[c]` (inequalities, bounds `[0, B]`) and `X::mu[c]`
//! (equalities, free), stationarity rows `X::stat[v]`, one complementarity
//! pair `lam ⟂ −g` per inequality, and reduced-cost pairs `x ⟂ ν(x)` for
//! natively-nonnegative inner variables.
//!
//! A prefix with primal rows but *no* multipliers, stationarity rows, or
//! complementarity pairs is a deliberate primal-only encoding
//! ([`metaopt_model::kkt::append_primal`]) and is skipped entirely.

use crate::names;
use crate::{Report, Severity, Span};
use metaopt_model::{LinExpr, Model, Sense, VarKind, VarRef};
use std::collections::{HashMap, HashSet};

/// Relative tolerance for coefficient comparisons. The rewriter copies
/// coefficients bit-for-bit, so this only absorbs benign sign-zero and
/// accumulation noise from expression assembly.
const COEF_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= COEF_TOL * (1.0 + a.abs().max(b.abs()))
}

struct KktIndex<'m> {
    /// `(prefix, key)` → constraint index of the primal-feasibility row.
    pf: HashMap<(&'m str, &'m str), usize>,
    /// `(prefix, inner-var name)` → constraint index of the stationarity row.
    stat: HashMap<(&'m str, &'m str), usize>,
    /// `(prefix, key)` → inequality multiplier variable.
    lam: HashMap<(&'m str, &'m str), VarRef>,
    /// `(prefix, key)` → equality multiplier variable.
    mu: HashMap<(&'m str, &'m str), VarRef>,
    /// multiplier variable index → complementarity pair indices.
    compl_of: HashMap<usize, Vec<usize>>,
    /// Prefixes that carry any KKT artifact at all.
    active: HashSet<&'m str>,
}

fn index(model: &Model) -> KktIndex<'_> {
    let mut ix = KktIndex {
        pf: HashMap::new(),
        stat: HashMap::new(),
        lam: HashMap::new(),
        mu: HashMap::new(),
        compl_of: HashMap::new(),
        active: HashSet::new(),
    };
    for (i, c) in model.constraints().iter().enumerate() {
        let Some(name) = c.name.as_deref() else {
            continue;
        };
        if let Some((p, key)) = names::any_tagged_key(name, "pf") {
            ix.pf.insert((p, key), i);
        } else if let Some((p, key)) = names::any_tagged_key(name, "stat") {
            ix.stat.insert((p, key), i);
            ix.active.insert(p);
        }
    }
    for i in 0..model.n_vars() {
        let name = model.var_name(VarRef(i));
        if let Some((p, key)) = names::any_tagged_key(name, "lam") {
            ix.lam.insert((p, key), VarRef(i));
            ix.active.insert(p);
        } else if let Some((p, key)) = names::any_tagged_key(name, "mu") {
            ix.mu.insert((p, key), VarRef(i));
            ix.active.insert(p);
        }
    }
    for (i, compl) in model.complementarities().iter().enumerate() {
        ix.compl_of
            .entry(compl.multiplier.0)
            .or_default()
            .push(i);
        if let Some(p) = names::prefix(model.var_name(compl.multiplier)) {
            ix.active.insert(p);
        }
    }
    ix
}

/// The expression that carries variable `v`'s stationarity condition for
/// inner problem `p`: either an explicit `p::stat[v]` row or the slack of
/// `v`'s reduced-cost complementarity pair.
fn stationarity_carrier<'m>(
    model: &'m Model,
    ix: &KktIndex<'m>,
    p: &str,
    v: VarRef,
) -> Option<&'m LinExpr> {
    let vname = model.var_name(v);
    if let Some(&row) = ix.stat.get(&(p, vname)) {
        return Some(&model.constraints()[row].expr);
    }
    // Reduced-cost pair: v itself is the "multiplier" side.
    let pairs = ix.compl_of.get(&v.0)?;
    let first = *pairs.first()?;
    Some(&model.complementarities()[first].slack)
}

/// Runs the KKT family over `model`.
pub fn check(model: &Model) -> Report {
    let mut report = Report::new();
    let ix = index(model);

    let cspan = |i: usize| Span::Constraint {
        index: i,
        name: model.constraints()[i]
            .name
            .clone()
            .unwrap_or_default(),
    };
    let vspan = |v: VarRef| Span::Var {
        index: v.0,
        name: model.var_name(v).to_string(),
    };

    // Multipliers claimed by a pf row, to spot orphans afterwards.
    let mut claimed: HashSet<usize> = HashSet::new();
    // (multiplier, variable) pairs already reported for MC103.
    let mut reported_grad: HashSet<(usize, usize)> = HashSet::new();

    for (&(p, key), &row) in &ix.pf {
        if !ix.active.contains(p) {
            continue; // primal-only encoding: nothing to cross-check
        }
        let c = &model.constraints()[row];
        let mult = match c.sense {
            Sense::Le => ix.lam.get(&(p, key)).copied(),
            Sense::Eq => ix.mu.get(&(p, key)).copied(),
            Sense::Ge => None, // the rewriter normalizes Ge to Le
        };
        let Some(mult) = mult else {
            report.push(
                "MC101",
                Severity::Error,
                cspan(row),
                format!(
                    "primal row `{p}::pf[{key}]` ({:?}) has no matching `{p}::{}[{key}]` multiplier",
                    c.sense,
                    if c.sense == Sense::Eq { "mu" } else { "lam" },
                ),
            );
            continue;
        };
        claimed.insert(mult.0);
        let (lo, hi) = model.var_bounds(mult);

        if c.sense == Sense::Le {
            // Dual sign convention: λ ∈ [0, B].
            if lo < 0.0 || hi < 0.0 {
                report.push(
                    "MC102",
                    Severity::Error,
                    vspan(mult),
                    format!(
                        "inequality multiplier has bounds [{lo}, {hi}]; the dual sign \
                         convention requires λ >= 0"
                    ),
                );
            }
            // Complementarity: exactly one pair, slack == −g.
            let pairs = ix.compl_of.get(&mult.0).map_or(&[][..], |v| &v[..]);
            if pairs.len() != 1 {
                report.push(
                    "MC104",
                    Severity::Error,
                    cspan(row),
                    format!(
                        "inequality multiplier `{}` appears in {} complementarity pairs \
                         (expected exactly 1)",
                        model.var_name(mult),
                        pairs.len()
                    ),
                );
            } else {
                let ci = pairs[0];
                let slack = &model.complementarities()[ci].slack;
                let g = &c.expr;
                let mut ok = close(slack.constant_part(), -g.constant_part())
                    && slack.n_terms() == g.n_terms();
                if ok {
                    for (v, coef) in g.terms() {
                        if !close(slack.coef(v), -coef) {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    report.push(
                        "MC105",
                        Severity::Error,
                        Span::Complementarity {
                            index: ci,
                            multiplier: model.var_name(mult).to_string(),
                        },
                        format!(
                            "slack of `{}` is not the negated primal row `{p}::pf[{key}]`",
                            model.var_name(mult)
                        ),
                    );
                }
            }
        } else if lo.is_finite() || hi.is_finite() {
            report.push(
                "MC102",
                Severity::Warning,
                vspan(mult),
                format!(
                    "equality multiplier has bounds [{lo}, {hi}]; free multipliers are \
                     required not to cut off true duals"
                ),
            );
        }

        // Gradient balance: the multiplier's coefficient in each inner
        // variable's stationarity carrier must equal the variable's
        // coefficient in this primal row.
        for (v, a) in c.expr.terms() {
            let Some(carrier) = stationarity_carrier(model, &ix, p, v) else {
                continue; // outer variable: no stationarity condition
            };
            let got = carrier.coef(mult);
            if !close(got, a) && reported_grad.insert((mult.0, v.0)) {
                report.push(
                    "MC103",
                    Severity::Error,
                    cspan(row),
                    format!(
                        "stationarity imbalance for `{}`: multiplier `{}` contributes {got} \
                         but the primal row carries coefficient {a}",
                        model.var_name(v),
                        model.var_name(mult)
                    ),
                );
            }
        }
    }

    // Spurious stationarity terms: a multiplier appearing in a stationarity
    // row with no (or a different) primal counterpart.
    for (&(p, vkey), &row) in &ix.stat {
        for (mv, got) in model.constraints()[row].expr.terms() {
            let mname = model.var_name(mv);
            let is_lam = names::tagged_key(mname, p, "lam");
            let is_mu = names::tagged_key(mname, p, "mu");
            let Some(key) = is_lam.or(is_mu) else {
                continue; // quadratic own-term or outer contribution
            };
            match ix.pf.get(&(p, key)) {
                None => {
                    report.push(
                        "MC101",
                        Severity::Error,
                        cspan(row),
                        format!(
                            "stationarity row references multiplier `{mname}` but no \
                             primal row `{p}::pf[{key}]` exists"
                        ),
                    );
                }
                Some(&pf_row) => {
                    let want = model.constraints()[pf_row]
                        .expr
                        .terms()
                        .find(|(v, _)| model.var_name(*v) == vkey)
                        .map_or(0.0, |(_, c)| c);
                    let v = model
                        .constraints()[pf_row]
                        .expr
                        .terms()
                        .find(|(v, _)| model.var_name(*v) == vkey)
                        .map(|(v, _)| v);
                    if !close(got, want) {
                        let vid = v.map_or(usize::MAX, |v| v.0);
                        if reported_grad.insert((mv.0, vid)) {
                            report.push(
                                "MC103",
                                Severity::Error,
                                cspan(row),
                                format!(
                                    "stationarity imbalance for `{vkey}`: multiplier \
                                     `{mname}` contributes {got} but the primal row \
                                     carries coefficient {want}"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // Orphan multipliers: a lam/mu variable no primal row claimed.
    for (map, kind) in [(&ix.lam, "lam"), (&ix.mu, "mu")] {
        for (&(p, key), &mult) in map {
            if !claimed.contains(&mult.0) {
                report.push(
                    "MC101",
                    Severity::Error,
                    vspan(mult),
                    format!(
                        "multiplier `{p}::{kind}[{key}]` has no matching primal row \
                         `{p}::pf[{key}]` (was the row dropped or renamed?)"
                    ),
                );
            }
        }
    }

    // Inner variables with no stationarity condition at all.
    for (&(p, _), &row) in &ix.pf {
        if !ix.active.contains(p) {
            continue;
        }
        for (v, _) in model.constraints()[row].expr.terms() {
            let vname = model.var_name(v);
            if !vname.starts_with(p)
                || names::tagged_key(vname, p, "lam").is_some()
                || names::tagged_key(vname, p, "mu").is_some()
                || !vname[p.len()..].starts_with("::")
                || model.var_kind(v) == VarKind::Binary
            {
                continue; // outer variable, multiplier, or gate binary
            }
            if !ix.stat.contains_key(&(p, vname)) && !ix.compl_of.contains_key(&v.0) {
                report.push(
                    "MC106",
                    Severity::Error,
                    vspan(v),
                    format!(
                        "inner variable of `{p}` has neither a stationarity row \
                         `{p}::stat[{vname}]` nor a reduced-cost complementarity pair"
                    ),
                );
            }
        }
    }

    report.merge(check_bigm(model));
    report
}

/// MC107 — interval analysis of rows containing binaries: fixing any one
/// binary to 0 or 1 must leave the row satisfiable for *some* assignment of
/// the remaining variables within their boxes. A violation means a big-M
/// constant fails to dominate the derived variable bounds (or overshoots
/// them), statically forcing the binary.
fn check_bigm(model: &Model) -> Report {
    let mut report = Report::new();
    for (i, c) in model.constraints().iter().enumerate() {
        let binaries: Vec<(VarRef, f64)> = c
            .expr
            .terms()
            .filter(|(v, _)| model.var_kind(*v) == VarKind::Binary)
            .collect();
        if binaries.is_empty() {
            continue;
        }
        for &(u, cu) in &binaries {
            for fixed in [0.0, 1.0] {
                let mut min_act = c.expr.constant_part() + cu * fixed;
                let mut max_act = min_act;
                for (v, coef) in c.expr.terms() {
                    if v == u {
                        continue;
                    }
                    let (lo, hi) = model.var_bounds(v);
                    let (a, b) = if coef >= 0.0 {
                        (coef * lo, coef * hi)
                    } else {
                        (coef * hi, coef * lo)
                    };
                    min_act += a;
                    max_act += b;
                }
                let tol = 1e-7 * (1.0 + c.expr.max_abs_coef() + c.expr.constant_part().abs());
                let infeasible = match c.sense {
                    Sense::Le => min_act > tol,
                    Sense::Ge => max_act < -tol,
                    Sense::Eq => min_act > tol || max_act < -tol,
                };
                if infeasible {
                    report.push(
                        "MC107",
                        Severity::Warning,
                        Span::Constraint {
                            index: i,
                            name: c.name.clone().unwrap_or_default(),
                        },
                        format!(
                            "binary `{}` = {fixed} makes this row infeasible by interval \
                             analysis (activity in [{min_act}, {max_act}] vs {:?} 0); a \
                             big-M constant may not dominate the variable bounds",
                            model.var_name(u),
                            c.sense
                        ),
                    );
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::kkt::{append_kkt, InnerProblem};
    use metaopt_model::{LinExpr, Model, ObjSense};

    /// `max x s.t. x <= 3, x >= 0` — the canonical clean KKT system.
    fn clean_kkt() -> Model {
        let mut m = Model::new();
        let mut inner = InnerProblem::new("inner");
        let x = inner.add_var(&mut m, "x", 0.0, f64::INFINITY).unwrap();
        inner
            .constrain_named("cap", LinExpr::from(x) - 3.0, Sense::Le)
            .unwrap();
        inner.set_objective(ObjSense::Max, x);
        append_kkt(&mut m, &inner, 100.0).unwrap();
        m
    }

    #[test]
    fn clean_kkt_system_has_no_findings() {
        let r = check(&clean_kkt());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn flipped_dual_sign_is_mc102() {
        let mut m = clean_kkt();
        let lam = (0..m.n_vars())
            .map(VarRef)
            .find(|&v| m.var_name(v).contains("::lam["))
            .unwrap();
        m.set_var_bounds_unchecked(lam, -100.0, 0.0);
        let r = check(&m);
        assert!(r.has_code("MC102"), "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn dropped_complementarity_is_mc104() {
        let mut m = clean_kkt();
        // Drop the λ ⟂ (3 − x) pair (index of the lam-multiplier pair).
        let lam_pair = (0..m.n_complementarities())
            .find(|&i| {
                m.var_name(m.complementarities()[i].multiplier).contains("::lam[")
            })
            .unwrap();
        m.remove_complementarity(lam_pair);
        let r = check(&m);
        assert!(r.has_code("MC104"), "{r}");
    }

    #[test]
    fn duplicated_complementarity_is_mc104() {
        let mut m = clean_kkt();
        let lam_pair = (0..m.n_complementarities())
            .find(|&i| {
                m.var_name(m.complementarities()[i].multiplier).contains("::lam[")
            })
            .unwrap();
        let dup = m.complementarities()[lam_pair].clone();
        m.push_complementarity_unchecked(dup.multiplier, dup.slack);
        let r = check(&m);
        assert!(r.has_code("MC104"), "{r}");
    }

    #[test]
    fn perturbed_slack_is_mc105() {
        let mut m = clean_kkt();
        let lam_pair = (0..m.n_complementarities())
            .find(|&i| {
                m.var_name(m.complementarities()[i].multiplier).contains("::lam[")
            })
            .unwrap();
        m.mutate_complementarity(lam_pair, |c| c.slack.add_constant(1.0));
        let r = check(&m);
        assert!(r.has_code("MC105"), "{r}");
    }

    #[test]
    fn renamed_multiplier_is_mc101() {
        // Two inequality rows: renaming one multiplier leaves the other to
        // keep the prefix recognizably KKT-encoded (a prefix with *no*
        // multipliers at all is a legitimate primal-only encoding).
        let mut m = Model::new();
        let mut inner = InnerProblem::new("inner");
        let x = inner.add_var(&mut m, "x", 0.0, f64::INFINITY).unwrap();
        inner
            .constrain_named("cap", LinExpr::from(x) - 3.0, Sense::Le)
            .unwrap();
        inner
            .constrain_named("cap2", LinExpr::from(x) - 5.0, Sense::Le)
            .unwrap();
        inner.set_objective(ObjSense::Max, x);
        append_kkt(&mut m, &inner, 100.0).unwrap();
        let lam = (0..m.n_vars())
            .map(VarRef)
            .find(|&v| m.var_name(v) == "inner::lam[cap]")
            .unwrap();
        m.rename_var(lam, "not_a_multiplier");
        let r = check(&m);
        assert!(r.has_code("MC101"), "{r}");
    }

    #[test]
    fn forced_binary_bigm_is_mc107() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0).unwrap();
        let u = m.add_binary("u").unwrap();
        // x + 100 u <= 20: u = 1 forces min activity 80 > 0 → flagged.
        m.constrain_named("gate", LinExpr::from(x) + 100.0 * u, Sense::Le, 20.0)
            .unwrap();
        let r = check(&m);
        assert!(r.has_code("MC107"), "{r}");
        // A dominating big-M is silent.
        let mut ok = Model::new();
        let x = ok.add_var("x", 0.0, 10.0).unwrap();
        let u = ok.add_binary("u").unwrap();
        ok.constrain_named("gate", LinExpr::from(x) + 10.0 * u, Sense::Le, 20.0)
            .unwrap();
        assert!(!check(&ok).has_code("MC107"));
    }
}
