//! Bounded LP presolve with exact postsolve.
//!
//! A deliberately *small* set of reductions, each one exactly
//! solution-set-preserving and dual-reconstructible — this is not a full
//! presolver, it is the subset whose postsolve can restore a complete
//! primal/dual certificate without re-solving anything:
//!
//! * **fixed variables** (`lo == hi`) are substituted into their rows and
//!   the objective offset;
//! * **empty rows** are checked for `0 ∈ [rlo, rhi]` (else the problem is
//!   proven infeasible) and dropped with a zero dual;
//! * **singleton rows** (`a·x_j ∈ [rlo, rhi]`) become variable-bound
//!   tightenings — the "obvious bound tightening" pass — and are dropped;
//!   their duals are reconstructed during postsolve from the residual
//!   reduced cost of `x_j`;
//! * **strictly redundant rows** (activity range implied by the variable
//!   boxes with a safety margin) are dropped with a zero dual;
//! * activity bounds also prove infeasibility outright when a row can
//!   never reach its range.
//!
//! The passes cascade (a singleton row can fix a variable, which can
//! empty another row, …) through a bounded fixpoint loop. Postsolve
//! unwinds the reductions in reverse: fixed variables are re-inserted,
//! dropped-row duals are reconstructed, and reduced costs are recomputed
//! wholesale against the *original* matrix so the returned
//! [`Solution`] certifies the original problem.

use crate::problem::{LpProblem, VarId};
use crate::solution::{Solution, SolveStatus};
use crate::solver::{Simplex, SimplexConfig};
use crate::LpResult;

/// Absolute slack allowed when presolve decides feasibility questions
/// (stricter than the solver's `feas_tol`, so presolve never declares
/// infeasible a problem the simplex would accept).
const PRESOLVE_TOL: f64 = 1e-9;

/// Margin required before a row is declared strictly redundant; wide
/// enough that the dropped row stays slack at any tolerance-feasible
/// optimum of the reduced problem.
const REDUNDANCY_MARGIN: f64 = 1e-6;

/// Fixpoint cap: each pass only shrinks the problem, but cascades are
/// bounded anyway for predictable worst-case cost.
const MAX_PASSES: usize = 10;

/// Why a row left the problem during presolve (postsolve uses this to
/// reconstruct its dual multiplier).
#[derive(Debug, Clone)]
enum DroppedRow {
    /// Empty or strictly redundant: the row is slack at every feasible
    /// point of the reduced problem, its dual is zero.
    Slack,
    /// Singleton row `coef · x_var ∈ [rlo, rhi]` converted into a bound;
    /// postsolve attributes `x_var`'s residual reduced cost to it.
    Singleton {
        var: usize,
        coef: f64,
    },
}

/// Outcome of [`Presolve::reduce`].
// `Reduced(Presolve)` dwarfs `Infeasible`, but the value is consumed
// immediately by the caller (matched once, never stored in bulk), so
// boxing would only add an allocation per solve.
#[allow(clippy::large_enum_variant)]
pub enum PresolveOutcome {
    /// The (possibly) shrunken problem plus the postsolve recipe.
    Reduced(Presolve),
    /// Presolve proved the constraints unsatisfiable before any simplex
    /// iteration.
    Infeasible,
}

/// A presolved problem: the reduced LP and everything needed to map a
/// reduced solution back onto the original problem.
pub struct Presolve {
    reduced: LpProblem,
    /// Original problem data retained for postsolve certification.
    orig_n: usize,
    orig_m: usize,
    orig_obj_offset: f64,
    orig_obj: Vec<f64>,
    orig_lo: Vec<f64>,
    orig_hi: Vec<f64>,
    orig_row_lo: Vec<f64>,
    orig_row_hi: Vec<f64>,
    orig_triplets: Vec<(usize, usize, f64)>,
    /// Reduced-variable index → original variable index.
    kept_vars: Vec<usize>,
    /// Reduced-row index → original row index.
    kept_rows: Vec<usize>,
    /// Original variables eliminated at a fixed value.
    fixed: Vec<(usize, f64)>,
    /// Dropped rows in drop order (unwound in reverse by postsolve).
    dropped: Vec<(usize, DroppedRow)>,
}

impl Presolve {
    /// Runs the reduction passes over `p`. Returns
    /// [`PresolveOutcome::Infeasible`] when a pass proves the constraints
    /// unsatisfiable; otherwise the reduced problem (which may equal the
    /// input when nothing fired).
    pub fn reduce(p: &LpProblem) -> LpResult<PresolveOutcome> {
        p.validate()?;
        let n = p.n_vars();
        let m = p.n_rows();
        let mut lo = p.lo.clone();
        let mut hi = p.hi.clone();
        let mut row_lo = p.row_lo.clone();
        let mut row_hi = p.row_hi.clone();
        // Row-wise working matrix with duplicate (row, col) entries merged.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for &(r, c, v) in p.triplets() {
            rows[r].push((c, v));
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            row.dedup_by(|&mut (c2, v2), &mut (c1, ref mut v1)| {
                if c1 == c2 {
                    *v1 += v2;
                    true
                } else {
                    false
                }
            });
            row.retain(|&(_, v)| v != 0.0);
        }
        let mut var_alive = vec![true; n];
        let mut row_alive = vec![true; m];
        let mut fixed_at = vec![f64::NAN; n];
        let mut fixed: Vec<(usize, f64)> = Vec::new();
        let mut dropped: Vec<(usize, DroppedRow)> = Vec::new();
        let mut obj_offset = p.obj_offset;

        for _pass in 0..MAX_PASSES {
            let mut changed = false;

            // Fixed-variable substitution.
            for j in 0..n {
                if !var_alive[j] || lo[j] < hi[j] {
                    continue;
                }
                let v = lo[j];
                var_alive[j] = false;
                fixed_at[j] = v;
                fixed.push((j, v));
                obj_offset += p.obj[j] * v;
                changed = true;
            }
            // Purge dead variables from live rows, folding their
            // contribution into the activity range.
            for (i, row) in rows.iter_mut().enumerate() {
                if !row_alive[i] {
                    continue;
                }
                let before = row.len();
                row.retain(|&(c, a)| {
                    if var_alive[c] {
                        true
                    } else {
                        let shift = a * fixed_at[c];
                        if row_lo[i].is_finite() {
                            row_lo[i] -= shift;
                        }
                        if row_hi[i].is_finite() {
                            row_hi[i] -= shift;
                        }
                        false
                    }
                });
                if row.len() != before {
                    changed = true;
                }
            }

            // Row passes: empty, singleton, infeasible, redundant.
            for i in 0..m {
                if !row_alive[i] {
                    continue;
                }
                let (rlo, rhi) = (row_lo[i], row_hi[i]);
                let scale = 1.0
                    + [rlo, rhi]
                        .into_iter()
                        .filter(|v| v.is_finite())
                        .fold(0.0_f64, |a, v| a.max(v.abs()));
                let tol = PRESOLVE_TOL * scale;
                match rows[i].len() {
                    0 => {
                        if rlo > tol || rhi < -tol {
                            return Ok(PresolveOutcome::Infeasible);
                        }
                        row_alive[i] = false;
                        dropped.push((i, DroppedRow::Slack));
                        changed = true;
                    }
                    1 => {
                        let (j, a) = rows[i][0];
                        // Implied box rlo/a <= x_j <= rhi/a (sides swap
                        // when a < 0; infinite row bounds stay infinite).
                        let (mut ilo, mut ihi) = (rlo / a, rhi / a);
                        if a < 0.0 {
                            std::mem::swap(&mut ilo, &mut ihi);
                        }
                        if ilo.is_nan() || ihi.is_nan() {
                            // 0/0 from an infinite bound over a — treat
                            // that side as unconstrained.
                            ilo = if ilo.is_nan() { f64::NEG_INFINITY } else { ilo };
                            ihi = if ihi.is_nan() { f64::INFINITY } else { ihi };
                        }
                        // Tolerance from the finite magnitudes only — an
                        // infinite bound must not disable the check.
                        let fin = |v: f64| if v.is_finite() { v.abs() } else { 0.0 };
                        let vtol = PRESOLVE_TOL
                            * (1.0 + fin(lo[j]).max(fin(hi[j])).max(fin(ilo)).max(fin(ihi)));
                        if ilo > hi[j] + vtol || ihi < lo[j] - vtol {
                            return Ok(PresolveOutcome::Infeasible);
                        }
                        if ilo > lo[j] {
                            lo[j] = ilo.min(hi[j]);
                        }
                        if ihi < hi[j] {
                            hi[j] = ihi.max(lo[j]);
                        }
                        row_alive[i] = false;
                        dropped.push((i, DroppedRow::Singleton { var: j, coef: a }));
                        changed = true;
                    }
                    _ => {
                        // Activity range of the row over the current boxes.
                        let (mut min_act, mut max_act) = (0.0_f64, 0.0_f64);
                        for &(j, a) in &rows[i] {
                            let (l, h) = if a > 0.0 {
                                (lo[j], hi[j])
                            } else {
                                (hi[j], lo[j])
                            };
                            min_act += a * l; // -inf propagates
                            max_act += a * h;
                        }
                        if min_act > rhi + tol || max_act < rlo - tol {
                            return Ok(PresolveOutcome::Infeasible);
                        }
                        let margin = REDUNDANCY_MARGIN * scale;
                        let lo_slack = !rlo.is_finite() || min_act >= rlo + margin;
                        let hi_slack = !rhi.is_finite() || max_act <= rhi - margin;
                        if lo_slack && hi_slack && min_act.is_finite() && max_act.is_finite()
                        {
                            row_alive[i] = false;
                            dropped.push((i, DroppedRow::Slack));
                            changed = true;
                        }
                    }
                }
            }

            if !changed {
                break;
            }
        }

        // Assemble the reduced problem over surviving variables/rows.
        let mut reduced = LpProblem::new();
        let mut var_map = vec![usize::MAX; n];
        let mut kept_vars = Vec::new();
        for j in 0..n {
            if var_alive[j] {
                let rj = reduced.add_var(lo[j], hi[j], p.obj[j])?;
                var_map[j] = rj.0;
                kept_vars.push(j);
            }
        }
        reduced.add_obj_offset(obj_offset)?;
        let mut kept_rows = Vec::new();
        for i in 0..m {
            if row_alive[i] {
                reduced.add_range_row(
                    row_lo[i],
                    row_hi[i],
                    rows[i]
                        .iter()
                        .map(|&(c, v)| (VarId(var_map[c]), v)),
                )?;
                kept_rows.push(i);
            }
        }

        Ok(PresolveOutcome::Reduced(Presolve {
            reduced,
            orig_n: n,
            orig_m: m,
            orig_obj_offset: p.obj_offset,
            orig_obj: p.obj.clone(),
            orig_lo: p.lo.clone(),
            orig_hi: p.hi.clone(),
            orig_row_lo: p.row_lo.clone(),
            orig_row_hi: p.row_hi.clone(),
            orig_triplets: p.triplets().to_vec(),
            kept_vars,
            kept_rows,
            fixed,
            dropped,
        }))
    }

    /// The reduced problem to hand to a solver.
    pub fn problem(&self) -> &LpProblem {
        &self.reduced
    }

    /// How many original variables presolve eliminated.
    pub fn vars_eliminated(&self) -> usize {
        self.orig_n - self.kept_vars.len()
    }

    /// How many original rows presolve eliminated.
    pub fn rows_eliminated(&self) -> usize {
        self.orig_m - self.kept_rows.len()
    }

    /// Maps a solution of [`Presolve::problem`] back onto the original
    /// problem: re-inserts fixed variables, reconstructs duals of dropped
    /// rows (singleton rows absorb the residual reduced cost of their
    /// variable; slack rows get zero), and recomputes every reduced cost
    /// against the original matrix.
    pub fn postsolve(&self, sol: &Solution) -> Solution {
        let mut x = vec![0.0; self.orig_n];
        for (rj, &j) in self.kept_vars.iter().enumerate() {
            x[j] = sol.x.get(rj).copied().unwrap_or(0.0);
        }
        for &(j, v) in &self.fixed {
            x[j] = v;
        }
        let mut y = vec![0.0; self.orig_m];
        for (ri, &i) in self.kept_rows.iter().enumerate() {
            y[i] = sol.duals.get(ri).copied().unwrap_or(0.0);
        }
        // Reduced costs under the duals assigned so far.
        let mut rc = self.orig_obj.clone();
        for &(r, c, v) in &self.orig_triplets {
            rc[c] -= y[r] * v;
        }
        if sol.status == SolveStatus::Optimal {
            // Unwind dropped rows newest-first: a singleton row whose
            // variable ended up strictly inside its *original* box must
            // carry the variable's residual reduced cost (the tightened
            // bound it created does not exist in the original problem).
            // The residual is only attributed to a row that is *binding*
            // at the postsolved point — complementary slackness forbids a
            // nonzero multiplier on a slack row, and several singleton
            // rows over the same variable may have been dropped.
            for (i, reason) in self.dropped.iter().rev() {
                let DroppedRow::Singleton { var, coef } = reason else {
                    continue;
                };
                let d = rc[*var];
                let itol = 1e-7 * (1.0 + x[*var].abs());
                let interior = x[*var] > self.orig_lo[*var] + itol
                    && x[*var] < self.orig_hi[*var] - itol;
                let act: f64 = self
                    .orig_triplets
                    .iter()
                    .filter(|&&(r, _, _)| r == *i)
                    .map(|&(_, c, v)| v * x[c])
                    .sum();
                let atol = 1e-6 * (1.0 + act.abs());
                let binding = (act - self.orig_row_lo[*i]).abs() <= atol
                    || (act - self.orig_row_hi[*i]).abs() <= atol;
                if interior && binding && d.abs() > PRESOLVE_TOL {
                    y[*i] = d / coef;
                    // Re-derive the reduced costs the new multiplier
                    // touches (the original row may also cover fixed
                    // variables eliminated before it was dropped).
                    for &(r, c, v) in &self.orig_triplets {
                        if r == *i {
                            rc[c] -= y[*i] * v;
                        }
                    }
                }
            }
        }
        let objective = if sol.status == SolveStatus::Optimal {
            // Recomputed over the full point — identical to the reduced
            // objective by construction (fixed contributions were moved
            // into the reduced offset).
            self.orig_obj
                .iter()
                .zip(&x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
                + self.orig_obj_offset
        } else {
            f64::NAN
        };
        Solution {
            status: sol.status,
            x,
            objective,
            duals: y,
            reduced_costs: rc,
            iterations: sol.iterations,
            degraded: sol.degraded,
        }
    }

    /// Convenience: presolve `p`, solve the reduction with `cfg`, and
    /// postsolve the result. A presolve-detected infeasibility returns a
    /// regular `Infeasible` solution without running the simplex.
    pub fn solve_with_config(p: &LpProblem, cfg: SimplexConfig) -> LpResult<Solution> {
        match Presolve::reduce(p)? {
            PresolveOutcome::Infeasible => Ok(Solution {
                status: SolveStatus::Infeasible,
                x: vec![0.0; p.n_vars()],
                objective: f64::NAN,
                duals: vec![0.0; p.n_rows()],
                reduced_costs: vec![0.0; p.n_vars()],
                iterations: 0,
                degraded: false,
            }),
            PresolveOutcome::Reduced(ps) => {
                let sol = Simplex::with_config(ps.problem(), cfg).solve()?;
                Ok(ps.postsolve(&sol))
            }
        }
    }

    /// [`Presolve::solve_with_config`] under the default configuration.
    pub fn solve(p: &LpProblem) -> LpResult<Solution> {
        Self::solve_with_config(p, SimplexConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowSense, INF, NEG_INF};

    #[test]
    fn fixed_vars_are_substituted() {
        // min x + 2f  s.t. x + f >= 3, f fixed at 1 ⇒ min x + 2, x >= 2.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0).unwrap();
        let f = p.add_var(1.0, 1.0, 2.0).unwrap();
        p.add_row(RowSense::Ge, 3.0, [(x, 1.0), (f, 1.0)]).unwrap();
        let PresolveOutcome::Reduced(ps) = Presolve::reduce(&p).unwrap() else {
            panic!("expected reduction");
        };
        assert_eq!(ps.vars_eliminated(), 1);
        let sol = Presolve::solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-9, "{}", sol.objective);
        assert!((sol.x[x.0] - 2.0).abs() < 1e-9);
        assert!((sol.x[f.0] - 1.0).abs() < 1e-12);
        assert!(p.max_violation(&sol.x) < 1e-7);
    }

    #[test]
    fn empty_row_feasible_and_infeasible() {
        let mut p = LpProblem::new();
        let _ = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_range_row(-1.0, 1.0, []).unwrap();
        assert!(matches!(
            Presolve::reduce(&p).unwrap(),
            PresolveOutcome::Reduced(_)
        ));
        let mut q = LpProblem::new();
        let _ = q.add_var(0.0, 1.0, 1.0).unwrap();
        q.add_range_row(2.0, 3.0, []).unwrap();
        assert!(matches!(
            Presolve::reduce(&q).unwrap(),
            PresolveOutcome::Infeasible
        ));
    }

    #[test]
    fn singleton_row_tightens_and_reconstructs_dual() {
        // min −x  s.t. 2x <= 8, 0 <= x <= 10: optimum x = 4 on the row.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, -1.0).unwrap();
        p.add_row(RowSense::Le, 8.0, [(x, 2.0)]).unwrap();
        let sol = Presolve::solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.x[x.0] - 4.0).abs() < 1e-9);
        assert!((sol.objective + 4.0).abs() < 1e-9);
        // Stationarity: c = yᵀa ⇒ −1 = 2y ⇒ y = −0.5, rc = 0.
        assert!((sol.duals[0] + 0.5).abs() < 1e-9, "duals {:?}", sol.duals);
        assert!(sol.reduced_costs[x.0].abs() < 1e-9);
    }

    #[test]
    fn singleton_cascade_fixes_variable() {
        // x == 5 via singleton equality, then row 2 becomes empty-feasible.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 3.0).unwrap();
        p.add_row(RowSense::Eq, 5.0, [(x, 1.0)]).unwrap();
        p.add_row(RowSense::Le, 6.0, [(x, 1.0)]).unwrap();
        let PresolveOutcome::Reduced(ps) = Presolve::reduce(&p).unwrap() else {
            panic!("expected reduction");
        };
        assert_eq!(ps.vars_eliminated(), 1);
        assert_eq!(ps.rows_eliminated(), 2);
        assert_eq!(ps.problem().n_vars(), 0);
        let sol = Presolve::solve(&p).unwrap();
        assert!((sol.x[x.0] - 5.0).abs() < 1e-12);
        assert!((sol.objective - 15.0).abs() < 1e-9);
        // The equality row absorbs the full cost gradient: y = 3.
        assert!((sol.duals[0] - 3.0).abs() < 1e-9, "duals {:?}", sol.duals);
        assert!(p.max_violation(&sol.x) < 1e-7);
    }

    #[test]
    fn contradictory_singletons_detected() {
        let mut p = LpProblem::new();
        let x = p.add_var(NEG_INF, INF, 0.0).unwrap();
        p.add_row(RowSense::Ge, 5.0, [(x, 1.0)]).unwrap();
        p.add_row(RowSense::Le, 4.0, [(x, 1.0)]).unwrap();
        assert!(matches!(
            Presolve::reduce(&p).unwrap(),
            PresolveOutcome::Infeasible
        ));
    }

    #[test]
    fn redundant_row_dropped_with_zero_dual() {
        // x + y <= 100 can never bind under the boxes.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, -1.0).unwrap();
        let y = p.add_var(0.0, 1.0, -1.0).unwrap();
        p.add_row(RowSense::Le, 100.0, [(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowSense::Le, 1.5, [(x, 1.0), (y, 1.0)]).unwrap();
        let PresolveOutcome::Reduced(ps) = Presolve::reduce(&p).unwrap() else {
            panic!("expected reduction");
        };
        assert_eq!(ps.rows_eliminated(), 1);
        let sol = Presolve::solve(&p).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-9);
        assert_eq!(sol.duals[0], 0.0);
        assert!(sol.duals[1] < -1e-9, "binding row carries the dual");
    }

    #[test]
    fn activity_bounds_prove_infeasibility() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 0.0).unwrap();
        let y = p.add_var(0.0, 1.0, 0.0).unwrap();
        p.add_row(RowSense::Ge, 5.0, [(x, 1.0), (y, 1.0)]).unwrap();
        assert!(matches!(
            Presolve::reduce(&p).unwrap(),
            PresolveOutcome::Infeasible
        ));
    }

    #[test]
    fn untouched_problem_passes_through() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 4.0, -1.0).unwrap();
        let y = p.add_var(0.0, 4.0, -2.0).unwrap();
        p.add_row(RowSense::Le, 5.0, [(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowSense::Le, 7.0, [(x, 2.0), (y, 1.0)]).unwrap();
        let PresolveOutcome::Reduced(ps) = Presolve::reduce(&p).unwrap() else {
            panic!("expected reduction");
        };
        assert_eq!(ps.vars_eliminated(), 0);
        assert_eq!(ps.rows_eliminated(), 0);
        let direct = Simplex::new(&p).solve().unwrap();
        let via = Presolve::solve(&p).unwrap();
        assert!((direct.objective - via.objective).abs() < 1e-9);
    }
}
