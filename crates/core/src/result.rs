//! Result types of the adversarial search.

use metaopt_milp::MilpStatus;
use metaopt_model::ModelStats;
use metaopt_resilience::{DegradationLevel, SolverFault};
use std::time::Duration;

/// Outcome of one adversarial-gap search (Eq. 1 solved once).
#[derive(Debug, Clone)]
pub struct GapResult {
    /// The discovered adversarial demand volumes (one per instance pair).
    pub demands: Vec<f64>,
    /// The gap claimed by the optimization model (absolute flow units).
    pub model_gap: f64,
    /// The gap *re-measured* by running the real OPT and the real heuristic
    /// on `demands` — the soundness check. Model and verified gaps agree to
    /// solver tolerance on a correct encoding.
    pub verified_gap: f64,
    /// `verified_gap / Σ capacities` — Figure 3's comparable metric.
    pub normalized_gap: f64,
    /// Best proven upper bound on the gap (equals `model_gap` at proven
    /// optimality).
    pub upper_bound: f64,
    /// Branch-and-bound terminal status.
    pub status: MilpStatus,
    /// Problem-size statistics (Figure 6: #vars, #linear, #SOS, #binary).
    pub stats: ModelStats,
    /// Nodes processed by branch-and-bound.
    pub nodes: usize,
    /// Time spent building the single-shot model.
    pub build_time: Duration,
    /// Time spent solving it.
    pub solve_time: Duration,
    /// `(seconds, incumbent gap)` trajectory of the search (for Figure 3).
    pub trajectory: Vec<(f64, f64)>,
    /// How far down the white-box → certified-incumbent → black-box
    /// ladder the finder had to fall to produce this result.
    /// [`DegradationLevel::None`] means the MILP search ran to its
    /// configured stop rule.
    pub degradation: DegradationLevel,
    /// Faults contained along the way (callback panics, LP breakdowns,
    /// deadline interruptions). Empty on a clean run.
    pub faults: Vec<SolverFault>,
}

impl GapResult {
    /// Relative disagreement between the model's gap and the re-measured
    /// gap (should be ≈ 0; a large value indicates an encoding bug or an
    /// unverified callback-era incumbent).
    pub fn certification_error(&self) -> f64 {
        (self.model_gap - self.verified_gap).abs() / self.verified_gap.abs().max(1.0)
    }

    /// Whether the result came from anywhere below the top rung of the
    /// degradation ladder (in which case [`GapResult::upper_bound`] is not
    /// a valid dual bound).
    pub fn is_degraded(&self) -> bool {
        self.degradation > DegradationLevel::None
    }
}

impl std::fmt::Display for GapResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gap {:.3} (verified {:.3}, normalized {:.4}, bound {:.3}) [{:?}, {} nodes, {:.2}s, {}]",
            self.model_gap,
            self.verified_gap,
            self.normalized_gap,
            self.upper_bound,
            self.status,
            self.nodes,
            self.solve_time.as_secs_f64(),
            self.stats,
        )?;
        if self.is_degraded() {
            write!(f, " degraded={}", self.degradation)?;
        }
        Ok(())
    }
}
