//! Figure 3 — Gap between OPT and heuristics vs. execution time on B4:
//! the white-box method against hill climbing and simulated annealing, for
//! both DP (threshold = 5% of capacity) and POP (2 partitions).
//!
//! Prints each method's best-gap-so-far trajectory (normalized by the sum
//! of edge capacities, the paper's comparable metric) and a summary of the
//! final gap and the time at which each method reached 90% of its final
//! value. The paper's qualitative claims to check: the white-box finds
//! larger gaps, faster; DP is harder for black-box methods than POP.

use metaopt_bench::{budget_secs, f, CsvOut};
use metaopt_blackbox::{hill_climb, simulated_annealing, SearchConfig, SearchOutcome};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_te::{pop::random_partitions, Heuristic, TeInstance};
use metaopt_topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn summarize(label: &str, heur: &str, traj: &[(f64, f64)], norm: f64, csv: &mut CsvOut) {
    let final_gap = traj.last().map_or(0.0, |&(_, g)| g);
    let t90 = traj
        .iter()
        .find(|&&(_, g)| g >= 0.9 * final_gap)
        .map_or(0.0, |&(t, _)| t);
    println!(
        "  {label:<12} {heur:<10} final normalized gap {:.4}, 90% reached at {:.1}s",
        final_gap / norm,
        t90
    );
    for &(t, g) in traj {
        csv.row([
            heur.to_string(),
            label.to_string(),
            f(t),
            f(g / norm),
        ]);
    }
}

fn blackbox_traj(out: &SearchOutcome) -> Vec<(f64, f64)> {
    out.trajectory.clone()
}

fn main() {
    let budget = budget_secs();
    let topo = builtin::b4(1000.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let threshold = 0.05 * 1000.0;
    println!(
        "Figure 3: B4, {} pairs, budget {budget}s per method, gap normalized by Σcap = {norm}",
        inst.n_pairs()
    );

    let mut csv = CsvOut::new("fig3_trajectories", &["heuristic", "method", "secs", "norm_gap"]);

    // --- Demand Pinning -------------------------------------------------
    let dp_spec = HeuristicSpec::DemandPinning { threshold };
    let dp_eval = Heuristic::DemandPinning { threshold };

    let wb = find_adversarial_gap(
        &inst,
        &dp_spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    summarize("white-box", "DP", &wb.trajectory, norm, &mut csv);

    let bb_cfg = SearchConfig {
        time_budget: Duration::from_secs_f64(budget),
        seed: 1,
        ..Default::default()
    };
    let hc = hill_climb(&inst, &dp_eval, &bb_cfg).unwrap();
    summarize("hill-climb", "DP", &blackbox_traj(&hc), norm, &mut csv);
    let sa = simulated_annealing(&inst, &dp_eval, &bb_cfg).unwrap();
    summarize("sim-anneal", "DP", &blackbox_traj(&sa), norm, &mut csv);

    // --- POP (2 partitions, 5 instantiations averaged) -------------------
    let mut rng = StdRng::seed_from_u64(7);
    let partitions = random_partitions(inst.n_pairs(), 2, 5, &mut rng);
    let pop_spec = HeuristicSpec::Pop {
        partitions: partitions.clone(),
        mode: PopMode::Average,
    };
    let pop_eval = Heuristic::Pop { partitions };

    let wb = find_adversarial_gap(
        &inst,
        &pop_spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    summarize("white-box", "POP", &wb.trajectory, norm, &mut csv);

    let hc = hill_climb(&inst, &pop_eval, &bb_cfg).unwrap();
    summarize("hill-climb", "POP", &blackbox_traj(&hc), norm, &mut csv);
    let sa = simulated_annealing(&inst, &pop_eval, &bb_cfg).unwrap();
    summarize("sim-anneal", "POP", &blackbox_traj(&sa), norm, &mut csv);

    let path = csv.flush().unwrap();
    println!("\ntrajectories written to {}", path.display());
}
