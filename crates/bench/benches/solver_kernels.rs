//! Criterion micro-benchmarks of the solver substrates: simplex cold solve,
//! dual-simplex warm re-solve, KKT model construction, and branch-and-bound
//! on a small complementarity system.

use criterion::{criterion_group, criterion_main, Criterion};
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_lp::{Simplex, VarId};
use metaopt_milp::{solve, MilpConfig};
use metaopt_model::compile::compile;
use metaopt_model::{kkt, InnerProblem, LinExpr, Model, ObjSense, Sense};
use metaopt_te::{flow::opt_max_flow_lp, TeInstance};
use metaopt_topology::builtin;
use metaopt_topology::synth::circulant;

fn te_instance() -> TeInstance {
    TeInstance::all_pairs(circulant(8, 2, 1000.0), 2).unwrap()
}

fn bench_simplex_cold(c: &mut Criterion) {
    let inst = te_instance();
    let demands = vec![400.0; inst.n_pairs()];
    let (lp, _) = opt_max_flow_lp(&inst, &demands).unwrap();
    c.bench_function("simplex_cold_te_lp", |b| {
        b.iter(|| {
            let sol = Simplex::new(&lp).solve().unwrap();
            std::hint::black_box(sol.objective)
        });
    });
}

fn bench_simplex_warm(c: &mut Criterion) {
    let inst = te_instance();
    let demands = vec![400.0; inst.n_pairs()];
    let (lp, _) = opt_max_flow_lp(&inst, &demands).unwrap();
    let mut sx = Simplex::new(&lp);
    sx.solve().unwrap();
    c.bench_function("dual_simplex_warm_resolve", |b| {
        let mut flip = false;
        b.iter(|| {
            // Alternate tightening/relaxing one variable's bound.
            let hi = if flip { 0.0 } else { f64::INFINITY };
            flip = !flip;
            sx.set_var_bounds(VarId(0), 0.0, hi).unwrap();
            let sol = sx.resolve().unwrap();
            std::hint::black_box(sol.status)
        });
    });
}

fn bench_kkt_build(c: &mut Criterion) {
    let inst = TeInstance::all_pairs(builtin::b4(1000.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::default();
    c.bench_function("build_adversarial_model_b4_dp", |b| {
        b.iter(|| {
            let am =
                build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
                    .unwrap();
            std::hint::black_box(am.model.n_constraints())
        });
    });
    c.bench_function("compile_adversarial_model_b4_dp", |b| {
        let am = build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
            .unwrap();
        b.iter(|| {
            let cm = compile(&am.model).unwrap();
            std::hint::black_box(cm.stats.n_sos)
        });
    });
}

fn bench_bnb_complementarity(c: &mut Criterion) {
    // The toy adversarial gap problem: small but exercises KKT branching.
    c.bench_function("bnb_toy_stackelberg", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let theta = m.add_var("theta", 0.0, 4.0).unwrap();
            let mut opt = InnerProblem::new("opt");
            let xo = opt.add_var(&mut m, "xo", 0.0, f64::INFINITY).unwrap();
            opt.constrain(LinExpr::from(xo) - theta, Sense::Le).unwrap();
            opt.constrain_pair(xo, Sense::Le, 3.0).unwrap();
            opt.set_objective(ObjSense::Max, xo);
            kkt::append_kkt(&mut m, &opt, 1e3).unwrap();
            let mut heu = InnerProblem::new("heu");
            let xh = heu.add_var(&mut m, "xh", 0.0, f64::INFINITY).unwrap();
            heu.constrain(LinExpr::from(xh) - LinExpr::term(theta, 0.5), Sense::Le)
                .unwrap();
            heu.constrain_pair(xh, Sense::Le, 3.0).unwrap();
            heu.set_objective(ObjSense::Max, xh);
            kkt::append_kkt(&mut m, &heu, 1e3).unwrap();
            m.set_objective(ObjSense::Max, LinExpr::from(xo) - xh).unwrap();
            let sol = solve(&m, &MilpConfig::default()).unwrap();
            std::hint::black_box(sol.objective)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simplex_cold, bench_simplex_warm, bench_kkt_build, bench_bnb_complementarity
}
criterion_main!(benches);
