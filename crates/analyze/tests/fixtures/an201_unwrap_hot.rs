//@ rel: crates/server/src/server.rs
//@ expect: AN201 6:14
use std::sync::Mutex;

fn read_state(m: &Mutex<u64>, v: Option<u64>) -> u64 {
    let x = v.unwrap();
    let g = m.lock().unwrap();
    x + *g
}
