#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-core
//!
//! The paper's primary contribution: a *white-box*, provable search for
//! adversarial inputs that maximize the gap between an optimal algorithm
//! and a heuristic (Eq. 1):
//!
//! ```text
//!   argmax_{d ∈ ConstrainedSet}  OPT(d) − Heuristic(d)
//! ```
//!
//! The two-stage Stackelberg game is rewritten into a *single-shot*
//! mixed-integer program (§3.1): the demand volumes `d` become leader
//! variables; each inner convex problem is replaced by its KKT conditions
//! (`metaopt-model::kkt`); the complementary-slackness products and the
//! conditional structure of the heuristics become the SOS/binary structure
//! branch-and-bound (`metaopt-milp`) handles disjunctively.
//!
//! Supported heuristics (§3.2):
//!
//! * **Demand Pinning** — the *or*-constraint of Eq. 4 is encoded with pin
//!   indicator binaries and big-M rows ([`encode_dp`]),
//! * **POP** — one KKT-rewritten inner LP per (instantiation, partition);
//!   the random heuristic value is summarized either by the empirical
//!   average or by a tail order statistic computed through a sorting
//!   network ([`encode_pop`]).
//!
//! Realistic input constraints (§3.3) — demand boxes, goalpost distances,
//! intra-input linear constraints, and diverse-input exclusion balls — are
//! expressed through [`ConstrainedSet`].
//!
//! The finder certifies every reported gap by *re-running the actual
//! heuristic* on the discovered demands ([`GapResult::verified_gap`]), and
//! reports the problem-size statistics of the paper's Figure 6.

pub mod check;
pub mod constraints;
pub mod encode_dp;
pub mod encode_opt;
pub mod encode_pop;
pub mod finder;
pub mod result;
pub mod sweep;
pub mod topology_attack;

pub use check::{
    check_adversarial_model, topology_context, validate_adversarial_setup, ModelCheckMode,
};
pub use constraints::{ConstrainedSet, Distance, Goalpost, LinearDemandConstraint};
pub use encode_pop::PopMode;
pub use finder::{find_adversarial_gap, find_diverse_inputs, FinderConfig, HeuristicSpec, OptEncoding};
pub use result::GapResult;
pub use metaopt_milp::FactorBackend;
pub use metaopt_resilience::{Budget, DegradationLevel, FaultPlan, FaultSite, SolverFault};
pub use sweep::{
    find_gap_at_least, sweep_max_gap, sweep_tick, PendingProbe, SliceBudget, SweepResult,
    SweepState, SweepTick, SweepWitness,
};
pub use topology_attack::{find_adversarial_topology, TopologyAttack, TopologyAttackResult};

/// Errors raised by the adversarial-gap layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Model construction failed.
    Model(String),
    /// The branch-and-bound search failed.
    Milp(metaopt_milp::MilpError),
    /// TE evaluation failed.
    Te(String),
    /// Invalid configuration.
    Config(String),
    /// The static model checker found error-severity diagnostics and the
    /// gate is in deny mode (debug builds). The payload is the checker's
    /// summary plus the first few diagnostics.
    ModelCheck(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(s) => write!(f, "model error: {s}"),
            CoreError::Milp(e) => write!(f, "milp error: {e}"),
            CoreError::Te(s) => write!(f, "te error: {s}"),
            CoreError::Config(s) => write!(f, "config error: {s}"),
            CoreError::ModelCheck(s) => write!(f, "model check failed: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<metaopt_model::ModelError> for CoreError {
    fn from(e: metaopt_model::ModelError) -> Self {
        CoreError::Model(e.to_string())
    }
}

impl From<metaopt_milp::MilpError> for CoreError {
    fn from(e: metaopt_milp::MilpError) -> Self {
        CoreError::Milp(e)
    }
}

impl From<metaopt_te::TeError> for CoreError {
    fn from(e: metaopt_te::TeError) -> Self {
        CoreError::Te(e.to_string())
    }
}

/// Result alias for this crate.
pub type CoreResult<T> = Result<T, CoreError>;
