//! Pre-registered obs handles for the branch-and-bound engines.
//!
//! One `MilpMetrics` travels inside [`crate::MilpConfig`]; every engine
//! (serial, deterministic wave, work-stealing) increments the same
//! cells, and the embedded [`LpMetrics`] is installed on each worker
//! simplex so node-LP pivot/refactor/warm-cold deltas accumulate with
//! no per-pivot cost. All handles default to no-ops; observation never
//! feeds back into search order, so the deterministic engine stays
//! bit-identical with metrics enabled.

use metaopt_lp::LpMetrics;
use metaopt_obs::{Counter, Registry};

/// Counter handles for the tree-search layer.
#[derive(Debug, Clone, Default)]
pub struct MilpMetrics {
    /// Nodes expanded (certified), summed across engines and workers.
    pub nodes: Counter,
    /// Deterministic-engine waves dispatched.
    pub waves: Counter,
    /// Work-stealing engine: successful steals from the shared frontier.
    pub steals: Counter,
    /// Incumbent improvements accepted.
    pub incumbents: Counter,
    /// Node-LP kernel counters, installed on every worker simplex.
    pub lp: LpMetrics,
}

impl MilpMetrics {
    /// No-op handles.
    pub fn disabled() -> MilpMetrics {
        MilpMetrics::default()
    }

    /// Registers the `metaopt_milp_*` (and nested `metaopt_lp_*`)
    /// families on `registry`.
    pub fn register(registry: &Registry) -> MilpMetrics {
        MilpMetrics {
            nodes: registry.counter(
                "metaopt_milp_nodes_total",
                "Branch-and-bound nodes expanded",
                &[],
            ),
            waves: registry.counter(
                "metaopt_milp_waves_total",
                "Deterministic-engine waves dispatched",
                &[],
            ),
            steals: registry.counter(
                "metaopt_milp_steals_total",
                "Work-stealing engine frontier steals",
                &[],
            ),
            incumbents: registry.counter(
                "metaopt_milp_incumbents_total",
                "Incumbent improvements accepted",
                &[],
            ),
            lp: LpMetrics::register(registry),
        }
    }
}
