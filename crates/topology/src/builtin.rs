//! The production topologies of the paper's evaluation (§4): B4, Abilene,
//! and SWAN.
//!
//! * **Abilene** is the public Internet2 backbone: 11 PoPs, 14 physical
//!   links (28 directed edges). The node/link list below is the canonical
//!   one used throughout the TE literature.
//! * **B4** is Google's inter-datacenter WAN as published in Jain et al.,
//!   SIGCOMM 2013: 12 sites, 19 physical links. The exact adjacency is
//!   reconstructed from the paper's map figure (the list used by public TE
//!   repositories).
//! * **SWAN** (Hong et al., SIGCOMM 2013) is Microsoft's production WAN and
//!   is *not* public. We ship a like-for-like reconstruction at the scale
//!   the paper reports ("all three topologies have roughly the same number
//!   of nodes and edges"): 10 sites, 17 links spanning two continents. See
//!   DESIGN.md for the substitution rationale.
//!
//! All links are bidirectional with uniform capacity (default 1000 units
//! per direction), matching the paper's normalization where thresholds and
//! perturbations are expressed as percentages of link capacity.

use crate::graph::Topology;

/// Default per-direction link capacity.
pub const DEFAULT_CAPACITY: f64 = 1000.0;

/// The Abilene backbone: 11 nodes, 14 links (28 directed edges).
pub fn abilene(capacity: f64) -> Topology {
    let mut t = Topology::new("Abilene");
    let names = [
        "Seattle",
        "Sunnyvale",
        "LosAngeles",
        "Denver",
        "KansasCity",
        "Houston",
        "Chicago",
        "Indianapolis",
        "Atlanta",
        "Washington",
        "NewYork",
    ];
    let ids: Vec<_> = names.iter().map(|n| t.add_node(*n)).collect();
    let links = [
        (0, 1),  // Seattle–Sunnyvale
        (0, 3),  // Seattle–Denver
        (1, 2),  // Sunnyvale–LosAngeles
        (1, 3),  // Sunnyvale–Denver
        (2, 5),  // LosAngeles–Houston
        (3, 4),  // Denver–KansasCity
        (4, 5),  // KansasCity–Houston
        (4, 7),  // KansasCity–Indianapolis
        (5, 8),  // Houston–Atlanta
        (6, 7),  // Chicago–Indianapolis
        (6, 10), // Chicago–NewYork
        (7, 8),  // Indianapolis–Atlanta
        (8, 9),  // Atlanta–Washington
        (9, 10), // Washington–NewYork
    ];
    for (a, b) in links {
        t.add_link(ids[a], ids[b], capacity).expect("valid link");
    }
    t
}

/// Google's B4 inter-datacenter WAN: 12 nodes, 19 links (38 directed
/// edges), reconstructed from the SIGCOMM 2013 paper's map.
pub fn b4(capacity: f64) -> Topology {
    let mut t = Topology::new("B4");
    let ids = t.add_nodes("dc", 12);
    let links = [
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 4),
        (2, 3),
        (2, 4),
        (3, 5),
        (4, 5),
        (4, 6),
        (5, 7),
        (6, 7),
        (6, 8),
        (7, 9),
        (8, 9),
        (8, 10),
        (9, 11),
        (10, 11),
        (3, 8),
        (5, 10),
    ];
    for (a, b) in links {
        t.add_link(ids[a], ids[b], capacity).expect("valid link");
    }
    t
}

/// SWAN-like reconstruction: 10 sites, 17 links across two regional
/// clusters bridged by long-haul links (the public SWAN paper's production
/// topology is confidential; see module docs).
pub fn swan(capacity: f64) -> Topology {
    let mut t = Topology::new("SWAN");
    let ids = t.add_nodes("s", 10);
    let links = [
        // Region A mesh (0-4).
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (0, 3),
        // Region B mesh (5-9).
        (5, 6),
        (5, 7),
        (6, 8),
        (7, 8),
        (7, 9),
        (8, 9),
        (5, 9),
        // Inter-region long hauls.
        (3, 5),
        (4, 6),
        (2, 7),
    ];
    for (a, b) in links {
        t.add_link(ids[a], ids[b], capacity).expect("valid link");
    }
    t
}

/// A GEANT-like pan-European research topology reconstruction: 22 PoPs,
/// 36 links. Larger than the paper's three evaluation topologies; used by
/// the scaling experiments (§5 "scaling to larger problem sizes"). The
/// adjacency is an approximation of the published GEANT2 map (dense
/// western-European core, sparser periphery), not a licensed dataset.
pub fn geant(capacity: f64) -> Topology {
    let mut t = Topology::new("GEANT");
    let ids = t.add_nodes("pop", 22);
    let links = [
        // Western core mesh.
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (3, 5),
        (4, 6),
        (5, 6),
        (5, 7),
        (6, 8),
        (7, 8),
        // Northern arc.
        (0, 9),
        (9, 10),
        (10, 11),
        (11, 3),
        (9, 12),
        (12, 13),
        (13, 11),
        // Southern arc.
        (2, 14),
        (14, 15),
        (15, 16),
        (16, 6),
        (14, 17),
        (17, 18),
        (18, 16),
        // Eastern extension.
        (8, 19),
        (19, 20),
        (20, 21),
        (21, 13),
        (19, 21),
        (18, 20),
        // Long-haul chords.
        (0, 14),
        (1, 9),
        (7, 19),
        (12, 21),
    ];
    for (a, b) in links {
        t.add_link(ids[a], ids[b], capacity).expect("valid link");
    }
    t
}

/// The three production topologies at their default capacity, keyed for
/// iteration in experiment harnesses.
pub fn production_suite() -> Vec<Topology> {
    vec![
        swan(DEFAULT_CAPACITY),
        b4(DEFAULT_CAPACITY),
        abilene(DEFAULT_CAPACITY),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::shortest_path;

    #[test]
    fn abilene_shape() {
        let t = abilene(1000.0);
        assert_eq!(t.n_nodes(), 11);
        assert_eq!(t.n_edges(), 28);
        assert_eq!(t.total_capacity(), 28_000.0);
    }

    #[test]
    fn b4_shape() {
        let t = b4(1000.0);
        assert_eq!(t.n_nodes(), 12);
        assert_eq!(t.n_edges(), 38);
    }

    #[test]
    fn swan_shape() {
        let t = swan(1000.0);
        assert_eq!(t.n_nodes(), 10);
        assert_eq!(t.n_edges(), 34);
    }

    #[test]
    fn all_strongly_connected() {
        for t in production_suite() {
            for s in t.nodes() {
                for d in t.nodes() {
                    if s != d {
                        assert!(
                            shortest_path(&t, s, d).is_ok(),
                            "{}: {} → {} disconnected",
                            t.name(),
                            s.0,
                            d.0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn geant_shape_and_connectivity() {
        let t = geant(1000.0);
        assert_eq!(t.n_nodes(), 22);
        assert_eq!(t.n_edges(), 72); // 36 links × 2 directions
        for s in t.nodes() {
            for d in t.nodes() {
                if s != d {
                    assert!(shortest_path(&t, s, d).is_ok());
                }
            }
        }
    }

    #[test]
    fn coast_to_coast_hop_count() {
        let t = abilene(1000.0);
        // Seattle → NewYork must take at least 3 hops on Abilene.
        let p = shortest_path(&t, crate::NodeId(0), crate::NodeId(10)).unwrap();
        assert!(p.len() >= 3, "suspicious path length {}", p.len());
    }
}
