//! The write-ahead journal: every campaign state transition is one
//! checksummed, length-prefixed line, appended and synced before the
//! transition takes effect anywhere else.
//!
//! Line format (version 1):
//!
//! ```text
//! J1 <len> <crc32-hex8> <payload>\n
//! ```
//!
//! * `len` — payload length in bytes (decimal). Catches truncation
//!   deterministically (a shorter payload cannot fake its length).
//! * `crc32` — CRC-32 of the payload bytes. Catches corruption (any burst
//!   of ≤ 32 bits, i.e. every single-byte error).
//! * `payload` — a `kind field...` record; fields are whitespace-free
//!   tokens ([`crate::wire::escape`]).
//!
//! A hard kill (SIGKILL, OOM, power loss) can tear at most the *final*
//! line: [`read_journal`] drops a torn tail (missing newline, short
//! payload, or failed checksum on the last line) and reports it, while the
//! same damage anywhere *before* the tail is refused as corruption — a
//! mid-file tear cannot happen under append-only writes, so it means the
//! file was edited or the disk is lying, and resuming from it would be
//! unsound.

use crate::{wire, CampaignError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Append-only journal writer. Every [`Journal::append`] flushes and
/// fsyncs before returning: when the call returns, the record survives the
/// process.
#[derive(Debug)]
pub struct Journal {
    file: BufWriter<File>,
    path: PathBuf,
    /// Durability counters (no-op by default); `append` is the single
    /// choke point every record passes through, so counting here covers
    /// campaign runs and the job server's book alike.
    metrics: crate::CampaignMetrics,
}

impl Journal {
    /// Creates a fresh journal (refuses to overwrite an existing one — an
    /// existing journal means "resume", never "restart").
    pub fn create(dir: &Path) -> Result<Journal, CampaignError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CampaignError::Io(format!("create {}: {e}", dir.display())))?;
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| CampaignError::Io(format!("create {}: {e}", path.display())))?;
        Ok(Journal {
            file: BufWriter::new(file),
            path,
            metrics: crate::CampaignMetrics::disabled(),
        })
    }

    /// Opens an existing journal for appending (resume path).
    pub fn open_append(dir: &Path) -> Result<Journal, CampaignError> {
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| CampaignError::Io(format!("open {}: {e}", path.display())))?;
        Ok(Journal {
            file: BufWriter::new(file),
            path,
            metrics: crate::CampaignMetrics::disabled(),
        })
    }

    /// Installs durability counters; subsequent appends/fsyncs count
    /// against them. Observation only — write behaviour is unchanged.
    pub fn set_metrics(&mut self, metrics: crate::CampaignMetrics) {
        self.metrics = metrics;
    }

    /// Appends one record payload (without the `J1 len crc` envelope —
    /// this method adds it), then flushes and syncs.
    pub fn append(&mut self, payload: &str) -> Result<(), CampaignError> {
        debug_assert!(!payload.contains('\n'), "payloads are single-line");
        let line = encode_line(payload);
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.get_ref().sync_data())
            .map(|()| {
                self.metrics.journal_appends.inc();
                self.metrics.journal_fsyncs.inc();
            })
            .map_err(|e| CampaignError::Io(format!("append {}: {e}", self.path.display())))
    }
}

/// Wraps a payload in the `J1 <len> <crc> <payload>\n` envelope.
pub fn encode_line(payload: &str) -> String {
    format!(
        "J1 {} {:08x} {payload}\n",
        payload.len(),
        wire::crc32(payload.as_bytes())
    )
}

/// Outcome of replaying a journal file from disk.
#[derive(Debug)]
pub struct JournalContents {
    /// The verified record payloads, in append order.
    pub records: Vec<String>,
    /// Whether a torn final line was detected and dropped (evidence of a
    /// hard kill mid-append; harmless — the write-ahead discipline means
    /// the lost record's transition never took effect).
    pub torn_tail: bool,
}

/// Reads and verifies a journal. Corruption anywhere except the final
/// line is an error; a torn final line is dropped and flagged.
pub fn read_journal(dir: &Path) -> Result<JournalContents, CampaignError> {
    let path = dir.join(JOURNAL_FILE);
    let mut raw = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| CampaignError::Io(format!("read {}: {e}", path.display())))?;
    parse_journal_bytes(&raw)
}

/// Parses raw journal bytes (separated from I/O for the corruption
/// property tests).
pub fn parse_journal_bytes(raw: &[u8]) -> Result<JournalContents, CampaignError> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut offset = 0usize;
    while offset < raw.len() {
        let (line, next, complete) = match raw[offset..].iter().position(|&b| b == b'\n') {
            Some(rel) => (&raw[offset..offset + rel], offset + rel + 1, true),
            None => (&raw[offset..], raw.len(), false),
        };
        let at_tail = next >= raw.len();
        match verify_line(line, complete) {
            Ok(payload) => records.push(payload),
            Err(why) => {
                if at_tail {
                    // A hard kill tears at most the final append.
                    torn_tail = true;
                } else {
                    return Err(CampaignError::Corrupt(format!(
                        "journal record {} (byte offset {offset}): {why}",
                        records.len()
                    )));
                }
            }
        }
        offset = next;
    }
    Ok(JournalContents { records, torn_tail })
}

/// Verifies one journal line's envelope, returning the payload.
fn verify_line(line: &[u8], newline_terminated: bool) -> Result<String, String> {
    if !newline_terminated {
        return Err("missing newline terminator".into());
    }
    let text = std::str::from_utf8(line).map_err(|_| "not valid UTF-8".to_string())?;
    let rest = text
        .strip_prefix("J1 ")
        .ok_or_else(|| "missing `J1` envelope".to_string())?;
    let (len_s, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing length field".to_string())?;
    let (crc_s, payload) = rest
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let len: usize = len_s.parse().map_err(|_| format!("bad length `{len_s}`"))?;
    if payload.len() != len {
        return Err(format!("length mismatch: header {len}, got {}", payload.len()));
    }
    let crc = u32::from_str_radix(crc_s, 16).map_err(|_| format!("bad checksum `{crc_s}`"))?;
    let actual = wire::crc32(payload.as_bytes());
    if crc != actual {
        return Err(format!("checksum mismatch: header {crc:08x}, got {actual:08x}"));
    }
    Ok(payload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_parse_round_trips() {
        let mut bytes = Vec::new();
        let payloads = ["campaign v1 demo", "cell 0 spec", "done 0 3 120"];
        for p in payloads {
            bytes.extend_from_slice(encode_line(p).as_bytes());
        }
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(!out.torn_tail);
        assert_eq!(out.records, payloads);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        let full = encode_line("ckpt 0 blob");
        // Simulate a SIGKILL mid-append: half the final line, no newline.
        bytes.extend_from_slice(&full.as_bytes()[..full.len() / 2]);
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.records, vec!["cell 0 spec".to_string()]);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        bytes.extend_from_slice(encode_line("ckpt 0 blob").as_bytes());
        // Flip a payload byte in the *first* record.
        let flip = 12;
        bytes[flip] ^= 0x01;
        let err = parse_journal_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CampaignError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn truncated_tail_with_newline_is_torn() {
        // A record whose payload was cut short but whose newline made it
        // to disk: caught by the length field.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        let full = encode_line("ckpt 0 some-longer-blob");
        let cut = &full.as_bytes()[..full.len() - 6];
        bytes.extend_from_slice(cut);
        bytes.push(b'\n');
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.records.len(), 1);
    }
}
