//! Disk-fault chaos for the journal: deterministic EIO / ENOSPC /
//! short-write injection through the [`FaultyDisk`] shim, plus an
//! exhaustive every-byte-offset truncation sweep. The invariant under
//! test is the fsync-poisoning rule: after *any* injected fault, the
//! reopen + tail-verify + reconcile protocol always converges to a clean
//! journal holding every acknowledged record exactly once, in order —
//! never a duplicate, never a silent loss, never a panic.

use metaopt_campaign::{
    encode_line, parse_journal_bytes, read_journal, CampaignError, FaultyDisk, IoFaultKind,
    IoFaultPlan, IoFaultSite, Journal,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "metaopt-iofault-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The recovery protocol a journal owner is expected to run: append each
/// payload; on failure, reopen (re-read + tail-verify + truncate), check
/// whether the failed record made it to disk anyway (fsync failed but the
/// write landed), and re-append only if it did not. Returns the payloads
/// the caller believes are durable.
fn append_all_with_recovery(journal: &mut Journal, payloads: &[String]) -> Vec<String> {
    let mut acked = Vec::new();
    for payload in payloads {
        // Bounded retry: each loop iteration either succeeds or consumes
        // one armed fault, and plans in this suite arm at most a few.
        let mut tries = 0;
        loop {
            tries += 1;
            assert!(tries <= 8, "append of {payload:?} did not converge");
            match journal.append(payload) {
                Ok(()) => {
                    acked.push(payload.clone());
                    break;
                }
                Err(err) => {
                    assert!(
                        matches!(err, CampaignError::Io(_) | CampaignError::DiskFull(_)),
                        "unexpected error class: {err:?}"
                    );
                    assert!(journal.is_poisoned(), "failed append must poison");
                    let contents = journal.reopen().expect("reopen after poison");
                    assert!(!journal.is_poisoned(), "reopen must clear poison");
                    // Reconcile: everything previously acknowledged must
                    // still be there (a later fault can never un-commit an
                    // acked record)...
                    assert!(
                        contents.records.len() >= acked.len()
                            && contents.records[..acked.len()] == acked[..],
                        "reopen lost acknowledged records: {:?} vs {acked:?}",
                        contents.records
                    );
                    // ...and at most the failed record may sit beyond them
                    // (write landed, sync failed).
                    assert!(
                        contents.records.len() <= acked.len() + 1,
                        "reopen surfaced records nobody wrote: {:?}",
                        contents.records
                    );
                    if contents.records.len() == acked.len() + 1 {
                        assert_eq!(
                            &contents.records[acked.len()],
                            payload,
                            "trailing record must be the in-flight one"
                        );
                        acked.push(payload.clone());
                        break;
                    }
                }
            }
        }
    }
    acked
}

fn payloads(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("rec {i} payload-{}", "x".repeat(1 + (i * 7) % 23)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One or two armed disk faults, anywhere in a run of appends, of any
    /// kind: the recovery protocol converges and the on-disk journal ends
    /// bit-exact — every payload once, in order, no torn tail.
    #[test]
    fn injected_faults_never_lose_or_duplicate_records(
        n_appends in 1usize..8,
        site_a in 0u8..2,
        occ_a in 1usize..10,
        kind_a in 0u8..3,
        second in 0u8..2,
        site_b in 0u8..2,
        occ_b in 1usize..10,
        kind_b in 0u8..3,
    ) {
        let site = |s: u8| if s == 0 { IoFaultSite::Append } else { IoFaultSite::Sync };
        let kind = |k: u8| match k {
            0 => IoFaultKind::Eio,
            1 => IoFaultKind::Enospc,
            _ => IoFaultKind::ShortWrite,
        };
        let mut plan = IoFaultPlan::new().inject_at(site(site_a), occ_a, kind(kind_a));
        if second == 1 {
            // Two faults on the same (site, occurrence) collapse to one
            // armed entry firing once; that is fine for this property.
            plan = plan.inject_at(site(site_b), occ_b, kind(kind_b));
        }
        let dir = tmp_dir("prop");
        let disk = Arc::new(FaultyDisk::new(plan));
        let mut journal = Journal::create_with(&dir, disk).expect("create");
        let want = payloads(n_appends);
        let acked = append_all_with_recovery(&mut journal, &want);
        prop_assert_eq!(&acked, &want, "every payload must end acknowledged");
        drop(journal);
        let replay = read_journal(&dir).expect("replay");
        prop_assert!(!replay.torn_tail, "recovery must leave no tear behind");
        prop_assert_eq!(replay.records, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ENOSPC keeps its classification through poisoning: the first
    /// failure and every refused append after it report `DiskFull`, so a
    /// supervisor can tell "disk is full, degrade to draining" from
    /// "disk is lying, stop".
    #[test]
    fn enospc_classification_is_sticky(occ in 1usize..5) {
        let dir = tmp_dir("enospc");
        let plan = IoFaultPlan::new().inject_at(IoFaultSite::Sync, occ, IoFaultKind::Enospc);
        let disk = Arc::new(FaultyDisk::new(plan));
        let mut journal = Journal::create_with(&dir, disk).expect("create");
        let mut saw_full = false;
        for payload in payloads(6) {
            match journal.append(&payload) {
                Ok(()) => {}
                Err(CampaignError::DiskFull(_)) => {
                    saw_full = true;
                    let again = journal.append("x").unwrap_err();
                    prop_assert!(
                        matches!(again, CampaignError::DiskFull(_)),
                        "poisoned refusal changed class: {again:?}"
                    );
                    break;
                }
                Err(other) => prop_assert!(false, "wrong class for ENOSPC: {other:?}"),
            }
        }
        prop_assert!(saw_full, "armed ENOSPC at occurrence {occ} never fired");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exhaustive, not sampled: cut the journal at *every* byte offset and
/// replay. Each cut must yield a clean prefix of the original records
/// with the torn-tail flag set exactly when the cut is off a record
/// boundary — the file-level contract the reopen path's truncation
/// relies on.
#[test]
fn truncation_at_every_byte_offset_replays_a_clean_prefix() {
    let records = payloads(5);
    let mut bytes = Vec::new();
    let mut boundaries = vec![0usize];
    for p in &records {
        bytes.extend_from_slice(encode_line(p).as_bytes());
        boundaries.push(bytes.len());
    }
    for cut in 0..=bytes.len() {
        let out = parse_journal_bytes(&bytes[..cut])
            .unwrap_or_else(|e| panic!("cut at {cut} must not be fatal: {e:?}"));
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            out.records,
            records[..whole],
            "cut at byte {cut} must replay exactly the whole records before it"
        );
        assert_eq!(
            out.torn_tail,
            !boundaries.contains(&cut),
            "torn flag wrong at cut {cut}"
        );
        assert_eq!(
            out.valid_len, boundaries[whole],
            "valid_len must be the last record boundary at cut {cut}"
        );
    }
}

/// Every single-byte corruption of a mid-file record is fatal on replay
/// (append-only writes cannot tear mid-file, so damage there means the
/// disk is lying), while tail-line damage is at worst a dropped tail.
#[test]
fn corruption_at_every_byte_offset_is_caught() {
    let records = payloads(3);
    let mut bytes = Vec::new();
    for p in &records {
        bytes.extend_from_slice(encode_line(p).as_bytes());
    }
    let last_line_start = bytes.len() - encode_line(&records[2]).len();
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        // Low-bit flip: always semantically visible (a case flip of a hex
        // digit, by contrast, parses to the same checksum).
        mutated[pos] ^= 0x01;
        match parse_journal_bytes(&mutated) {
            Err(CampaignError::Corrupt(_)) => {}
            Err(other) => panic!("flip at {pos}: wrong error class {other:?}"),
            Ok(out) => {
                // Survivable damage must be confined to the final line
                // (tail drop) — a newline flip can also *split* a line,
                // but then the halves fail verification and replay stops
                // at the damage, which the prefix check catches.
                assert!(
                    pos >= last_line_start || bytes[pos] == b'\n',
                    "flip at {pos} (mid-file, not a newline) passed silently"
                );
                assert!(
                    out.records.len() <= records.len(),
                    "flip at {pos} minted records"
                );
                for (got, want) in out.records.iter().zip(&records) {
                    assert_eq!(got, want, "flip at {pos} altered a record");
                }
            }
        }
    }
}
