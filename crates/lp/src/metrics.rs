//! Pre-registered obs handles for the simplex kernel.
//!
//! The kernel records *per-solve deltas*, never per-pivot increments:
//! [`crate::Simplex`] already counts iterations for its own refactor
//! cadence, and the recovery wrapper flushes the delta into these
//! counters once per `solve`/`resolve`. A default-constructed
//! (disabled) `LpMetrics` is a set of no-op handles, so un-instrumented
//! callers pay a branch per solve, nothing per pivot.

use metaopt_obs::{Counter, Registry};

/// Counter handles for one simplex instance (clone-shared; all
/// instances wired to the same registry share the same cells).
#[derive(Debug, Clone, Default)]
pub struct LpMetrics {
    /// Simplex pivots, summed over every solve and recovery rung.
    pub pivots: Counter,
    /// Rank-one basis updates (dense row ops or product-form etas) —
    /// pivots that changed the basis, excluding bound flips.
    pub updates: Counter,
    /// Basis refactorizations (periodic and recovery-forced).
    pub refactors: Counter,
    /// Successful solves that finished as genuine warm dual re-solves.
    pub warm_solves: Counter,
    /// Successful solves that ran the cold two-phase primal.
    pub cold_solves: Counter,
    /// Recovery-ladder rung 1 entries (cold restart).
    pub recovery_cold_restart: Counter,
    /// Recovery-ladder rung 2 entries (row equilibration).
    pub recovery_equilibrate: Counter,
    /// Recovery-ladder rung 3 entries (bound perturbation attempts).
    pub recovery_perturb: Counter,
    /// Recovery-ladder rung 4 entries (cached best-feasible fallback).
    pub recovery_best_feasible: Counter,
}

impl LpMetrics {
    /// No-op handles; every record call is a folded-away branch.
    pub fn disabled() -> LpMetrics {
        LpMetrics::default()
    }

    /// Registers the `metaopt_lp_*` families on `registry` (idempotent —
    /// handles from repeated calls share cells).
    pub fn register(registry: &Registry) -> LpMetrics {
        let rung = |r: &'static str| {
            registry.counter(
                "metaopt_lp_recovery_steps_total",
                "Numerical-recovery ladder entries by rung",
                &[("rung", r)],
            )
        };
        LpMetrics {
            pivots: registry.counter(
                "metaopt_lp_pivots_total",
                "Simplex pivots (iterations) across all solves",
                &[],
            ),
            updates: registry.counter(
                "metaopt_lp_updates_total",
                "Rank-one basis updates (dense row ops or eta file)",
                &[],
            ),
            refactors: registry.counter(
                "metaopt_lp_refactor_total",
                "Basis refactorizations (either backend)",
                &[],
            ),
            warm_solves: registry.counter(
                "metaopt_lp_solves_total",
                "Successful LP solves by start mode",
                &[("mode", "warm")],
            ),
            cold_solves: registry.counter(
                "metaopt_lp_solves_total",
                "Successful LP solves by start mode",
                &[("mode", "cold")],
            ),
            recovery_cold_restart: rung("cold_restart"),
            recovery_equilibrate: rung("equilibrate"),
            recovery_perturb: rung("perturb"),
            recovery_best_feasible: rung("best_feasible"),
        }
    }
}
