//! §5 extensions harness: quantized search, the binary-sweep strategy,
//! hose constraints, and topology attacks — the paper's "open issues and
//! future work" items this repository implements.

use metaopt_bench::{budget_secs, f, CsvOut};
use metaopt_core::{
    find_adversarial_gap, find_adversarial_topology, sweep_max_gap, ConstrainedSet,
    FinderConfig, HeuristicSpec, TopologyAttack,
};
use metaopt_te::TeInstance;
use metaopt_topology::builtin;
use std::time::Instant;

fn main() {
    let budget = budget_secs();
    let topo = builtin::swan(1000.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let threshold = 50.0;
    let spec = HeuristicSpec::DemandPinning { threshold };
    println!("§5 extensions on SWAN (DP, T=50), budget {budget}s per run\n");
    let mut csv = CsvOut::new("extensions", &["experiment", "norm_gap", "secs", "notes"]);

    // 1. Continuous vs quantized search (§5 "quantizing the space of
    //    inputs can speed up the search without sacrificing quality").
    let t = Instant::now();
    let cont = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    let cont_secs = t.elapsed().as_secs_f64();
    println!(
        "  continuous search : gap {:.4} in {:.1}s ({} nodes)",
        cont.verified_gap / norm,
        cont_secs,
        cont.nodes
    );
    csv.row(["continuous".into(), f(cont.verified_gap / norm), f(cont_secs), format!("{} nodes", cont.nodes)]);

    let t = Instant::now();
    let quant = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained().quantized(vec![0.0, threshold, 1000.0]),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    let quant_secs = t.elapsed().as_secs_f64();
    println!(
        "  quantized {{0,T,D}} : gap {:.4} in {:.1}s ({} nodes)",
        quant.verified_gap / norm,
        quant_secs,
        quant.nodes
    );
    csv.row(["quantized".into(), f(quant.verified_gap / norm), f(quant_secs), format!("{} nodes", quant.nodes)]);

    // 2. Binary sweep (the §3.3 Z3-style strategy) at a fraction of the
    //    budget per probe.
    let t = Instant::now();
    let sweep = sweep_max_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted((budget / 4.0).max(3.0)),
        0.0,
        norm,
        norm / 200.0,
    )
    .unwrap();
    let sweep_secs = t.elapsed().as_secs_f64();
    let sweep_gap = sweep.witness.as_ref().map_or(0.0, |w| w.verified_gap);
    println!(
        "  binary sweep      : gap {:.4} in {:.1}s ({} probes)",
        sweep_gap / norm,
        sweep_secs,
        sweep.probes
    );
    csv.row(["binary-sweep".into(), f(sweep_gap / norm), f(sweep_secs), format!("{} probes", sweep.probes)]);

    // 3. Topology attack: freeze the worst demands the continuous search
    //    found for the *intact* network, then ask how much worse a targeted
    //    <=25%-per-link degradation makes them.
    let demands: Vec<f64> = cont.demands.clone();
    let baseline = {
        let h = metaopt_te::Heuristic::DemandPinning { threshold };
        metaopt_te::eval::gap(&inst, &h, &demands).unwrap()
    };
    let t = Instant::now();
    let atk = find_adversarial_topology(
        &inst,
        &spec,
        &demands,
        &TopologyAttack::per_edge(0.25),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    let atk_secs = t.elapsed().as_secs_f64();
    let degraded = atk
        .capacities
        .iter()
        .enumerate()
        .filter(|(e, &c)| c < inst.topo.capacity(metaopt_topology::EdgeId(*e)) - 1e-6)
        .count();
    println!(
        "  topology attack   : gap {:.4} (baseline {:.4}) in {:.1}s ({} links degraded)",
        atk.gap.verified_gap / norm,
        baseline / norm,
        atk_secs,
        degraded
    );
    csv.row([
        "topology-attack".into(),
        f(atk.gap.verified_gap / norm),
        f(atk_secs),
        format!("baseline {:.4}, {} links", baseline / norm, degraded),
    ]);

    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
