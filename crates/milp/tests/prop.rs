//! Property tests: branch-and-bound vs exhaustive enumeration on random
//! small instances.

use metaopt_milp::{solve, MilpConfig, MilpStatus};
use metaopt_model::{LinExpr, Model, ObjSense, Sense};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random knapsacks: B&B must match brute force exactly.
    #[test]
    fn knapsack_matches_bruteforce(
        vw in proptest::collection::vec((0.5f64..10.0, 0.5f64..10.0), 1..9),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = vw.len();
        let total_w: f64 = vw.iter().map(|(_, w)| w).sum();
        let cap = total_w * cap_frac;

        let mut m = Model::new();
        let zs: Vec<_> = (0..n).map(|i| m.add_binary(format!("z{i}")).unwrap()).collect();
        let mut wsum = LinExpr::zero();
        let mut vsum = LinExpr::zero();
        for (i, (v, w)) in vw.iter().enumerate() {
            wsum.add_term(zs[i], *w);
            vsum.add_term(zs[i], *v);
        }
        m.constrain(wsum, Sense::Le, cap).unwrap();
        m.set_objective(ObjSense::Max, vsum).unwrap();
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        prop_assert_eq!(sol.status, MilpStatus::Optimal);

        // Brute force.
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let (mut wv, mut vv) = (0.0, 0.0);
            for (i, (v, w)) in vw.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    wv += w;
                    vv += v;
                }
            }
            if wv <= cap + 1e-9 {
                best = best.max(vv);
            }
        }
        prop_assert!((sol.objective - best).abs() <= 1e-6 * (1.0 + best),
            "bnb {} vs brute {}", sol.objective, best);
    }

    /// Random complementarity selection problems: minimize cᵀx subject to
    /// pairwise complementarities x_{2i} ⟂ x_{2i+1} and a coupling row
    /// forcing each pair to carry mass; brute force enumerates which side of
    /// each pair is zeroed.
    #[test]
    fn complementarity_matches_bruteforce(
        costs in proptest::collection::vec((0.1f64..5.0, 0.1f64..5.0), 1..6),
        need in 1.0f64..4.0,
    ) {
        let k = costs.len();
        let mut m = Model::new();
        let mut pairs = Vec::new();
        for (i, (ca, cb)) in costs.iter().enumerate() {
            let a = m.add_var(format!("a{i}"), 0.0, 10.0).unwrap();
            let b = m.add_var(format!("b{i}"), 0.0, 10.0).unwrap();
            // a + b >= need for each pair.
            m.constrain(LinExpr::from(a) + b, Sense::Ge, need).unwrap();
            m.add_complementarity(a, LinExpr::from(b)).unwrap();
            pairs.push((a, b, *ca, *cb));
        }
        let mut obj = LinExpr::zero();
        for (a, b, ca, cb) in &pairs {
            obj.add_term(*a, *ca);
            obj.add_term(*b, *cb);
        }
        m.set_objective(ObjSense::Min, obj).unwrap();
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        prop_assert_eq!(sol.status, MilpStatus::Optimal);

        // Brute force: per pair, zero one side; the other carries `need` at
        // the cheaper cost.
        let expect: f64 = costs.iter().map(|(ca, cb)| need * ca.min(*cb)).sum();
        prop_assert!((sol.objective - expect).abs() <= 1e-6 * (1.0 + expect),
            "bnb {} vs brute {}", sol.objective, expect);
        let _ = k;
    }

    /// Mixed binaries + complementarity: facility-style toggle. For each
    /// site, a binary gate z (cost f) enables capacity C; coverage must meet
    /// demand D; complementarity couples a helper pair. B&B objective must
    /// match brute force over gate patterns.
    #[test]
    fn gated_coverage_matches_bruteforce(
        sites in proptest::collection::vec((1.0f64..6.0, 2.0f64..8.0), 1..5),
        dfrac in 0.2f64..0.95,
    ) {
        let n = sites.len();
        let total_cap: f64 = sites.iter().map(|(_, c)| c).sum();
        let demand = total_cap * dfrac * 0.8;

        let mut m = Model::new();
        let mut cover = LinExpr::zero();
        let mut cost = LinExpr::zero();
        let mut gates = Vec::new();
        for (i, (f, c)) in sites.iter().enumerate() {
            let z = m.add_binary(format!("z{i}")).unwrap();
            let x = m.add_var(format!("x{i}"), 0.0, *c).unwrap();
            // x <= c·z
            m.constrain(LinExpr::from(x) - LinExpr::term(z, *c), Sense::Le, 0.0).unwrap();
            cover.add_term(x, 1.0);
            cost.add_term(z, *f);
            cost.add_term(x, 0.01);
            gates.push((z, x, *f, *c));
        }
        m.constrain(cover, Sense::Ge, demand).unwrap();
        m.set_objective(ObjSense::Min, cost).unwrap();
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        prop_assert_eq!(sol.status, MilpStatus::Optimal);

        // Brute force over gate patterns.
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let cap: f64 = sites.iter().enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, (_, c))| c)
                .sum();
            if cap + 1e-9 >= demand {
                let fixed: f64 = sites.iter().enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, (f, _))| f)
                    .sum();
                best = best.min(fixed + 0.01 * demand);
            }
        }
        prop_assert!((sol.objective - best).abs() <= 1e-5 * (1.0 + best.abs()),
            "bnb {} vs brute {}", sol.objective, best);
    }
}
