//! Golden tests for `GET /metrics`.
//!
//! * The boot exposition under an injected [`TestClock`] is pinned
//!   **byte-for-byte** against `tests/golden/metrics_boot.prom`: every
//!   family the server registers (server routes and jobs, campaign
//!   journal, milp engine, lp kernel) appears with its HELP/TYPE header
//!   in deterministic order, all counters zero, the boot-replay
//!   histogram holding exactly one zero-duration observation. Rerun with
//!   `METAOPT_BLESS=1` to regenerate the golden after an intentional
//!   metric-catalogue change.
//! * A job-running scrape asserts the solver families go live through
//!   the server path: submitting one job and waiting for `done` must
//!   move `metaopt_server_jobs_*`, `metaopt_campaign_journal_*`,
//!   `metaopt_milp_nodes_total`, and `metaopt_lp_pivots_total` on the
//!   same registry the endpoint renders.

use metaopt_campaign::TestClock;
use metaopt_obs::trace::DEFAULT_RING_CAPACITY;
use metaopt_obs::{Clock, Registry, Tracer};
use metaopt_server::client::{request, Response};
use metaopt_server::json::Json;
use metaopt_server::{serve, GapServer, ServerConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const GOLDEN: &str = include_str!("golden/metrics_boot.prom");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaopt-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Harness {
    addr: String,
    serve_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Harness {
    fn start(cfg: ServerConfig) -> Harness {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = GapServer::open(cfg).unwrap();
        let workers = server.start_workers();
        let serve_server = Arc::clone(&server);
        let serve_thread = std::thread::spawn(move || serve(&serve_server, listener).unwrap());
        drop(server);
        Harness {
            addr,
            serve_thread: Some(serve_thread),
            workers,
        }
    }

    fn call(&self, method: &str, path: &str, body: Option<&[u8]>) -> Response {
        request(&self.addr, method, path, body, Duration::from_secs(120)).unwrap()
    }

    fn scrape(&self) -> String {
        let resp = self.call("GET", "/metrics", None);
        assert_eq!(resp.status, 200);
        resp.text()
    }

    fn shutdown(mut self) {
        let resp = self.call("POST", "/admin/drain", None);
        assert_eq!(resp.status, 202, "{}", resp.text());
        self.serve_thread.take().unwrap().join().unwrap();
        for w in self.workers.drain(..) {
            w.join().unwrap();
        }
    }
}

fn config(tag: &str) -> ServerConfig {
    let clock = Arc::new(TestClock::new());
    ServerConfig {
        dir: tmp_dir(tag),
        workers: 1,
        registry: Registry::new(),
        tracer: Tracer::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            DEFAULT_RING_CAPACITY,
        ),
        clock,
        ..ServerConfig::default()
    }
}

/// Value of one exposition sample line (`name` includes labels, if any).
fn sample(render: &str, name: &str) -> f64 {
    let line = render
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("family `{name}` missing from exposition"));
    line[name.len() + 1..].trim().parse().unwrap()
}

/// The very first scrape of a fresh server under a frozen clock is
/// byte-identical to the committed golden exposition.
#[test]
fn boot_exposition_matches_golden() {
    let srv = Harness::start(config("golden"));
    let body = srv.scrape();
    srv.shutdown();

    if std::env::var_os("METAOPT_BLESS").is_some() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_boot.prom");
        std::fs::write(&path, &body).unwrap();
        return;
    }
    assert_eq!(
        body, GOLDEN,
        "boot /metrics drifted from tests/golden/metrics_boot.prom; \
         rerun with METAOPT_BLESS=1 if the catalogue change is intentional"
    );
}

/// One completed job moves the server, campaign, and solver families on
/// the same registry `GET /metrics` renders — the full vertical slice.
#[test]
fn job_run_moves_solver_families_through_the_endpoint() {
    let srv = Harness::start(config("vertical"));
    let boot = srv.scrape();
    assert_eq!(sample(&boot, "metaopt_server_jobs_admitted_total"), 0.0);
    assert_eq!(sample(&boot, "metaopt_milp_nodes_total"), 0.0);

    let body = concat!(
        "{\"client\":\"obs\",\"label\":\"vertical\",",
        "\"topology\":{\"kind\":\"fig1\",\"cap\":100.0},",
        "\"heuristic\":{\"kind\":\"dp\",\"threshold\":50.0},",
        // resolution 5 forces a probe above the true max gap (50), so the
        // sweep must *prove* infeasibility by branch-and-bound — easy
        // probes certify via the incumbent callback without expanding a
        // single node, which would leave the solver counters at zero.
        "\"sweep\":{\"lo\":40.0,\"hi\":60.0,\"resolution\":5.0},",
        "\"budget\":{\"probe_cap_nodes\":4000,\"slice_nodes\":64}}"
    );
    let resp = srv.call("POST", "/jobs", Some(body.as_bytes()));
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = Json::parse(&resp.text())
        .unwrap()
        .get("id")
        .and_then(Json::as_f64)
        .unwrap() as u64;

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = srv.call("GET", &format!("/jobs/{id}"), None);
        assert_eq!(resp.status, 200);
        let status = Json::parse(&resp.text())
            .unwrap()
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if status == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "job stuck at `{status}`");
        std::thread::sleep(Duration::from_millis(50));
    }

    let after = srv.scrape();
    srv.shutdown();
    assert_eq!(sample(&after, "metaopt_server_jobs_admitted_total"), 1.0);
    assert_eq!(sample(&after, "metaopt_server_jobs_completed_total"), 1.0);
    assert_eq!(sample(&after, "metaopt_server_queue_depth"), 0.0);
    assert!(sample(&after, "metaopt_campaign_journal_appends_total") > 0.0);
    assert!(sample(&after, "metaopt_campaign_journal_fsyncs_total") > 0.0);
    assert!(sample(&after, "metaopt_milp_nodes_total") > 0.0);
    assert!(sample(&after, "metaopt_lp_pivots_total") > 0.0);
    assert!(sample(&after, "metaopt_lp_solves_total{mode=\"warm\"}") > 0.0);
    assert!(sample(&after, "metaopt_server_requests_total{route=\"jobs_submit\"}") >= 1.0);
}

/// `GET /admin/trace` serves the flight recorder's NDJSON tail, and the
/// job lifecycle leaves structured events in it.
#[test]
fn admin_trace_serves_ndjson_tail() {
    let srv = Harness::start(config("trace"));
    let resp = srv.call("GET", "/admin/trace", None);
    assert_eq!(resp.status, 200);
    let boot_tail = resp.text();

    let body = concat!(
        "{\"client\":\"obs\",\"label\":\"trace\",",
        "\"topology\":{\"kind\":\"fig1\",\"cap\":100.0},",
        "\"heuristic\":{\"kind\":\"dp\",\"threshold\":50.0},",
        "\"sweep\":{\"lo\":45.0,\"hi\":55.0,\"resolution\":10.0},",
        "\"budget\":{\"probe_cap_nodes\":4000,\"slice_nodes\":64}}"
    );
    let resp = srv.call("POST", "/jobs", Some(body.as_bytes()));
    assert_eq!(resp.status, 202, "{}", resp.text());

    let deadline = Instant::now() + Duration::from_secs(120);
    let tail = loop {
        let resp = srv.call("GET", "/admin/trace", None);
        assert_eq!(resp.status, 200);
        let tail = resp.text();
        if tail.contains("server.job_done") {
            break tail;
        }
        assert!(Instant::now() < deadline, "job_done event never recorded");
        std::thread::sleep(Duration::from_millis(50));
    };
    srv.shutdown();

    assert!(tail.contains("server.job_admitted"));
    // Every tail line is a standalone JSON object (NDJSON contract).
    for line in tail.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("non-JSON trace line {line:?}: {e:?}"));
    }
    // The boot tail may be empty but must still be valid NDJSON.
    for line in boot_tail.lines() {
        Json::parse(line).unwrap();
    }
}
