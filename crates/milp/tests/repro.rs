//! Focused regression for a knapsack instance where B&B once returned a
//! suboptimal incumbent (warm-start / pruning interplay).

use metaopt_milp::{solve, MilpConfig, MilpStatus};
use metaopt_model::{LinExpr, Model, ObjSense, Sense};

#[test]
fn knapsack_regression_three_items() {
    let vw = [
        (7.285389842171149, 5.923197672253469),
        (7.355751409052462, 8.589582874134125),
        (0.5, 4.156345345380891),
    ];
    let cap_frac = 0.739425013809368;
    let total_w: f64 = vw.iter().map(|(_, w)| w).sum();
    let cap = total_w * cap_frac;

    let mut m = Model::new();
    let zs: Vec<_> = (0..3)
        .map(|i| m.add_binary(format!("z{i}")).unwrap())
        .collect();
    let mut wsum = LinExpr::zero();
    let mut vsum = LinExpr::zero();
    for (i, (v, w)) in vw.iter().enumerate() {
        wsum.add_term(zs[i], *w);
        vsum.add_term(zs[i], *v);
    }
    m.constrain(wsum, Sense::Le, cap).unwrap();
    m.set_objective(ObjSense::Max, vsum).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);

    let mut best = 0.0f64;
    for mask in 0..8u32 {
        let (mut wv, mut vv) = (0.0, 0.0);
        for (i, (v, w)) in vw.iter().enumerate() {
            if mask >> i & 1 == 1 {
                wv += w;
                vv += v;
            }
        }
        if wv <= cap + 1e-9 {
            best = best.max(vv);
        }
    }
    assert!(
        (sol.objective - best).abs() <= 1e-6,
        "bnb {} vs brute {} (nodes {}, bound {})",
        sol.objective,
        best,
        sol.nodes,
        sol.best_bound
    );
}

/// The serial engine is bit-deterministic run to run: identical node
/// counts, pivot counts, and warm/cold LP accounting. Guards the
/// `apply_bounds` bookkeeping, which must iterate its bound sets in a
/// deterministic (ordered) sequence — a hash-ordered container there once
/// made pivot counts wobble across processes.
#[test]
fn serial_engine_stats_are_bit_identical_across_runs() {
    let mut m = Model::new();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    for i in 0..18 {
        let z = m.add_binary(format!("z{i}")).unwrap();
        let weight = 3.0 + ((i * 29) % 11) as f64;
        w.add_term(z, weight);
        v.add_term(z, weight + 4.0);
    }
    m.constrain(w, Sense::Le, 40.0).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();

    let cfg = MilpConfig {
        parallel: metaopt_milp::ParallelMode::Serial,
        ..MilpConfig::default()
    };
    let a = solve(&m, &cfg).unwrap();
    let b = solve(&m, &cfg).unwrap();
    assert_eq!(a.status, MilpStatus::Optimal);
    assert_eq!(a.status, b.status);
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(a.best_bound.to_bits(), b.best_bound.to_bits());
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.lp_iterations, b.lp_iterations);
    assert_eq!(a.lp_stats.warm_solves, b.lp_stats.warm_solves);
    assert_eq!(a.lp_stats.cold_solves, b.lp_stats.cold_solves);
}
