//! The headline robustness contract, exercised against the real binary:
//! `kill -9` the server after jobs are acknowledged, restart it on the
//! same directory, and every acknowledged job reaches the *bit-identical*
//! certified result an uninterrupted run produces.

use metaopt_server::client::request;
use metaopt_server::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaopt-crashdrill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts the real `gapserver` binary and resolves the OS-assigned port
/// from the `ADDR` file it writes once listening.
fn spawn_server(dir: &Path) -> (Child, String) {
    let _ = std::fs::remove_file(dir.join("ADDR"));
    let child = Command::new(env!("CARGO_BIN_EXE_gapserver"))
        .args([
            "serve",
            "--dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gapserver");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("ADDR")) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote ADDR");
        std::thread::sleep(Duration::from_millis(20));
    };
    // The listener is bound before ADDR is written; the API is live.
    (child, addr)
}

fn job_body(label: &str, threshold: f64) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"drill\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"fig1\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":{}}},",
            "\"sweep\":{{\"lo\":0.0,\"hi\":100.0,\"resolution\":4.0}},",
            "\"budget\":{{\"probe_cap_nodes\":4000,\"slice_nodes\":16}}}}"
        ),
        label, threshold
    )
    .into_bytes()
}

const THRESHOLDS: [f64; 3] = [30.0, 50.0, 70.0];

fn submit_all(addr: &str) -> Vec<u64> {
    THRESHOLDS
        .iter()
        .map(|t| {
            let resp = request(
                addr,
                "POST",
                "/jobs",
                Some(&job_body(&format!("drill-{t}"), *t)),
                Duration::from_secs(60),
            )
            .unwrap();
            assert_eq!(resp.status, 202, "{}", resp.text());
            Json::parse(&resp.text())
                .unwrap()
                .get("id")
                .and_then(Json::as_u64)
                .unwrap()
        })
        .collect()
}

/// Polls until every job is terminal; returns `label → outcome_wire`
/// (the exact f64-bit-pattern encoding of the certified result).
fn collect_results(addr: &str, ids: &[u64]) -> BTreeMap<String, String> {
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut results = BTreeMap::new();
    for id in ids {
        loop {
            let resp = request(addr, "GET", &format!("/jobs/{id}"), None, Duration::from_secs(60))
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
            let job = Json::parse(&resp.text()).unwrap();
            match job.get("status").and_then(Json::as_str).unwrap() {
                "done" => {
                    let label = job.get("label").and_then(Json::as_str).unwrap().to_string();
                    let wire = job
                        .get("result")
                        .and_then(|r| r.get("outcome_wire"))
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    results.insert(label, wire);
                    break;
                }
                "quarantined" | "cancelled" => {
                    panic!("job {id} ended {}", resp.text())
                }
                _ => {}
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    results
}

#[test]
fn kill_dash_nine_after_ack_preserves_bit_identical_results() {
    // Baseline: an uninterrupted run.
    let base_dir = tmp_dir("baseline");
    let (mut base, base_addr) = spawn_server(&base_dir);
    let base_ids = submit_all(&base_addr);
    let baseline = collect_results(&base_addr, &base_ids);
    base.kill().unwrap();
    let _ = base.wait();
    assert_eq!(baseline.len(), THRESHOLDS.len());

    // Crash run: same jobs acknowledged, then SIGKILL mid-execution —
    // after the acks, before completion.
    let crash_dir = tmp_dir("crash");
    let (mut victim, addr1) = spawn_server(&crash_dir);
    let ids = submit_all(&addr1);
    victim.kill().unwrap(); // SIGKILL: no drain, no flush beyond the WAL
    let _ = victim.wait();

    // Restart on the same directory: journal replay must resurrect every
    // acknowledged job and run it to the same certified result.
    let (mut revived, addr2) = spawn_server(&crash_dir);
    let recovered = collect_results(&addr2, &ids);
    assert_eq!(
        recovered, baseline,
        "recovered results must be bit-identical to the uninterrupted run"
    );

    // The journal also shows the interrupted boot had no clean shutdown.
    let resp = request(&addr2, "GET", "/healthz", None, Duration::from_secs(60)).unwrap();
    assert_eq!(resp.status, 200);

    // A second kill *after* completion must preserve terminal states.
    revived.kill().unwrap();
    let _ = revived.wait();
    let (mut third, addr3) = spawn_server(&crash_dir);
    let again = collect_results(&addr3, &ids);
    assert_eq!(again, baseline, "terminal results must survive further crashes");
    third.kill().unwrap();
    let _ = third.wait();
}
