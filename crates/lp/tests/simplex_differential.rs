//! Differential test harness for the simplex engines: on random bounded,
//! feasible-by-construction LPs, the cold two-phase primal, the warm dual
//! re-solve, and a fresh solver warm-started through the [`Basis`]
//! snapshot API (`resolve_from`) must all tell the same story — equal
//! status, objectives agreeing to 1e-9, and primally feasible points.
//!
//! This is the equivalence oracle the parallel branch-and-bound engines
//! lean on: a child node's LP re-solved from its parent's basis snapshot
//! on *any* worker must be interchangeable with a cold solve of the same
//! node. Shrink-friendly proptest generators cover the random space; a
//! fixed seed matrix (overridable per CI shard via `CHAOS_SEED`, same
//! convention as the chaos suite) pins a deterministic regression set.

//! The harness runs twice over every LP: once along the three warm/cold
//! solve paths under whatever backend `METAOPT_FACTOR` selects, and once
//! as a **dense-vs-sparse differential** — the same LP solved under
//! [`FactorBackend::Dense`] and [`FactorBackend::SparseLU`] must agree on
//! status and objective to 1e-9 on every path, and whenever the two
//! backends land on the *same* optimal basis, their primal values, duals,
//! reduced costs, and basis snapshots must agree elementwise to 1e-9
//! (degenerate LPs can have several optimal bases, so the elementwise
//! comparison is gated on basis agreement; the objective comparison is
//! not).

use metaopt_lp::{
    Basis, FactorBackend, LpProblem, RowSense, Simplex, SimplexConfig, SolveStatus, VarId,
};
use proptest::prelude::*;

const OBJ_TOL: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-6;

fn solver_with(backend: FactorBackend, p: &LpProblem) -> Simplex {
    Simplex::with_config(
        p,
        SimplexConfig {
            backend,
            ..SimplexConfig::default()
        },
    )
}

/// A randomly generated LP that is bounded (every variable boxed) and
/// feasible (every row anchored around the activity of an interior point).
#[derive(Debug, Clone)]
struct RandomLp {
    problem: LpProblem,
    n: usize,
}

fn build_lp(
    vars: &[(f64, f64, f64)],
    rows: &[(Vec<Option<f64>>, usize, f64)],
    anchor: &[f64],
) -> RandomLp {
    let mut p = LpProblem::new();
    let mut ids = Vec::new();
    let mut point = Vec::new();
    for (i, (lo_off, width, obj)) in vars.iter().enumerate() {
        let lo = *lo_off;
        let hi = lo + width;
        ids.push(p.add_var(lo, hi, *obj).unwrap());
        point.push(lo + anchor[i] * width);
    }
    for (coeffs, sense_sel, margin) in rows {
        let entries: Vec<(usize, f64)> = coeffs
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|v| (j, v)))
            .collect();
        if entries.is_empty() {
            continue;
        }
        let act: f64 = entries.iter().map(|(j, c)| c * point[*j]).sum();
        let it = entries.iter().map(|(j, c)| (ids[*j], *c));
        match sense_sel {
            0 => p.add_row(RowSense::Le, act + margin, it).unwrap(),
            1 => p.add_row(RowSense::Ge, act - margin, it).unwrap(),
            _ => p.add_row(RowSense::Eq, act, it).unwrap(),
        };
    }
    RandomLp {
        problem: p,
        n: vars.len(),
    }
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..8, 1usize..10).prop_flat_map(|(n, m)| {
        let var_data = proptest::collection::vec((-5.0f64..5.0, 0.1f64..8.0, -4.0f64..4.0), n);
        let row_data = proptest::collection::vec(
            (
                proptest::collection::vec(proptest::option::weighted(0.6, -3.0f64..3.0), n),
                0usize..3,
                0.5f64..6.0,
            ),
            m,
        );
        let anchor = proptest::collection::vec(0.0f64..1.0, n);
        (var_data, row_data, anchor)
            .prop_map(|(vars, rows, anchor)| build_lp(&vars, &rows, &anchor))
    })
}

/// The feasibility half of the differential oracle: the returned basic
/// solution respects every variable box and every row range.
fn assert_feasible(p: &LpProblem, x: &[f64], context: &str) {
    let viol = p.max_violation(x);
    assert!(
        viol <= FEAS_TOL,
        "{context}: row violation {viol} exceeds {FEAS_TOL}"
    );
    for (j, &xj) in x.iter().enumerate().take(p.n_vars()) {
        let (lo, hi) = p.bounds(VarId(j));
        assert!(
            xj >= lo - FEAS_TOL && xj <= hi + FEAS_TOL,
            "{context}: x[{j}] = {xj} outside [{lo}, {hi}]"
        );
    }
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= OBJ_TOL * (1.0 + b.abs()),
        "{what}: {a} vs {b} (diff {})",
        (a - b).abs()
    );
}

/// Runs the three-way differential on one LP and one bound tightening:
///
/// 1. **primal** — cold two-phase solve of the modified problem,
/// 2. **dual-warm** — the original solver, warm dual re-solve after the
///    in-place bound change,
/// 3. **snapshot-warm** — a *fresh* solver on the modified problem,
///    warm-started from the original optimal basis via `resolve_from`
///    (exactly what a parallel branch-and-bound worker does with a stolen
///    node's parent basis).
///
/// All three must agree on status; when optimal, objectives agree to
/// `OBJ_TOL` and every returned basic solution is feasible.
fn differential(rlp: &RandomLp, which: usize, shrink: f64) {
    let mut warm = Simplex::new(&rlp.problem);
    let first = warm.solve().expect("base solve failed");
    assert_eq!(first.status, SolveStatus::Optimal);
    assert_feasible(&rlp.problem, &first.x, "base solve");
    let snapshot: Option<Basis> = warm.snapshot_basis();

    let j = which % rlp.n;
    let v = VarId(j);
    let (lo, hi) = rlp.problem.bounds(v);
    let mid = lo + (hi - lo) * shrink;
    let (nlo, nhi) = (lo, mid.max(lo));

    // 1. Cold primal on the modified problem.
    let mut p2 = rlp.problem.clone();
    p2.set_bounds(v, nlo, nhi).unwrap();
    let cold = Simplex::new(&p2).solve().expect("cold solve failed");

    // 2. Warm dual re-solve on the original solver.
    warm.set_var_bounds(v, nlo, nhi).unwrap();
    let dual_warm = warm.resolve().expect("warm resolve failed");

    assert_eq!(
        dual_warm.status, cold.status,
        "dual-warm status diverged from cold"
    );
    if cold.status == SolveStatus::Optimal {
        assert_close(dual_warm.objective, cold.objective, "dual-warm vs cold");
        assert_feasible(&p2, &cold.x, "cold solve");
        assert_feasible(&p2, &dual_warm.x, "dual-warm resolve");
    }

    // 3. Fresh solver warm-started from the snapshot basis.
    if let Some(basis) = snapshot {
        let mut fresh = Simplex::new(&p2);
        let from_snapshot = fresh.resolve_from(&basis).expect("resolve_from failed");
        assert_eq!(
            from_snapshot.status, cold.status,
            "snapshot-warm status diverged from cold"
        );
        if cold.status == SolveStatus::Optimal {
            assert_close(
                from_snapshot.objective,
                cold.objective,
                "snapshot-warm vs cold",
            );
            assert_feasible(&p2, &from_snapshot.x, "snapshot-warm resolve");
        }
    }
}

/// Elementwise 1e-9 agreement between two solutions, used only when both
/// backends produced the same optimal basis.
fn assert_solutions_identical(
    a: &metaopt_lp::Solution,
    b: &metaopt_lp::Solution,
    context: &str,
) {
    for (j, (va, vb)) in a.x.iter().zip(&b.x).enumerate() {
        assert!(
            (va - vb).abs() <= OBJ_TOL * (1.0 + vb.abs()),
            "{context}: x[{j}] dense {va} vs sparse {vb}"
        );
    }
    for (i, (va, vb)) in a.duals.iter().zip(&b.duals).enumerate() {
        assert!(
            (va - vb).abs() <= OBJ_TOL * (1.0 + vb.abs()),
            "{context}: dual[{i}] dense {va} vs sparse {vb}"
        );
    }
    for (j, (va, vb)) in a.reduced_costs.iter().zip(&b.reduced_costs).enumerate() {
        assert!(
            (va - vb).abs() <= OBJ_TOL * (1.0 + vb.abs()),
            "{context}: rc[{j}] dense {va} vs sparse {vb}"
        );
    }
}

/// The dense-vs-sparse differential on one LP and one bound tightening:
/// both backends walk the cold, dual-warm, and snapshot-warm paths; every
/// path must agree on status and (when optimal) objective to 1e-9, with
/// feasible points. Basis snapshots cross the backend boundary — a dense
/// snapshot warm-starts a sparse solver. When the two backends' optimal
/// bases coincide, the full solutions must be elementwise identical to
/// 1e-9 (basis status included, by `Basis` equality).
fn backend_differential(rlp: &RandomLp, which: usize, shrink: f64) {
    let mut dense = solver_with(FactorBackend::Dense, &rlp.problem);
    let mut sparse = solver_with(FactorBackend::SparseLU, &rlp.problem);
    let d0 = dense.solve().expect("dense base solve failed");
    let s0 = sparse.solve().expect("sparse base solve failed");
    assert_eq!(d0.status, s0.status, "base status diverged");
    assert_eq!(d0.status, SolveStatus::Optimal);
    assert_close(d0.objective, s0.objective, "base dense vs sparse");
    assert_feasible(&rlp.problem, &d0.x, "dense base");
    assert_feasible(&rlp.problem, &s0.x, "sparse base");
    let dense_snap = dense.snapshot_basis();
    let sparse_snap = sparse.snapshot_basis();
    if dense_snap == sparse_snap {
        assert_solutions_identical(&d0, &s0, "base (same basis)");
    }

    let j = which % rlp.n;
    let v = VarId(j);
    let (lo, hi) = rlp.problem.bounds(v);
    // An unbounded box (the max-flow encodings leave `hi` open) tightens
    // to a finite one; `(hi - lo) * 0.0` would otherwise be NaN.
    let mid = if hi.is_finite() {
        lo + (hi - lo) * shrink
    } else {
        lo + 10.0 * shrink
    };
    let (nlo, nhi) = (lo, mid.max(lo));
    let mut p2 = rlp.problem.clone();
    p2.set_bounds(v, nlo, nhi).unwrap();

    // Cold path.
    let dc = solver_with(FactorBackend::Dense, &p2)
        .solve()
        .expect("dense cold failed");
    let sc = solver_with(FactorBackend::SparseLU, &p2)
        .solve()
        .expect("sparse cold failed");
    assert_eq!(dc.status, sc.status, "cold status diverged");
    if dc.status == SolveStatus::Optimal {
        assert_close(dc.objective, sc.objective, "cold dense vs sparse");
        assert_feasible(&p2, &dc.x, "dense cold");
        assert_feasible(&p2, &sc.x, "sparse cold");
    }

    // Dual-warm path.
    dense.set_var_bounds(v, nlo, nhi).unwrap();
    sparse.set_var_bounds(v, nlo, nhi).unwrap();
    let dw = dense.resolve().expect("dense warm failed");
    let sw = sparse.resolve().expect("sparse warm failed");
    assert_eq!(dw.status, dc.status, "dense warm vs cold status");
    assert_eq!(sw.status, sc.status, "sparse warm vs cold status");
    if dc.status == SolveStatus::Optimal {
        assert_close(dw.objective, dc.objective, "dense warm vs cold");
        assert_close(sw.objective, dc.objective, "sparse warm vs dense cold");
    }

    // Snapshot-warm path, crossing the backend boundary both ways: the
    // `Basis` snapshot is pivot-level state, so a basis taken under one
    // backend must warm-start the other.
    if let (Some(db), Some(sb)) = (dense_snap, sparse_snap) {
        let mut d_from_s = solver_with(FactorBackend::Dense, &p2);
        let mut s_from_d = solver_with(FactorBackend::SparseLU, &p2);
        let dx = d_from_s
            .resolve_from(&sb)
            .expect("dense from sparse snapshot failed");
        let sx = s_from_d
            .resolve_from(&db)
            .expect("sparse from dense snapshot failed");
        assert_eq!(dx.status, dc.status, "cross-snapshot dense status");
        assert_eq!(sx.status, dc.status, "cross-snapshot sparse status");
        if dc.status == SolveStatus::Optimal {
            assert_close(dx.objective, dc.objective, "dense-from-sparse vs cold");
            assert_close(sx.objective, dc.objective, "sparse-from-dense vs cold");
            assert_feasible(&p2, &dx.x, "dense-from-sparse");
            assert_feasible(&p2, &sx.x, "sparse-from-dense");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dense and sparse backends agree on random bounded feasible LPs
    /// along every solve path.
    #[test]
    fn backends_agree_on_random_lps(
        rlp in random_lp_strategy(),
        which in 0usize..8,
        shrink in 0.0f64..1.0,
    ) {
        backend_differential(&rlp, which, shrink);
    }

    /// The three-way differential holds on random bounded feasible LPs
    /// under a random single-variable tightening.
    #[test]
    fn engines_agree_on_random_lps(
        rlp in random_lp_strategy(),
        which in 0usize..8,
        shrink in 0.0f64..1.0,
    ) {
        differential(&rlp, which, shrink);
    }

    /// Re-installing a solver's *own* optimal basis and re-solving is a
    /// no-op: same objective to 1e-9, zero additional pivots needed to
    /// leave dual feasibility (the solve must come back warm).
    #[test]
    fn reinstalling_own_basis_is_stationary(rlp in random_lp_strategy()) {
        let mut s = Simplex::new(&rlp.problem);
        let first = s.solve().expect("base solve failed");
        prop_assert_eq!(first.status, SolveStatus::Optimal);
        if let Some(basis) = s.snapshot_basis() {
            let again = s.resolve_from(&basis).expect("re-install failed");
            prop_assert_eq!(again.status, SolveStatus::Optimal);
            assert_close(again.objective, first.objective, "re-install vs base");
            assert!(
                s.last_solve_warm(),
                "re-solving from own optimal basis fell back to a cold start"
            );
        }
    }

    /// A basis snapshot from a *differently shaped* problem is rejected as
    /// an error (never silently installed).
    #[test]
    fn mismatched_basis_is_rejected(rlp in random_lp_strategy()) {
        let mut s = Simplex::new(&rlp.problem);
        prop_assert_eq!(s.solve().expect("base").status, SolveStatus::Optimal);
        if let Some(basis) = s.snapshot_basis() {
            let mut bigger = rlp.problem.clone();
            bigger.add_var(0.0, 1.0, 0.0).unwrap();
            let mut other = Simplex::new(&bigger);
            prop_assert!(other.install_basis(&basis).is_err());
        }
    }
}

// --- deterministic seed matrix ------------------------------------------

/// Tiny xorshift so the fixed-seed regression set needs no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn seeded_lp(rng: &mut XorShift) -> RandomLp {
    let n = 2 + rng.below(6);
    let m = 1 + rng.below(9);
    let vars: Vec<(f64, f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.in_range(-5.0, 5.0),
                rng.in_range(0.1, 8.0),
                rng.in_range(-4.0, 4.0),
            )
        })
        .collect();
    let rows: Vec<(Vec<Option<f64>>, usize, f64)> = (0..m)
        .map(|_| {
            let coeffs = (0..n)
                .map(|_| (rng.unit() < 0.6).then(|| rng.in_range(-3.0, 3.0)))
                .collect();
            (coeffs, rng.below(3), rng.in_range(0.5, 6.0))
        })
        .collect();
    let anchor: Vec<f64> = (0..n).map(|_| rng.unit()).collect();
    build_lp(&vars, &rows, &anchor)
}

/// The pinned regression set: 64 LPs per seed, each differentially tested
/// under 4 tightenings. The default seed matrix is fixed; CI shards can
/// redirect it with `CHAOS_SEED` (one `u64`), the same convention the
/// chaos suite uses.
#[test]
fn seeded_differential_matrix() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 42],
    };
    for seed in seeds {
        let mut rng = XorShift(seed | 1);
        for case in 0..64 {
            let rlp = seeded_lp(&mut rng);
            for tightening in 0..4 {
                let which = rng.below(rlp.n);
                let shrink = rng.unit();
                let ctx = format!("seed {seed:#x} case {case} tightening {tightening}");
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    differential(&rlp, which, shrink);
                    backend_differential(&rlp, which, shrink);
                }));
                assert!(r.is_ok(), "differential failed at {ctx}");
            }
        }
    }
}

// --- real traffic-engineering encodings ----------------------------------

/// The paper's figure-1 triangle as a max-flow LP (the demand/capacity
/// structure every gap-finding run ultimately solves): dense and sparse
/// must agree along every path, across a sweep of demand tightenings.
#[test]
fn backends_agree_on_fig1_max_flow() {
    // Figure 1 is directed (1→2→3), so only the three forward pairs route.
    let (topo, [n1, n2, n3]) = metaopt_topology::synth::figure1_triangle(10.0);
    let pairs = vec![(n1, n3), (n1, n2), (n2, n3)];
    let inst =
        metaopt_te::instance::TeInstance::with_pairs(topo, pairs, 2).expect("fig-1 instance");
    let mut rng = XorShift(0xABCDEF12345);
    for case in 0..24 {
        let demands: Vec<f64> = (0..inst.n_pairs())
            .map(|_| rng.in_range(0.0, 12.0))
            .collect();
        let (lp, _) = metaopt_te::flow::opt_max_flow_lp(&inst, &demands).expect("fig-1 lp");
        let rlp = RandomLp {
            n: lp.n_vars(),
            problem: lp,
        };
        let which = rng.below(rlp.n);
        let shrink = rng.unit();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            backend_differential(&rlp, which, shrink);
        }));
        assert!(r.is_ok(), "fig-1 backend differential failed at case {case}");
    }
}

/// Same oracle on synthesized connected topologies — bigger, sparser
/// bases where the two backends take genuinely different arithmetic
/// paths to the same optimum.
#[test]
fn backends_agree_on_synth_topologies() {
    let mut rng = XorShift(0x5EED_CAFE);
    for (n_nodes, extra) in [(6usize, 3usize), (8, 5), (10, 6)] {
        let topo = metaopt_topology::synth::random_connected(n_nodes, extra, 8.0, rng.next_u64());
        let inst = metaopt_te::instance::TeInstance::all_pairs(topo, 2).expect("synth instance");
        let demands: Vec<f64> = (0..inst.n_pairs())
            .map(|_| rng.in_range(0.0, 6.0))
            .collect();
        let (lp, _) = metaopt_te::flow::opt_max_flow_lp(&inst, &demands).expect("synth lp");
        let rlp = RandomLp {
            n: lp.n_vars(),
            problem: lp,
        };
        let which = rng.below(rlp.n);
        let shrink = rng.unit();
        backend_differential(&rlp, which, shrink);
    }
}
