//! Crash-recovery drill binary.
//!
//! A tiny, deterministic campaign (Figure-1 demand-pinning cells) exposed
//! as `run` / `resume` / `status` subcommands so the crash-recovery
//! integration test — and the CI job — can start it as a child process,
//! `kill -9` it mid-run, resume from the journal, and compare the result
//! set against an uninterrupted run.
//!
//! Output contract (what the test greps): one `RESULT` line per terminal
//! cell, with floats as exact bit patterns, sorted by cell index.

use metaopt_campaign::{
    resume, run, status, CampaignConfig, CampaignState, CellHeuristic, CellSpec, CellStatus,
    RunEnd, ShutdownFlag, TopologySpec,
};
use metaopt_obs::trace::DEFAULT_RING_CAPACITY;
use metaopt_obs::{SystemClock, Tracer};
use metaopt_resilience::RetryPolicy;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn drill_cells(slice_nodes: usize) -> Vec<CellSpec> {
    // Three DP thresholds on the Figure-1 triangle: cheap enough for CI,
    // deep enough that a sweep takes many ticks at small slice sizes.
    [30.0, 50.0, 70.0]
        .into_iter()
        .map(|threshold| CellSpec {
            label: format!("fig1-dp-{threshold}"),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold },
            lo: 0.0,
            hi: 100.0,
            resolution: 4.0,
            probe_cap_nodes: 4_000,
            slice_nodes,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        })
        .collect()
}

fn print_state(state: &CampaignState) {
    for (i, (cell, st)) in state.cells.iter().zip(&state.status).enumerate() {
        match st {
            CellStatus::Done(o) => {
                let bits = |v: Option<f64>| v.map_or("none".to_string(), |x| format!("{:016x}", x.to_bits()));
                println!(
                    "RESULT {i} {} threshold={} gap={} probes={} nodes={}",
                    cell.label,
                    bits(o.threshold),
                    bits(o.verified_gap),
                    o.probes,
                    o.nodes
                );
            }
            CellStatus::Quarantined { reason, attempts } => {
                println!("QUARANTINED {i} {} {reason} attempts={attempts}", cell.label);
            }
            CellStatus::Pending { attempt, resume } => {
                println!(
                    "PENDING {i} {} attempt={attempt} checkpointed={}",
                    cell.label,
                    resume.is_some()
                );
            }
        }
    }
    let (done, quarantined, pending) = state.counts();
    println!("SUMMARY done={done} quarantined={quarantined} pending={pending}");
}

fn main() -> ExitCode {
    // Structured stderr: every diagnostic goes through the flight
    // recorder (dumped on panic) while keeping stderr byte-identical to
    // the old plain `eprintln!` lines the drill scripts grep.
    let tracer = Tracer::new(Arc::new(SystemClock), DEFAULT_RING_CAPACITY);
    tracer.install_panic_dump();
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: campaign_drill <run|resume|status> <dir> [slice_nodes]";
    let (cmd, dir) = match (args.get(1), args.get(2)) {
        (Some(c), Some(d)) => (c.as_str(), Path::new(d)),
        _ => {
            tracer.log_stderr("drill.usage", usage);
            return ExitCode::from(2);
        }
    };
    let slice_nodes = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9usize);
    let cfg = CampaignConfig {
        workers: 2,
        retry: RetryPolicy::default(),
        ..CampaignConfig::default()
    };
    let shutdown = ShutdownFlag::new();
    let outcome = match cmd {
        "run" => run(dir, "drill", drill_cells(slice_nodes), &cfg, &shutdown),
        "resume" => resume(dir, &cfg, &shutdown),
        "status" => {
            return match status(dir) {
                Ok(st) => {
                    print_state(&st);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    tracer.log_stderr("drill.status_failed", &format!("status failed: {e}"));
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            tracer.log_stderr(
                "drill.bad_command",
                &format!("unknown command `{other}`\n{usage}"),
            );
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(report) => {
            print_state(&report.state);
            match report.end {
                RunEnd::Complete => ExitCode::SUCCESS,
                RunEnd::Drained => ExitCode::from(3),
            }
        }
        Err(e) => {
            tracer.log_stderr("drill.campaign_failed", &format!("campaign failed: {e}"));
            ExitCode::FAILURE
        }
    }
}
