//! Structured tracing with a bounded flight recorder.
//!
//! A [`Tracer`] records **spans** (named regions with a duration, closed
//! by dropping a [`SpanGuard`]) and **events** (point-in-time records)
//! into a bounded in-memory ring — the *flight recorder*. Nothing is
//! written anywhere until someone asks: the gap server's
//! `GET /admin/trace` serves the last N records as NDJSON, and
//! [`Tracer::dump_to_stderr`] empties the ring into stderr on a panic or
//! an unrecoverable `SolverFault`, giving a post-mortem of what the
//! process was doing when it died.
//!
//! Time comes from the injected [`Clock`](crate::clock::Clock) — the
//! AN001-approved source — so tests drive span durations with a
//! `TestClock` and record timestamps deterministically. Timestamps are
//! microseconds since the tracer's construction (its *epoch*), not wall
//! clock, so records are comparable within one process lifetime only.
//!
//! Like the metrics registry, a disabled tracer ([`Tracer::disabled`])
//! costs a branch per call and allocates nothing.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A closed span: `at_micros` is its start, `dur_micros` its length.
    Span,
    /// A point-in-time event.
    Event,
}

/// One entry in the flight recorder.
#[derive(Debug, Clone)]
pub struct Record {
    /// Span or event.
    pub kind: RecordKind,
    /// The static name (`"lp.solve"`, `"server.request"`, …).
    pub name: &'static str,
    /// Microseconds since the tracer's epoch.
    pub at_micros: u64,
    /// Span duration in microseconds (`None` for events).
    pub dur_micros: Option<u64>,
    /// Recorder-unique span id (0 for events).
    pub span_id: u64,
    /// Structured context (job id, cell, engine, thread, …).
    pub fields: Vec<(&'static str, String)>,
}

impl Record {
    /// Renders the record as one NDJSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let kind = match self.kind {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        };
        out.push_str(&format!("\"kind\":\"{kind}\",\"name\":\"{}\"", escape(self.name)));
        out.push_str(&format!(",\"at_us\":{}", self.at_micros));
        if let Some(d) = self.dur_micros {
            out.push_str(&format!(",\"dur_us\":{d}"));
        }
        if self.span_id != 0 {
            out.push_str(&format!(",\"span\":{}", self.span_id));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug)]
struct TracerCore {
    clock: Arc<dyn Clock>,
    epoch: Instant,
    capacity: usize,
    // lock-order: tracer.ring (leaf; held only to push/snapshot records).
    ring: Mutex<VecDeque<Record>>,
    next_span: AtomicU64,
}

/// The default flight-recorder capacity (records, spans + events).
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// A span/event recorder over a bounded ring buffer. Cloning shares the
/// ring.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerCore>>,
}

impl Tracer {
    /// A live tracer with the given clock and ring capacity.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        let epoch = clock.now();
        Tracer {
            inner: Some(Arc::new(TracerCore {
                clock,
                epoch,
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// A tracer that records nothing.
    pub const fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records it when dropped.
    pub fn span(&self, name: &'static str, fields: Vec<(&'static str, String)>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard {
                tracer: Tracer::disabled(),
                name,
                fields: Vec::new(),
                start: None,
                id: 0,
            },
            Some(core) => SpanGuard {
                tracer: self.clone(),
                name,
                fields,
                start: Some(core.clock.now()),
                id: core.next_span.fetch_add(1, Ordering::Relaxed),
            },
        }
    }

    /// Records a point-in-time event.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, String)>) {
        if let Some(core) = &self.inner {
            let at = core.clock.now().saturating_duration_since(core.epoch);
            self.push(Record {
                kind: RecordKind::Event,
                name,
                at_micros: at.as_micros() as u64,
                dur_micros: None,
                span_id: 0,
                fields,
            });
        }
    }

    /// Logs a human-readable line to stderr **and** records it as a
    /// structured event. The stderr output is exactly `text` plus a
    /// newline — byte-identical to a plain `eprintln!` — so scripts that
    /// parse tool stderr keep working when callers migrate to this API.
    pub fn log_stderr(&self, name: &'static str, text: &str) {
        self.event(name, vec![("msg", text.to_string())]);
        eprintln!("{text}");
    }

    fn push(&self, record: Record) {
        if let Some(core) = &self.inner {
            let mut ring = core.ring.lock().expect("tracer ring lock poisoned");
            if ring.len() == core.capacity {
                ring.pop_front();
            }
            ring.push_back(record);
        }
    }

    /// The last `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Record> {
        match &self.inner {
            None => Vec::new(),
            Some(core) => {
                let ring = core.ring.lock().expect("tracer ring lock poisoned");
                let skip = ring.len().saturating_sub(n);
                ring.iter().skip(skip).cloned().collect()
            }
        }
    }

    /// The last `n` records as NDJSON (one JSON object per line).
    pub fn tail_ndjson(&self, n: usize) -> String {
        let mut out = String::new();
        for r in self.tail(n) {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Dumps the whole flight recorder to stderr with a reason header.
    /// Called from panic hooks and `SolverFault` handlers; a disabled
    /// tracer prints nothing at all.
    pub fn dump_to_stderr(&self, reason: &str) {
        if self.inner.is_none() {
            return;
        }
        let records = self.tail(usize::MAX);
        eprintln!("=== obs flight recorder dump ({reason}; {} records) ===", records.len());
        for r in &records {
            eprintln!("{}", r.to_json());
        }
        eprintln!("=== end flight recorder dump ===");
    }

    /// Installs a panic hook that dumps the flight recorder before
    /// delegating to the previously-installed hook. Call once, from a
    /// binary's startup; repeated installs stack harmlessly.
    pub fn install_panic_dump(&self) {
        if self.inner.is_none() {
            return;
        }
        let tracer = self.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            tracer.dump_to_stderr("panic");
            previous(info);
        }));
    }
}

/// Closes its span on drop, recording start offset and duration.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Option<Instant>,
    id: u64,
}

impl SpanGuard {
    /// Attaches another field to the span before it closes.
    pub fn field(&mut self, key: &'static str, value: String) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(core), Some(start)) = (self.tracer.inner.clone(), self.start) else {
            return;
        };
        let at = start.saturating_duration_since(core.epoch);
        let dur = core.clock.now().saturating_duration_since(start);
        self.tracer.push(Record {
            kind: RecordKind::Span,
            name: self.name,
            at_micros: at.as_micros() as u64,
            dur_micros: Some(dur.as_micros() as u64),
            span_id: self.id,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use std::time::Duration;

    fn test_tracer(capacity: usize) -> (Arc<TestClock>, Tracer) {
        let clock = Arc::new(TestClock::new());
        let tracer = Tracer::new(clock.clone(), capacity);
        (clock, tracer)
    }

    #[test]
    fn spans_record_clock_driven_durations() {
        let (clock, tracer) = test_tracer(16);
        clock.advance(Duration::from_micros(10));
        {
            let mut span = tracer.span("lp.solve", vec![("engine", "serial".into())]);
            span.field("nodes", "3".into());
            clock.advance(Duration::from_micros(250));
        }
        let tail = tracer.tail(10);
        assert_eq!(tail.len(), 1);
        let r = &tail[0];
        assert_eq!(r.kind, RecordKind::Span);
        assert_eq!(r.at_micros, 10);
        assert_eq!(r.dur_micros, Some(250));
        assert_eq!(r.fields.len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let (_clock, tracer) = test_tracer(3);
        for i in 0..10u32 {
            tracer.event("tick", vec![("i", i.to_string())]);
        }
        let tail = tracer.tail(100);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].fields[0].1, "7");
        assert_eq!(tail[2].fields[0].1, "9");
    }

    #[test]
    fn ndjson_is_deterministic_under_test_clock() {
        let (clock, tracer) = test_tracer(8);
        clock.advance(Duration::from_micros(5));
        tracer.event("job.admit", vec![("job", "1".into())]);
        assert_eq!(
            tracer.tail_ndjson(8),
            "{\"kind\":\"event\",\"name\":\"job.admit\",\"at_us\":5,\"job\":\"1\"}\n"
        );
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let (_clock, tracer) = test_tracer(8);
        tracer.event("msg", vec![("m", "a\"b\\c\nd".into())]);
        let line = tracer.tail_ndjson(1);
        assert!(line.contains("a\\\"b\\\\c\\nd"), "{line}");
    }

    #[test]
    fn disabled_tracer_records_and_prints_nothing() {
        let tracer = Tracer::disabled();
        {
            let _span = tracer.span("x", vec![]);
            tracer.event("y", vec![]);
        }
        assert!(tracer.tail(10).is_empty());
        assert_eq!(tracer.tail_ndjson(10), "");
        tracer.dump_to_stderr("should print nothing");
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let (_clock, tracer) = test_tracer(8);
        drop(tracer.span("a", vec![]));
        drop(tracer.span("b", vec![]));
        let tail = tracer.tail(2);
        assert!(tail[0].span_id > 0);
        assert_ne!(tail[0].span_id, tail[1].span_id);
    }
}
