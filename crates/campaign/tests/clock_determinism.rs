//! Deterministic timeout and retry-backoff tests: every supervisory time
//! read in the campaign runner goes through the injected [`Clock`], so a
//! [`TestClock`] drives the timeout and backoff-promotion paths exactly —
//! no sleeps, no flaky wall-clock margins.

use metaopt_campaign::{
    drive_cell, run, CampaignConfig, CellDriveEnd, CellHeuristic, CellSpec, CellStatus, Clock,
    ShutdownFlag, TestClock, TopologySpec,
};
use metaopt_resilience::{QuarantineReason, RetryPolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn spec(label: &str, timeout_secs: Option<f64>) -> CellSpec {
    CellSpec {
        label: label.into(),
        topology: TopologySpec::Fig1 { cap: 100.0 },
        paths_per_pair: 2,
        heuristic: CellHeuristic::Dp { threshold: 50.0 },
        lo: 0.0,
        hi: 100.0,
        resolution: 4.0,
        probe_cap_nodes: 4_000,
        slice_nodes: 8,
        timeout_secs,
        fault_seed: None,
        quantized: None,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "metaopt-clock-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The cell timeout fires exactly when the *injected* clock passes the
/// deadline: a checkpoint that advances a TestClock beyond it turns the
/// very next boundary check into a deterministic `timeout` failure.
#[test]
fn cell_timeout_fires_on_injected_clock_advance() {
    let clock = TestClock::new();
    let spec = spec("timeout-cell", Some(600.0));
    let deadline = Some(clock.now() + Duration::from_secs(600));
    let end = drive_cell(
        &spec,
        1,
        None,
        None,
        deadline,
        &clock,
        &metaopt_campaign::SolverObs::default(),
        &mut |_st| {
            // One tick elapsed; fast-forward time past the deadline.
            clock.advance(Duration::from_secs(1200));
            Ok(())
        },
        &mut || false,
    )
    .expect("checkpoint callback never fails");
    match end {
        CellDriveEnd::Failed { kind, .. } => assert_eq!(kind, "timeout"),
        other => panic!("expected a timeout failure, got {other:?}"),
    }
}

/// Under a frozen TestClock the same cell never times out: the sweep runs
/// to its certified end even though (real) wall time passes.
#[test]
fn frozen_clock_never_times_out() {
    let clock = TestClock::new();
    let spec = spec("frozen-cell", Some(600.0));
    let deadline = Some(clock.now() + Duration::from_secs(600));
    let end = drive_cell(
        &spec,
        1,
        None,
        None,
        deadline,
        &clock,
        &metaopt_campaign::SolverObs::default(),
        &mut |_st| Ok(()),
        &mut || false,
    )
    .expect("checkpoint callback never fails");
    assert!(
        matches!(end, CellDriveEnd::Finished(_)),
        "frozen clock must not trip the timeout: {end:?}"
    );
}

/// Retry backoff is gated on the injected clock: a delayed retry stays
/// parked while the clock is frozen — however much real time passes — and
/// promotes as soon as the test advances past the backoff delay.
#[test]
fn retry_backoff_promotes_only_when_clock_advances() {
    let clock = Arc::new(TestClock::new());
    let dir = tmp_dir("backoff");
    // timeout_secs = 0: the deadline equals the start instant, so every
    // attempt fails with `timeout` at its first tick boundary — a
    // guaranteed retryable failure with no fault injection.
    let cells = vec![spec("always-times-out", Some(0.0))];
    let cfg = CampaignConfig {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_secs(500),
            max_delay: Duration::from_secs(500),
            multiplier: 1.0,
            jitter: 0.0, // exact 500s spacing
        },
        clock: Arc::clone(&clock) as Arc<dyn metaopt_campaign::Clock>,
        ..CampaignConfig::default()
    };
    let shutdown = ShutdownFlag::new();
    let runner = {
        let dir = dir.clone();
        let cfg = cfg.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || run(&dir, "backoff", cells, &cfg, &shutdown))
    };

    // Attempt 1 fails immediately; the retry is due at frozen_now + 500s.
    // With the clock frozen it must never promote, no matter how much
    // real time elapses.
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        !runner.is_finished(),
        "retry promoted under a frozen clock"
    );

    // Advance past the backoff: the retry promotes, attempt 2 fails the
    // same way, and max_attempts = 2 quarantines the cell.
    clock.advance(Duration::from_secs(501));
    let report = runner
        .join()
        .expect("runner thread must not panic")
        .expect("campaign must complete");
    match &report.state.status[0] {
        CellStatus::Quarantined { reason, attempts } => {
            assert_eq!(*reason, QuarantineReason::RepeatedTimeout);
            assert_eq!(*attempts, 2);
        }
        other => panic!("expected quarantine after exhausted retries, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
