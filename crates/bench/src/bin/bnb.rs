//! Branch-and-bound engine benchmark: serial vs deterministic-parallel vs
//! work-stealing on the fig-1 scaling grid, plus warm-vs-cold LP
//! iteration accounting from the basis-snapshot warm starts.
//!
//! Emits `target/figures/BENCH_bnb.json` (hand-rolled JSON, like every
//! other emitter in this crate) with one record per (model, engine,
//! threads, factor) cell: wall-clock seconds, node throughput, certified
//! objective, the warm/cold solve split, and the factor-core counters
//! (pivots, rank-one basis updates, refactorizations). Every cell runs
//! under both `FactorBackend::Dense` and `FactorBackend::SparseLU`;
//! speedups are computed against the serial cell of the SAME backend.
//! The file also records the hardware thread count of the machine that
//! produced it — speedup claims are only meaningful relative to that.

use metaopt_bench::quick_mode;
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_milp::{solve, FactorBackend, MilpConfig, MilpMetrics, MilpSolution, ParallelMode};
use metaopt_model::Model;
use metaopt_obs::{Counter, Registry};
use metaopt_te::pop::Partition;
use metaopt_te::TeInstance;
use metaopt_topology::synth::{figure1_triangle, line};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

fn model_for(name: &str) -> Model {
    let (inst, spec) = match name {
        "fig1-dp" => (
            fig1(),
            HeuristicSpec::DemandPinning { threshold: 50.0 },
        ),
        "fig1-pop" => (
            fig1(),
            HeuristicSpec::Pop {
                partitions: vec![
                    Partition {
                        assignment: vec![0, 1, 0],
                        n_parts: 2,
                    },
                    Partition {
                        assignment: vec![1, 0, 1],
                        n_parts: 2,
                    },
                ],
                mode: PopMode::Average,
            },
        ),
        "line4-dp" => (
            TeInstance::all_pairs(line(4, 10.0), 2).unwrap(),
            HeuristicSpec::DemandPinning { threshold: 5.0 },
        ),
        other => panic!("unknown model {other}"),
    };
    build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &FinderConfig::default())
        .unwrap()
        .model
}

struct Cell {
    model: String,
    engine: &'static str,
    threads: usize,
    factor: FactorBackend,
    secs: f64,
    sol: MilpSolution,
    /// Factor-core counters for the LAST repetition (per-rep registry):
    /// simplex pivots, rank-one basis updates, and refactorizations.
    pivots: u64,
    basis_updates: u64,
    refactors: u64,
}

fn run_cell(
    model_name: &str,
    model: &Model,
    engine: &'static str,
    threads: usize,
    factor: FactorBackend,
    reps: usize,
) -> Cell {
    let parallel = match engine {
        "serial" => ParallelMode::Serial,
        "deterministic" => ParallelMode::Deterministic,
        "work-stealing" => ParallelMode::WorkStealing,
        _ => unreachable!(),
    };
    // Best-of-N wall clock to damp scheduler noise; the certified result
    // is identical across repetitions for the deterministic engines. Each
    // repetition gets a fresh registry so the factor counters reported
    // for the cell describe exactly one solve.
    let mut best_secs = f64::INFINITY;
    let mut last = None;
    let mut counts = (0u64, 0u64, 0u64);
    for _ in 0..reps {
        let registry = Registry::new();
        let cfg = MilpConfig {
            threads,
            parallel,
            factor,
            metrics: MilpMetrics::register(&registry),
            ..MilpConfig::default()
        };
        let t0 = Instant::now();
        let sol = solve(model, &cfg).expect("solve failed");
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        counts = (
            cfg.metrics.lp.pivots.get(),
            cfg.metrics.lp.updates.get(),
            cfg.metrics.lp.refactors.get(),
        );
        last = Some(sol);
    }
    Cell {
        model: model_name.to_string(),
        engine,
        threads,
        factor,
        secs: best_secs,
        sol: last.unwrap(),
        pivots: counts.0,
        basis_updates: counts.1,
        refactors: counts.2,
    }
}

/// Disabled-recorder overhead on the bench workload (DESIGN.md §15.4).
///
/// With observability off, every instrumentation site still executes a
/// no-op handle call (`Option<Arc>` = `None` check). Two measurements
/// bound its cost on the fig1-dp serial cell:
///
/// * `disabled_overhead_pct` — per-call cost of a disabled counter
///   (amortized over 2^27 calls) times the number of instrumented
///   operations one bench solve performs, as a fraction of that solve's
///   wall clock. This is the honest bound: the A/B below cannot isolate
///   sub-noise effects.
/// * `enabled_delta_pct` — direct A/B of registered (live atomics)
///   versus disabled handles on the same solve; noisy at small scales
///   and reported as measured (may be negative).
struct ObsOverhead {
    ns_per_disabled_call: f64,
    instrumented_ops_per_solve: u64,
    solve_secs: f64,
    disabled_overhead_pct: f64,
    enabled_delta_pct: f64,
}

fn measure_obs_overhead(reps: usize) -> ObsOverhead {
    let model = model_for("fig1-dp");
    let reps = reps.max(3);
    let disabled_cfg = MilpConfig {
        threads: 1,
        parallel: ParallelMode::Serial,
        ..MilpConfig::default()
    };
    let registry = Registry::new();
    let enabled_cfg = MilpConfig {
        threads: 1,
        parallel: ParallelMode::Serial,
        metrics: MilpMetrics::register(&registry),
        ..MilpConfig::default()
    };
    let mut disabled_secs = f64::INFINITY;
    let mut enabled_secs = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(solve(&model, &disabled_cfg).expect("solve failed"));
        disabled_secs = disabled_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(solve(&model, &enabled_cfg).expect("solve failed"));
        enabled_secs = enabled_secs.min(t0.elapsed().as_secs_f64());
    }

    // Per-call cost of a disabled handle.
    let noop = Counter::disabled();
    const CALLS: u64 = 1 << 27;
    let t0 = Instant::now();
    for _ in 0..CALLS {
        black_box(&noop).inc();
    }
    let ns_per_disabled_call = t0.elapsed().as_secs_f64() * 1e9 / CALLS as f64;

    // The enabled runs filled the shared counters: their totals over
    // `reps` solves count exactly the instrumentation sites the solver
    // hit, so totals/reps = instrumented ops per bench solve.
    let m = &enabled_cfg.metrics;
    let total_ops = m.nodes.get()
        + m.waves.get()
        + m.steals.get()
        + m.incumbents.get()
        + m.lp.pivots.get()
        + m.lp.refactors.get()
        + m.lp.warm_solves.get()
        + m.lp.cold_solves.get();
    let instrumented_ops_per_solve = total_ops / reps as u64;

    ObsOverhead {
        ns_per_disabled_call,
        instrumented_ops_per_solve,
        solve_secs: disabled_secs,
        disabled_overhead_pct: instrumented_ops_per_solve as f64 * ns_per_disabled_call
            / (disabled_secs * 1e9)
            * 100.0,
        enabled_delta_pct: (enabled_secs - disabled_secs) / disabled_secs * 100.0,
    }
}

fn json_escape_free(s: &str) -> &str {
    // Every string this emitter writes is a plain identifier.
    s
}

fn main() {
    let reps = if quick_mode() { 1 } else { 3 };
    let hardware_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let models = ["fig1-dp", "fig1-pop", "line4-dp"];
    let backends = [FactorBackend::Dense, FactorBackend::SparseLU];
    let mut cells: Vec<Cell> = Vec::new();
    for name in models {
        let model = model_for(name);
        for factor in backends {
            cells.push(run_cell(name, &model, "serial", 1, factor, reps));
            for threads in [1usize, 2, 4, 8] {
                cells.push(run_cell(name, &model, "deterministic", threads, factor, reps));
            }
            cells.push(run_cell(name, &model, "work-stealing", 8, factor, reps));
        }
    }
    let obs = measure_obs_overhead(reps);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"bnb\",");
    let _ = writeln!(out, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(
        out,
        "  \"obs_overhead\": {{\"ns_per_disabled_call\": {:.4}, \
         \"instrumented_ops_per_solve\": {}, \"solve_secs\": {:.6}, \
         \"disabled_overhead_pct\": {:.4}, \"enabled_delta_pct\": {:.3}}},",
        obs.ns_per_disabled_call,
        obs.instrumented_ops_per_solve,
        obs.solve_secs,
        obs.disabled_overhead_pct,
        obs.enabled_delta_pct,
    );
    let _ = writeln!(
        out,
        "  \"note\": \"speedups are wall-clock vs the serial engine on the same model; \
         only meaningful when hardware_threads exceeds the thread count\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let serial_secs = cells
            .iter()
            .find(|s| s.model == c.model && s.engine == "serial" && s.factor == c.factor)
            .map_or(f64::NAN, |s| s.secs);
        let stats = &c.sol.lp_stats;
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"factor\": \"{}\", \
             \"secs\": {:.6}, \"speedup_vs_serial\": {:.3}, \"nodes\": {}, \
             \"objective\": {:.9}, \"best_bound\": {:.9}, \
             \"warm_solves\": {}, \"cold_solves\": {}, \
             \"mean_warm_iters\": {}, \"mean_cold_iters\": {}, \
             \"pivots\": {}, \"basis_updates\": {}, \"refactors\": {}}}",
            json_escape_free(&c.model),
            c.engine,
            c.threads,
            c.factor.name(),
            c.secs,
            serial_secs / c.secs,
            c.sol.nodes,
            c.sol.objective,
            c.sol.best_bound,
            stats.warm_solves,
            stats.cold_solves,
            stats
                .mean_warm_iterations()
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            stats
                .mean_cold_iterations()
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            c.pivots,
            c.basis_updates,
            c.refactors,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::create_dir_all("target/figures").expect("mkdir target/figures");
    let path = "target/figures/BENCH_bnb.json";
    std::fs::write(path, &out).expect("write BENCH_bnb.json");

    // Human-readable summary.
    println!("branch-and-bound engine benchmark ({hardware_threads} hardware threads)\n");
    println!(
        "  {:<10} {:<15} {:>7} {:<7} {:>9} {:>8} {:>7} {:>8} {:>9}",
        "model", "engine", "threads", "factor", "secs", "speedup", "nodes", "updates", "refactors"
    );
    for c in &cells {
        let serial_secs = cells
            .iter()
            .find(|s| s.model == c.model && s.engine == "serial" && s.factor == c.factor)
            .map_or(f64::NAN, |s| s.secs);
        println!(
            "  {:<10} {:<15} {:>7} {:<7} {:>9.4} {:>8.2} {:>7} {:>8} {:>9}",
            c.model,
            c.engine,
            c.threads,
            c.factor.name(),
            c.secs,
            serial_secs / c.secs,
            c.sol.nodes,
            c.basis_updates,
            c.refactors,
        );
    }
    println!(
        "\nobs overhead (fig1-dp serial): disabled handles {:.3} ns/call x {} ops \
         = {:.4}% of the {:.4}s solve; enabled-vs-disabled A/B delta {:+.2}%",
        obs.ns_per_disabled_call,
        obs.instrumented_ops_per_solve,
        obs.disabled_overhead_pct,
        obs.solve_secs,
        obs.enabled_delta_pct,
    );
    println!("\nwrote {path}");
}
