#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-resilience
//!
//! The resilience substrate of the metaopt workspace: a structured fault
//! taxonomy, first-class solve budgets, graceful-degradation levels, and a
//! deterministic fault-injection plan.
//!
//! The paper's method (§3.3 stop rules, anytime incumbent semantics) only
//! works in production if the solver stack *always* returns a certified
//! result instead of crashing or hanging. The reference implementation
//! leans on Gurobi's battle-tested recovery from degenerate and
//! ill-conditioned bases; the from-scratch simplex / branch-and-bound in
//! this workspace gets the equivalent from this crate:
//!
//! * [`SolverFault`] — the error taxonomy every layer maps its failures
//!   into (replacing ad-hoc panics),
//! * [`Budget`] — a wall-clock/node budget threaded from the finder
//!   configuration through branch-and-bound down to the simplex deadline,
//! * [`DegradationLevel`] — how far the finder had to fall down its
//!   white-box → certified-incumbent → black-box ladder,
//! * [`FaultPlan`] / [`FaultSite`] — deterministic, seedable fault
//!   injection used by the chaos test suite to exercise every recovery
//!   path (NaN pivots, singular refactorizations, expired deadlines,
//!   panicking callbacks, forced stalls).
//!
//! This crate is a dependency leaf: `lp`, `milp`, `core`, and `blackbox`
//! all depend on it, never the reverse.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------

/// Structured classification of every failure the solver stack can
/// experience. Layers map their internal errors into this taxonomy so
/// callers can react uniformly (retry, degrade, or surface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverFault {
    /// Floating-point breakdown: NaN/∞ appeared in a pivot, ratio test, or
    /// residual where a finite value is required.
    NumericalBreakdown(String),
    /// The basis matrix was (numerically) singular during factorization.
    BasisSingular(String),
    /// A wall-clock deadline or budget expired before a conclusion.
    DeadlineExceeded,
    /// A domain callback panicked; the panic was contained and the
    /// callback's contribution for that node dropped.
    CallbackPanic(String),
    /// The §3.3 stall rule fired: no sufficient relative improvement
    /// within the configured window.
    StallDetected,
    /// The static model checker found error-severity diagnostics in the
    /// encoding before the solve (release builds record this and continue;
    /// debug builds abort instead). The payload is the checker's summary.
    EncodingSuspect(String),
    /// A sandboxed worker process was killed by its supervisor for
    /// breaching a containment limit (RSS, wall clock, or heartbeat
    /// liveness). The kill itself is the containment working: the server
    /// survives, the attempt is journaled as failed, and the retry policy
    /// decides what happens next.
    WorkerKilled(WorkerKillReason),
    /// Journal I/O failed beneath the durability layer (EIO, ENOSPC, a
    /// short write, or a failed `sync_data`). The journal handle is
    /// poisoned by this fault and must be reopened and tail-verified
    /// before any further append — see the fsync-poisoning rule in
    /// DESIGN.md §16.
    JournalIo(String),
}

/// Why a sandbox supervisor killed its worker child. Each reason carries a
/// stable kind string (`killed_oom` / `killed_deadline` /
/// `killed_heartbeat`) that doubles as the journal failure-taxonomy kind
/// for the failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKillReason {
    /// Resident-set-size limit breached (the from-scratch OOM killer).
    Oom,
    /// Wall-clock limit breached with the child still running.
    Deadline,
    /// No frame (checkpoint, result, or heartbeat) within the liveness
    /// window — the child is wedged or dead without having exited.
    Heartbeat,
}

impl WorkerKillReason {
    /// Stable identifier, shared between [`SolverFault::kind`] and the
    /// job journal's failure taxonomy.
    pub fn kind(self) -> &'static str {
        match self {
            WorkerKillReason::Oom => "killed_oom",
            WorkerKillReason::Deadline => "killed_deadline",
            WorkerKillReason::Heartbeat => "killed_heartbeat",
        }
    }

    /// Inverse of [`WorkerKillReason::kind`].
    pub fn from_kind(kind: &str) -> Option<WorkerKillReason> {
        Some(match kind {
            "killed_oom" => WorkerKillReason::Oom,
            "killed_deadline" => WorkerKillReason::Deadline,
            "killed_heartbeat" => WorkerKillReason::Heartbeat,
            _ => return None,
        })
    }
}

impl SolverFault {
    /// Short stable identifier (used by logs and the chaos suite).
    pub fn kind(&self) -> &'static str {
        match self {
            SolverFault::NumericalBreakdown(_) => "numerical_breakdown",
            SolverFault::BasisSingular(_) => "basis_singular",
            SolverFault::DeadlineExceeded => "deadline_exceeded",
            SolverFault::CallbackPanic(_) => "callback_panic",
            SolverFault::StallDetected => "stall_detected",
            SolverFault::EncodingSuspect(_) => "encoding_suspect",
            SolverFault::WorkerKilled(why) => why.kind(),
            SolverFault::JournalIo(_) => "journal_io",
        }
    }

    /// Whether a bounded retry (refactorize / rescale / perturb) can
    /// plausibly clear the fault. Deadline and stall faults are *verdicts*,
    /// not transient conditions — retrying cannot help.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SolverFault::NumericalBreakdown(_)
                | SolverFault::BasisSingular(_)
                | SolverFault::CallbackPanic(_)
                | SolverFault::WorkerKilled(_)
        )
    }

    /// Reconstructs a fault from its [`SolverFault::kind`] identifier and
    /// detail payload — the inverse used by journal replay. Returns `None`
    /// for unknown kinds (a journal written by a future version).
    pub fn from_kind(kind: &str, detail: &str) -> Option<SolverFault> {
        Some(match kind {
            "numerical_breakdown" => SolverFault::NumericalBreakdown(detail.to_string()),
            "basis_singular" => SolverFault::BasisSingular(detail.to_string()),
            "deadline_exceeded" => SolverFault::DeadlineExceeded,
            "callback_panic" => SolverFault::CallbackPanic(detail.to_string()),
            "stall_detected" => SolverFault::StallDetected,
            "encoding_suspect" => SolverFault::EncodingSuspect(detail.to_string()),
            "journal_io" => SolverFault::JournalIo(detail.to_string()),
            kind => {
                return WorkerKillReason::from_kind(kind).map(SolverFault::WorkerKilled)
            }
        })
    }

    /// The detail payload carried by this fault (empty for payload-free
    /// kinds). `from_kind(kind(), detail())` round-trips every variant.
    pub fn detail(&self) -> &str {
        match self {
            SolverFault::NumericalBreakdown(s)
            | SolverFault::BasisSingular(s)
            | SolverFault::CallbackPanic(s)
            | SolverFault::EncodingSuspect(s)
            | SolverFault::JournalIo(s) => s,
            SolverFault::DeadlineExceeded
            | SolverFault::StallDetected
            | SolverFault::WorkerKilled(_) => "",
        }
    }
}

impl std::fmt::Display for SolverFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverFault::NumericalBreakdown(s) => write!(f, "numerical breakdown: {s}"),
            SolverFault::BasisSingular(s) => write!(f, "singular basis: {s}"),
            SolverFault::DeadlineExceeded => write!(f, "deadline exceeded"),
            SolverFault::CallbackPanic(s) => write!(f, "callback panicked: {s}"),
            SolverFault::StallDetected => write!(f, "stalled (no sufficient improvement)"),
            SolverFault::EncodingSuspect(s) => write!(f, "suspect encoding: {s}"),
            SolverFault::WorkerKilled(why) => {
                write!(f, "worker killed by supervisor ({})", why.kind())
            }
            SolverFault::JournalIo(s) => write!(f, "journal I/O fault: {s}"),
        }
    }
}

impl std::error::Error for SolverFault {}

// ---------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------

/// A first-class solve budget: an optional wall-clock deadline plus an
/// optional node allowance. Budgets are *absolute* (they hold a deadline,
/// not a duration), so passing one down a call chain never resets the
/// clock — the property that makes end-to-end anytime guarantees
/// composable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    deadline: Option<Instant>,
    max_nodes: Option<usize>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `d` from now.
    pub fn from_duration(d: Duration) -> Self {
        Budget {
            // an:allow(AN001): `Budget` *is* the workspace's wall-clock
            // primitive — deadlines here are liveness backstops, and the
            // deterministic engines quantize their effect to wave/tick
            // boundaries so replay stays exact.
            deadline: Some(Instant::now() + d),
            max_nodes: None,
        }
    }

    /// A budget expiring `seconds` (fractional) from now.
    pub fn from_secs_f64(seconds: f64) -> Self {
        Self::from_duration(Duration::from_secs_f64(seconds.max(0.0)))
    }

    /// A budget ending at an absolute instant.
    pub fn until(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            max_nodes: None,
        }
    }

    /// Adds (or tightens) a node allowance.
    pub fn with_max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(self.max_nodes.map_or(nodes, |n| n.min(nodes)));
        self
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The node allowance, if any.
    pub fn max_nodes(&self) -> Option<usize> {
        self.max_nodes
    }

    /// Whether the wall-clock deadline has passed.
    pub fn expired(&self) -> bool {
        // an:allow(AN001): see `from_duration` — this is the read side.
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left until the deadline (`None` = unlimited; zero when
    /// already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            // an:allow(AN001): see `from_duration` — this is the read side.
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The tighter of two budgets, limit by limit.
    pub fn min_with(self, other: Budget) -> Budget {
        let deadline = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let max_nodes = match (self.max_nodes, other.max_nodes) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget {
            deadline,
            max_nodes,
        }
    }

    /// Splits off a fraction of the remaining wall-clock time as a new
    /// budget (used by the degradation ladder to reserve time for
    /// fallbacks). An unlimited budget yields `fallback` instead.
    pub fn fraction_of_remaining(&self, frac: f64, fallback: Duration) -> Budget {
        match self.remaining() {
            Some(rem) => Budget::from_duration(rem.mul_f64(frac.clamp(0.0, 1.0))),
            None => Budget::from_duration(fallback),
        }
    }
}

/// A thread-safe node counter shared by the workers of a parallel
/// branch-and-bound search, so a [`Budget`] node allowance is charged
/// against the *global* tree size rather than each worker's slice of it.
/// A `Budget` itself is `Copy` and holds only absolute limits, so handing
/// every worker its own copy is already safe; this meter supplies the one
/// piece of budget accounting that must be shared mutable state. Cloning
/// shares the underlying counter.
#[derive(Debug, Clone, Default)]
pub struct NodeMeter(Arc<AtomicUsize>);

impl NodeMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` nodes against the meter and returns the new global
    /// total (the counter saturates instead of wrapping).
    pub fn charge(&self, n: usize) -> usize {
        let prev = self.0.fetch_add(n, Ordering::Relaxed);
        prev.saturating_add(n)
    }

    /// Nodes charged so far across all clones of this meter.
    pub fn count(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `budget`'s node allowance is exhausted on this meter.
    pub fn exhausted(&self, budget: &Budget) -> bool {
        budget.max_nodes().is_some_and(|cap| self.count() >= cap)
    }
}

// ---------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------

/// How far the adversarial-gap finder had to degrade to return a result.
/// Ordered from best to worst; `GapResult::degradation` reports the level
/// actually achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// The white-box MILP search ran to its configured stop rule; the
    /// result carries both an incumbent and a dual bound.
    None,
    /// The MILP search died mid-run (fault), but a certified incumbent
    /// from the domain callback survives; no useful dual bound.
    CertifiedIncumbentOnly,
    /// The whole white-box path failed; the result comes from the
    /// black-box hill-climbing fallback (certified by re-evaluation, no
    /// bound).
    BlackboxFallback,
    /// Every rung failed; no feasible point is known.
    NoSolution,
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradationLevel::None => "none",
            DegradationLevel::CertifiedIncumbentOnly => "certified-incumbent-only",
            DegradationLevel::BlackboxFallback => "blackbox-fallback",
            DegradationLevel::NoSolution => "no-solution",
        };
        f.write_str(s)
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Instrumented locations in the solver stack where the chaos suite can
/// inject faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Corrupt an entering column with NaN before the ratio test
    /// (simplex pivot loop).
    NanPivot,
    /// Force the next basis refactorization to report a singular matrix.
    SingularRefactor,
    /// Force the next deadline check to report expiry.
    DeadlineNow,
    /// Force the incumbent-callback wrapper to panic.
    CallbackPanic,
    /// Force the §3.3 stall rule to fire.
    StallNow,
    /// Force a panic inside a parallel worker's node evaluation. Exercises
    /// the worker containment path (panic → `Eval::Panicked` → fatal stop);
    /// deliberately *not* in [`FaultSite::ALL`] because it aborts the whole
    /// search by design, while the seeded chaos matrix asserts recoverable
    /// degradation.
    EvalPanic,
}

impl FaultSite {
    /// All instrumented sites (the chaos matrix iterates this).
    pub const ALL: [FaultSite; 5] = [
        FaultSite::NanPivot,
        FaultSite::SingularRefactor,
        FaultSite::DeadlineNow,
        FaultSite::CallbackPanic,
        FaultSite::StallNow,
    ];
}

#[derive(Debug)]
struct SiteState {
    site: FaultSite,
    /// Fire on these 1-based hit numbers.
    at_hits: Vec<usize>,
    hits: AtomicUsize,
    fired: AtomicUsize,
}

/// A deterministic fault-injection schedule.
///
/// A plan is a set of `(site, occurrence)` triggers: the `k`-th time an
/// instrumented site is hit, the fault fires. Clones share their counters
/// (via `Arc`), so a single plan can be handed to the LP layer, the MILP
/// layer, and the test that asserts on [`FaultPlan::fired`] counts.
///
/// Plans are inert by default — production code paths carry `None` and
/// pay one branch per site.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    sites: Vec<Arc<SiteState>>,
}

impl FaultPlan {
    /// An empty plan (never fires).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a trigger: fire at the `occurrence`-th hit (1-based) of
    /// `site`.
    pub fn inject_at(mut self, site: FaultSite, occurrence: usize) -> Self {
        assert!(occurrence >= 1, "occurrences are 1-based");
        if let Some(st) = self.sites.iter().find(|s| s.site == site) {
            // Merge into the existing trigger list. Arc has no mutable
            // access once shared; rebuild the state.
            let mut at = st.at_hits.clone();
            at.push(occurrence);
            at.sort_unstable();
            at.dedup();
            let hits = st.hits.load(Ordering::Relaxed);
            let fired = st.fired.load(Ordering::Relaxed);
            self.sites.retain(|s| s.site != site);
            self.sites.push(Arc::new(SiteState {
                site,
                at_hits: at,
                hits: AtomicUsize::new(hits),
                fired: AtomicUsize::new(fired),
            }));
        } else {
            self.sites.push(Arc::new(SiteState {
                site,
                at_hits: vec![occurrence],
                hits: AtomicUsize::new(0),
                fired: AtomicUsize::new(0),
            }));
        }
        self
    }

    /// Convenience: fire on the first hit of `site`.
    pub fn inject(self, site: FaultSite) -> Self {
        self.inject_at(site, 1)
    }

    /// A pseudorandom plan derived from `seed`: 1–3 triggers across the
    /// instrumented sites, each within the first few occurrences. Used by
    /// the chaos suite's seed matrix.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n_triggers = 1 + (next() % 3) as usize;
        let mut plan = FaultPlan::new();
        for _ in 0..n_triggers {
            let site = FaultSite::ALL[(next() % FaultSite::ALL.len() as u64) as usize];
            let occurrence = 1 + (next() % 4) as usize;
            plan = plan.inject_at(site, occurrence);
        }
        plan
    }

    /// Called by instrumented code: records a hit of `site` and returns
    /// whether a fault fires at this hit.
    pub fn fire(&self, site: FaultSite) -> bool {
        for st in &self.sites {
            if st.site == site {
                let hit = st.hits.fetch_add(1, Ordering::Relaxed) + 1;
                if st.at_hits.contains(&hit) {
                    st.fired.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                return false;
            }
        }
        false
    }

    /// How many times `site` actually fired.
    pub fn fired(&self, site: FaultSite) -> usize {
        self.sites
            .iter()
            .find(|s| s.site == site)
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }

    /// How many times `site` was hit (fired or not) — a coverage probe:
    /// zero hits means the instrumented path never executed.
    pub fn hits(&self, site: FaultSite) -> usize {
        self.sites
            .iter()
            .find(|s| s.site == site)
            .map_or(0, |s| s.hits.load(Ordering::Relaxed))
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> usize {
        self.sites
            .iter()
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// The sites this plan targets.
    pub fn targeted_sites(&self) -> Vec<FaultSite> {
        self.sites.iter().map(|s| s.site).collect()
    }
}

// ---------------------------------------------------------------------
// Retry policy & quarantine taxonomy
// ---------------------------------------------------------------------

/// Bounded-retry policy with exponential backoff and deterministic jitter,
/// used by supervisors (the campaign runner) to decide whether and when a
/// failed unit of work runs again.
///
/// Delays are computed, never slept, by this type — the caller owns the
/// clock. Jitter is derived from a caller-supplied seed (typically the
/// cell id hashed with the attempt number) so a replayed campaign makes
/// identical scheduling decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). `attempt >=
    /// max_attempts` means quarantine, not retry.
    pub max_attempts: usize,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
    /// Multiplier applied per additional failed attempt (2.0 = doubling).
    pub multiplier: f64,
    /// Fraction of the computed delay used as the jitter window (0.0 =
    /// deterministic spacing, 0.5 = up to ±25% around the nominal value).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(30),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

/// What a [`RetryPolicy`] decided about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Run again after waiting this long.
    RetryAfter(Duration),
    /// Attempts exhausted: quarantine the unit of work.
    Quarantine,
}

impl RetryPolicy {
    /// A policy that never retries (every failure quarantines).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Decides the fate of a unit of work whose `attempt`-th try (1-based)
    /// just failed. `seed` feeds the deterministic jitter.
    pub fn on_failure(&self, attempt: usize, seed: u64) -> RetryDecision {
        if attempt >= self.max_attempts {
            return RetryDecision::Quarantine;
        }
        RetryDecision::RetryAfter(self.delay_for(attempt, seed))
    }

    /// The backoff delay after the `attempt`-th failure (1-based):
    /// `base · multiplier^(attempt-1)`, capped at `max_delay`, with a
    /// deterministic jitter of ±`jitter/2` of the nominal value mixed in
    /// from `seed`.
    pub fn delay_for(&self, attempt: usize, seed: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(32) as i32;
        let nominal = self
            .base_delay
            .as_secs_f64()
            .mul_add(self.multiplier.max(1.0).powi(exp), 0.0)
            .min(self.max_delay.as_secs_f64());
        // splitmix64 over (seed, attempt): cheap, stable, dependency-free.
        let mut z = seed
            .wrapping_add(attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let j = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - j / 2.0 + unit * j;
        Duration::from_secs_f64((nominal * scale).min(self.max_delay.as_secs_f64()))
    }
}

// ---------------------------------------------------------------------
// Service faults (job-server admission / queue / drain taxonomy)
// ---------------------------------------------------------------------

/// Failures of the *service* layer wrapped around the solver stack — job
/// admission, queueing, and graceful drain — as opposed to the
/// [`SolverFault`]s of the solves themselves. The gap-finding job server
/// surfaces these in job status responses and maps them onto HTTP
/// semantics via [`ServiceFault::is_client_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceFault {
    /// The job spec failed validation at admission (malformed fields, an
    /// unbuildable model, or error-severity model-check diagnostics). The
    /// job was never enqueued.
    AdmissionRejected(String),
    /// The client's token quota was exhausted; the payload is the advised
    /// retry delay context. The job was never enqueued.
    QuotaExhausted(String),
    /// The bounded admission queue was at capacity and shed the job
    /// instead of growing without bound. The job was never enqueued.
    QueueSaturated(String),
    /// A graceful drain could not checkpoint an in-flight cell within its
    /// allowance; the cell resumes from its previous durable checkpoint.
    DrainTimeout(String),
    /// The job was cancelled by a client after admission.
    Cancelled(String),
}

impl ServiceFault {
    /// Short stable identifier (job-status wire format and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceFault::AdmissionRejected(_) => "admission_rejected",
            ServiceFault::QuotaExhausted(_) => "quota_exhausted",
            ServiceFault::QueueSaturated(_) => "queue_saturated",
            ServiceFault::DrainTimeout(_) => "drain_timeout",
            ServiceFault::Cancelled(_) => "cancelled",
        }
    }

    /// The detail payload.
    pub fn detail(&self) -> &str {
        match self {
            ServiceFault::AdmissionRejected(s)
            | ServiceFault::QuotaExhausted(s)
            | ServiceFault::QueueSaturated(s)
            | ServiceFault::DrainTimeout(s)
            | ServiceFault::Cancelled(s) => s,
        }
    }

    /// Inverse of [`ServiceFault::kind`]. Returns `None` for unknown kinds
    /// (a journal or status blob written by a future version).
    pub fn from_kind(kind: &str, detail: &str) -> Option<ServiceFault> {
        let d = detail.to_string();
        Some(match kind {
            "admission_rejected" => ServiceFault::AdmissionRejected(d),
            "quota_exhausted" => ServiceFault::QuotaExhausted(d),
            "queue_saturated" => ServiceFault::QueueSaturated(d),
            "drain_timeout" => ServiceFault::DrainTimeout(d),
            "cancelled" => ServiceFault::Cancelled(d),
            _ => return None,
        })
    }

    /// Whether the fault is the client's doing (HTTP 4xx) rather than a
    /// server-side condition (5xx). Quota and queue shedding are 429-class
    /// client errors: the request was well-formed but must be retried
    /// later.
    pub fn is_client_error(&self) -> bool {
        matches!(
            self,
            ServiceFault::AdmissionRejected(_)
                | ServiceFault::QuotaExhausted(_)
                | ServiceFault::QueueSaturated(_)
                | ServiceFault::Cancelled(_)
        )
    }
}

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceFault::AdmissionRejected(s) => write!(f, "admission rejected: {s}"),
            ServiceFault::QuotaExhausted(s) => write!(f, "quota exhausted: {s}"),
            ServiceFault::QueueSaturated(s) => write!(f, "queue saturated: {s}"),
            ServiceFault::DrainTimeout(s) => write!(f, "drain timeout: {s}"),
            ServiceFault::Cancelled(s) => write!(f, "cancelled: {s}"),
        }
    }
}

impl std::error::Error for ServiceFault {}

/// Why a unit of work was quarantined instead of retried — the taxonomy
/// campaign journals record alongside the [`SolverFault`] history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The retry policy's attempt allowance ran out on recoverable faults.
    ExhaustedRetries,
    /// The work exceeded its per-attempt wall-clock timeout repeatedly.
    RepeatedTimeout,
    /// The worker thread running it panicked (contained by the pool).
    WorkerPanic,
    /// The failure was classified non-transient (e.g. a model-construction
    /// or configuration error) — retrying cannot help.
    FatalError,
}

impl QuarantineReason {
    /// Short stable identifier (journal wire format).
    pub fn kind(&self) -> &'static str {
        match self {
            QuarantineReason::ExhaustedRetries => "exhausted_retries",
            QuarantineReason::RepeatedTimeout => "repeated_timeout",
            QuarantineReason::WorkerPanic => "worker_panic",
            QuarantineReason::FatalError => "fatal_error",
        }
    }

    /// Inverse of [`QuarantineReason::kind`] (journal replay).
    pub fn from_kind(kind: &str) -> Option<QuarantineReason> {
        Some(match kind {
            "exhausted_retries" => QuarantineReason::ExhaustedRetries,
            "repeated_timeout" => QuarantineReason::RepeatedTimeout,
            "worker_panic" => QuarantineReason::WorkerPanic,
            "fatal_error" => QuarantineReason::FatalError,
            _ => return None,
        })
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_expiry_and_min() {
        let unlimited = Budget::unlimited();
        assert!(!unlimited.expired());
        assert_eq!(unlimited.remaining(), None);

        let tight = Budget::from_secs_f64(0.0);
        assert!(tight.expired());

        let merged = unlimited.min_with(tight).with_max_nodes(5);
        assert!(merged.expired());
        assert_eq!(merged.max_nodes(), Some(5));
        assert_eq!(
            merged.min_with(Budget::unlimited().with_max_nodes(3)).max_nodes(),
            Some(3)
        );
    }

    #[test]
    fn fault_plan_fires_at_requested_occurrence() {
        let plan = FaultPlan::new().inject_at(FaultSite::NanPivot, 3);
        let clone = plan.clone(); // shares counters
        assert!(!clone.fire(FaultSite::NanPivot));
        assert!(!clone.fire(FaultSite::NanPivot));
        assert!(plan.fire(FaultSite::NanPivot));
        assert!(!plan.fire(FaultSite::NanPivot));
        assert_eq!(plan.fired(FaultSite::NanPivot), 1);
        assert_eq!(plan.hits(FaultSite::NanPivot), 4);
        // Untargeted sites never fire but cost nothing.
        assert!(!plan.fire(FaultSite::DeadlineNow));
        assert_eq!(plan.fired(FaultSite::DeadlineNow), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..50 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a.targeted_sites(), b.targeted_sites());
            assert!(!a.targeted_sites().is_empty());
        }
    }

    #[test]
    fn fault_display_and_recoverability() {
        assert!(SolverFault::BasisSingular("x".into()).is_recoverable());
        assert!(!SolverFault::DeadlineExceeded.is_recoverable());
        assert!(!SolverFault::StallDetected.is_recoverable());
        for site in FaultSite::ALL {
            let _ = format!("{site:?}");
        }
        assert_eq!(SolverFault::DeadlineExceeded.kind(), "deadline_exceeded");
        let suspect = SolverFault::EncodingSuspect("2 error(s)".into());
        assert!(!suspect.is_recoverable());
        assert_eq!(suspect.kind(), "encoding_suspect");
        assert!(DegradationLevel::None < DegradationLevel::NoSolution);
    }

    #[test]
    fn fault_kind_round_trips() {
        let faults = [
            SolverFault::NumericalBreakdown("nan in ratio test".into()),
            SolverFault::BasisSingular("pivot 3".into()),
            SolverFault::DeadlineExceeded,
            SolverFault::CallbackPanic("boom".into()),
            SolverFault::StallDetected,
            SolverFault::EncodingSuspect("MC101".into()),
            SolverFault::WorkerKilled(WorkerKillReason::Oom),
            SolverFault::WorkerKilled(WorkerKillReason::Deadline),
            SolverFault::WorkerKilled(WorkerKillReason::Heartbeat),
            SolverFault::JournalIo("sync_data: ENOSPC".into()),
        ];
        for f in faults {
            let back = SolverFault::from_kind(f.kind(), f.detail()).unwrap();
            assert_eq!(back, f);
        }
        assert!(SolverFault::from_kind("martian_fault", "x").is_none());
        assert!(SolverFault::from_kind("killed_boredom", "").is_none());
    }

    #[test]
    fn worker_kill_reasons_round_trip_and_classify() {
        for why in [
            WorkerKillReason::Oom,
            WorkerKillReason::Deadline,
            WorkerKillReason::Heartbeat,
        ] {
            assert_eq!(WorkerKillReason::from_kind(why.kind()), Some(why));
            // A supervisor kill is containment, not a verdict on the work:
            // the retry policy gets a say.
            assert!(SolverFault::WorkerKilled(why).is_recoverable());
        }
        assert!(!SolverFault::JournalIo("EIO".into()).is_recoverable());
    }

    #[test]
    fn retry_policy_backs_off_then_quarantines() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.0,
        };
        let d1 = match p.on_failure(1, 42) {
            RetryDecision::RetryAfter(d) => d,
            RetryDecision::Quarantine => panic!("first failure must retry"),
        };
        let d2 = match p.on_failure(2, 42) {
            RetryDecision::RetryAfter(d) => d,
            RetryDecision::Quarantine => panic!("second failure must retry"),
        };
        assert!(d2 > d1, "backoff must grow: {d1:?} -> {d2:?}");
        assert_eq!(p.on_failure(3, 42), RetryDecision::Quarantine);
        // Deterministic jitter: same (attempt, seed) -> same delay.
        let q = RetryPolicy {
            jitter: 0.5,
            ..p
        };
        assert_eq!(q.delay_for(2, 7), q.delay_for(2, 7));
        assert_ne!(q.delay_for(2, 7), q.delay_for(2, 8));
        // Cap respected even with jitter.
        let far = q.delay_for(30, 9);
        assert!(far <= q.max_delay, "{far:?}");
    }

    #[test]
    fn service_fault_round_trips_and_classifies() {
        let faults = [
            ServiceFault::AdmissionRejected("bad topology `tokamak`".into()),
            ServiceFault::QuotaExhausted("client alice: retry in 2s".into()),
            ServiceFault::QueueSaturated("depth 64/64".into()),
            ServiceFault::DrainTimeout("cell fig1-dp-50".into()),
            ServiceFault::Cancelled("by client".into()),
        ];
        for f in faults {
            let back = ServiceFault::from_kind(f.kind(), f.detail()).unwrap();
            assert_eq!(back, f);
            let _ = format!("{f}");
        }
        assert!(ServiceFault::from_kind("martian", "x").is_none());
        assert!(ServiceFault::QueueSaturated(String::new()).is_client_error());
        assert!(!ServiceFault::DrainTimeout(String::new()).is_client_error());
    }

    #[test]
    fn quarantine_reason_round_trips() {
        for r in [
            QuarantineReason::ExhaustedRetries,
            QuarantineReason::RepeatedTimeout,
            QuarantineReason::WorkerPanic,
            QuarantineReason::FatalError,
        ] {
            assert_eq!(QuarantineReason::from_kind(r.kind()), Some(r));
            assert_eq!(format!("{r}"), r.kind());
        }
        assert!(QuarantineReason::from_kind("nope").is_none());
    }
}
