//@ rel: crates/milp/src/parallel.rs
use std::sync::Mutex;

struct Shared {
    // lock-order: fixture-frontier (leaf)
    frontier: Mutex<Vec<u64>>,
}
