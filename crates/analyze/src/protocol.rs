//! The bounded exhaustive interleaving explorer — the analyzer's second
//! half, aimed at the one part of the workspace a source lint cannot
//! certify: the work-stealing engine's frontier/inflight-slot/stop
//! protocol in `metaopt-milp`.
//!
//! [`explore`] runs a breadth-first search over *every* interleaving of a
//! [`Model`]'s atomic actions (with full-state deduplication), checking a
//! safety invariant at each state and flagging quiescent non-accepting
//! states as deadlocks. Counterexamples come back as human-readable
//! traces, shortest first (BFS).
//!
//! [`WsModel`] is the extracted model of the work-stealing protocol:
//! workers steal nodes from a lock-protected best-bound heap, publish
//! per-worker in-flight bounds for the gap-based optimality proof, park
//! on a condvar when the heap runs dry, and stop on proof, exhaustion, or
//! an external (watchdog) request. The model is parameterized by the two
//! PR 5 fixes so the since-fixed races stay reproducible as regression
//! counterexamples:
//!
//! * [`WsParams::stop_under_lock`] — off reproduces race A (lost
//!   wakeup): storing the stop flag without the frontier lock can land,
//!   together with its notification, entirely inside a waiter's
//!   check-to-wait window; the waiter parks forever. Verdict:
//!   [`Verdict::Deadlock`].
//! * [`WsParams::publish_in_steal`] — off reproduces race B (bound
//!   visibility): publishing a stolen node's bound into the in-flight
//!   slot *after* releasing the frontier lock leaves a window where the
//!   node is in neither the heap nor a slot, so a concurrent gap check
//!   overestimates the dual bound and proves a wrong optimum. Verdict:
//!   [`Verdict::Violation`].
//!
//! With both fixes on, the current protocol passes exhaustively at 2 and
//! 3 workers — including the idle-count exhaustion stop and the subtle
//! benign race between a parking worker's heap-push/slot-clear pair and
//! a concurrent gap check's heap-read/slot-read pair.
//!
//! Condvars are modeled *without* spurious wakeups: a parked worker only
//! moves when notified, so the protocol's liveness is proven to not
//! depend on them.

use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// Sentinel for "+infinity" bounds in the model (`f64::INFINITY` in the
/// real engine).
pub const INF: u8 = u8::MAX;

/// A transition system the explorer can exhaust.
pub trait Model {
    /// Full system state. `Ord` keeps action generation deterministic.
    type State: Clone + Eq + Hash + Ord + Debug;
    /// The initial state.
    fn initial(&self) -> Self::State;
    /// Every enabled atomic action: `(label, successor)`.
    fn actions(&self, s: &Self::State) -> Vec<(String, Self::State)>;
    /// Safety invariant, checked at every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;
    /// Whether a quiescent state (no enabled actions) is a legal end
    /// state; quiescent non-accepting states are deadlocks.
    fn accepting(&self, s: &Self::State) -> bool;
}

/// Outcome of one exhaustive exploration.
#[derive(Debug)]
pub enum Verdict {
    /// Every reachable state satisfied the invariant and every quiescent
    /// state was accepting.
    Pass {
        /// Distinct states visited.
        states: usize,
    },
    /// A reachable state violated the invariant.
    Violation {
        /// Shortest action trace from the initial state.
        trace: Vec<String>,
        /// What the invariant reported.
        why: String,
    },
    /// A reachable quiescent state was not accepting.
    Deadlock {
        /// Shortest action trace from the initial state.
        trace: Vec<String>,
    },
    /// The state cap was hit before exhaustion (model too big).
    Overflow {
        /// States visited before giving up.
        states: usize,
    },
}

impl Verdict {
    /// Whether the exploration passed.
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }
}

/// Exhaustively explores `model` breadth-first up to `cap` distinct
/// states. BFS means reported counterexample traces are shortest.
pub fn explore<M: Model>(model: &M, cap: usize) -> Verdict {
    let init = model.initial();
    // state -> (parent, action label); None for the root.
    let mut parent: HashMap<M::State, Option<(M::State, String)>> = HashMap::new();
    parent.insert(init.clone(), None);
    let mut queue = VecDeque::new();
    queue.push_back(init);
    let trace_to = |parent: &HashMap<M::State, Option<(M::State, String)>>,
                    mut s: M::State|
     -> Vec<String> {
        let mut out = Vec::new();
        while let Some(Some((p, label))) = parent.get(&s) {
            out.push(label.clone());
            s = p.clone();
        }
        out.reverse();
        out
    };
    while let Some(s) = queue.pop_front() {
        if let Err(why) = model.invariant(&s) {
            return Verdict::Violation {
                trace: trace_to(&parent, s),
                why,
            };
        }
        let actions = model.actions(&s);
        if actions.is_empty() && !model.accepting(&s) {
            return Verdict::Deadlock {
                trace: trace_to(&parent, s),
            };
        }
        for (label, next) in actions {
            if !parent.contains_key(&next) {
                if parent.len() >= cap {
                    return Verdict::Overflow {
                        states: parent.len(),
                    };
                }
                parent.insert(next.clone(), Some((s.clone(), label)));
                queue.push_back(next);
            }
        }
    }
    Verdict::Pass {
        states: parent.len(),
    }
}

// ---------------------------------------------------------------------
// The work-stealing protocol model
// ---------------------------------------------------------------------

/// An open node: its relaxation bound, plus the leaf values reachable
/// beneath it. A leaf (`kids` empty) yields the value `bound` when
/// processed; a branch shares `kids[0]` to the frontier and dives into
/// `kids[1]` locally, exactly like the engine's dive/share split.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node {
    /// Relaxation bound (a lower bound on every descendant leaf).
    pub bound: u8,
    /// Leaf values beneath a branch node (empty = this is a leaf).
    pub kids: Vec<u8>,
}

impl Node {
    /// A leaf whose value equals its bound.
    pub fn leaf(v: u8) -> Node {
        Node {
            bound: v,
            kids: Vec::new(),
        }
    }

    /// A branch with bound `b` over two leaves (`b <= min(kids)`, the
    /// bound-dominance every sound B&B maintains).
    pub fn branch(b: u8, kids: [u8; 2]) -> Node {
        assert!(b <= kids[0] && b <= kids[1], "child bounds dominate");
        Node {
            bound: b,
            kids: kids.to_vec(),
        }
    }

    /// The best (smallest) leaf value reachable under this node.
    fn achievable(&self) -> u8 {
        self.kids.iter().copied().min().unwrap_or(self.bound)
    }
}

/// Per-worker program counter. Lock discipline is encoded in the states:
/// `StealLocked`, `WaitPrep`, and `StopLocked` hold the frontier lock.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Wpc {
    /// Loop top: check stop, pop local, or enter steal.
    Ready,
    /// Inside `steal` holding the frontier lock, slot cleared.
    StealLocked,
    /// Heap dry, `idle` bumped, about to wait — still holds the lock.
    /// The next step (releasing + parking) is the lost-wakeup window.
    WaitPrep,
    /// Parked on the condvar; only a notification moves this worker.
    Parked,
    /// Notified; must reacquire the frontier lock to resume stealing.
    Woken,
    /// Stole a node but has NOT yet published its bound into the
    /// in-flight slot (only reachable with `publish_in_steal` off).
    HasNodeHidden(Node),
    /// Owns a node, slot published.
    HasNode(Node),
    /// `check_gap_stop`: about to read the heap top under the lock.
    GapRead,
    /// Heap snapshot in hand (lock released); about to read the slots
    /// and decide. The snapshot/slot-read split is what lets the checker
    /// probe the park-vs-gap-check interleavings.
    GapDecide(u8),
    /// `request_stop` waiting to store the flag under the frontier lock
    /// (the fixed protocol).
    StopLocked,
    /// Stop flag stored; `notify_all` still pending.
    StopStored,
    /// Saw stop with local nodes parked back; one step left (slot clear).
    Exiting,
    /// Worker returned.
    Done,
}

/// Watchdog (external stop requester) program counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Wd {
    Armed,
    Stored,
    Done,
}

/// Full system state of the protocol model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WsState {
    /// Shared best-bound heap, kept sorted (front = best bound).
    heap: Vec<Node>,
    /// Whether the frontier mutex is held (holder encoded in the pcs).
    locked: bool,
    stop: bool,
    /// Stop was an interruption (deadline/watchdog), not a proof.
    early: bool,
    /// Workers parked-or-preparing-to-park (`WsFrontier::idle`).
    idle: u8,
    /// Published incumbent objective (min-space; `INF` = none).
    inc: u8,
    /// The gap rule's proven dual bound, once claimed.
    proven: Option<u8>,
    /// Per-worker in-flight subtree bound (`INF` = none).
    slots: Vec<u8>,
    /// Per-worker local dive stacks.
    locals: Vec<Vec<Node>>,
    workers: Vec<Wpc>,
    watchdog: Option<Wd>,
}

/// Which PR 5 fixes are applied. `fixed()` is the shipped protocol.
#[derive(Debug, Clone, Copy)]
pub struct WsParams {
    /// Store the stop flag while holding the frontier lock (fix for
    /// race A, the lost wakeup).
    pub stop_under_lock: bool,
    /// Publish a stolen node's bound into the in-flight slot before
    /// releasing the frontier lock (fix for race B, bound visibility).
    pub publish_in_steal: bool,
}

impl WsParams {
    /// The shipped protocol: both fixes on.
    pub fn fixed() -> WsParams {
        WsParams {
            stop_under_lock: true,
            publish_in_steal: true,
        }
    }
}

/// A concrete instance: worker count, initial frontier, optional
/// external stop requester.
#[derive(Debug, Clone)]
pub struct WsScenario {
    /// Worker threads.
    pub workers: usize,
    /// Initial shared frontier.
    pub heap: Vec<Node>,
    /// Whether an external watchdog may request a stop at any point.
    pub watchdog: bool,
}

/// The work-stealing protocol as an explorable [`Model`].
#[derive(Debug)]
pub struct WsModel {
    /// Fix configuration.
    pub params: WsParams,
    /// Instance under exploration.
    pub scenario: WsScenario,
}

impl WsModel {
    /// Best leaf value still reachable from unprocessed work (heap,
    /// local stacks, and nodes held by workers), `INF` if none.
    fn remaining_achievable(s: &WsState) -> u8 {
        let mut best = INF;
        for n in &s.heap {
            best = best.min(n.achievable());
        }
        for local in &s.locals {
            for n in local {
                best = best.min(n.achievable());
            }
        }
        for w in &s.workers {
            if let Wpc::HasNode(n) | Wpc::HasNodeHidden(n) = w {
                best = best.min(n.achievable());
            }
        }
        best
    }

    fn push_heap(heap: &mut Vec<Node>, n: Node) {
        let at = heap.partition_point(|h| h.bound <= n.bound);
        heap.insert(at, n);
    }

    /// Pops the best node whose bound survives the incumbent prune,
    /// discarding pruned ones — the steal loop's body, which runs
    /// entirely under the frontier lock.
    fn pop_surviving(heap: &mut Vec<Node>, inc: u8) -> Option<Node> {
        while !heap.is_empty() {
            let n = heap.remove(0);
            if inc == INF || n.bound < inc {
                return Some(n);
            }
        }
        None
    }

    fn wake_all(s: &mut WsState) {
        for w in s.workers.iter_mut() {
            if *w == Wpc::Parked {
                *w = Wpc::Woken;
            }
        }
    }

    /// The store half of `request_stop`: where the next pc goes after
    /// the flag is durable (notify still pending).
    fn after_store(s: &mut WsState, early: bool) {
        s.stop = true;
        if early {
            s.early = true;
        }
    }
}

impl Model for WsModel {
    type State = WsState;

    fn initial(&self) -> WsState {
        let n = self.scenario.workers;
        let mut heap = Vec::new();
        for node in &self.scenario.heap {
            Self::push_heap(&mut heap, node.clone());
        }
        WsState {
            heap,
            locked: false,
            stop: false,
            early: false,
            idle: 0,
            inc: INF,
            proven: None,
            slots: vec![INF; n],
            locals: vec![Vec::new(); n],
            workers: vec![Wpc::Ready; n],
            watchdog: self.scenario.watchdog.then_some(Wd::Armed),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn actions(&self, s: &WsState) -> Vec<(String, WsState)> {
        let mut out = Vec::new();
        let n = self.scenario.workers;
        for i in 0..n {
            let w = format!("w{}", i + 1);
            match &s.workers[i] {
                Wpc::Ready => {
                    if s.stop {
                        if s.locals[i].is_empty() {
                            let mut t = s.clone();
                            t.slots[i] = INF;
                            t.workers[i] = Wpc::Done;
                            out.push((format!("{w}: sees stop, clears slot, exits"), t));
                        } else if !s.locked {
                            // `park`: push local nodes back under the lock,
                            // notify, then clear the slot in a later step.
                            let mut t = s.clone();
                            let local = std::mem::take(&mut t.locals[i]);
                            for node in local {
                                Self::push_heap(&mut t.heap, node);
                            }
                            Self::wake_all(&mut t);
                            t.workers[i] = Wpc::Exiting;
                            out.push((
                                format!("{w}: sees stop, parks local nodes (lock+push+notify)"),
                                t,
                            ));
                        }
                    } else if let Some(node) = s.locals[i].last() {
                        let mut t = s.clone();
                        let node = node.clone();
                        t.locals[i].pop();
                        if t.inc != INF && node.bound >= t.inc {
                            out.push((
                                format!("{w}: prunes local node (bound {} >= inc)", node.bound),
                                t,
                            ));
                        } else {
                            t.slots[i] = node.bound;
                            t.workers[i] = Wpc::HasNode(node.clone());
                            out.push((
                                format!("{w}: pops local node (bound {}), raises slot", node.bound),
                                t,
                            ));
                        }
                    } else if !s.locked {
                        let mut t = s.clone();
                        t.locked = true;
                        t.slots[i] = INF;
                        t.workers[i] = Wpc::StealLocked;
                        out.push((format!("{w}: enters steal (locks frontier, clears slot)"), t));
                    }
                }
                Wpc::StealLocked => {
                    // One atomic critical section: stop check, prune-pop
                    // loop, idle bookkeeping — all under the lock, as in
                    // the real `steal`.
                    let mut t = s.clone();
                    if t.stop {
                        t.locked = false;
                        t.workers[i] = Wpc::Done;
                        out.push((format!("{w}: steal sees stop, unlocks, exits"), t));
                    } else if let Some(node) = Self::pop_surviving(&mut t.heap, t.inc) {
                        if self.params.publish_in_steal {
                            t.slots[i] = node.bound;
                            t.locked = false;
                            t.workers[i] = Wpc::HasNode(node.clone());
                            out.push((
                                format!(
                                    "{w}: steals node (bound {}), publishes slot UNDER the lock",
                                    node.bound
                                ),
                                t,
                            ));
                        } else {
                            t.locked = false;
                            t.workers[i] = Wpc::HasNodeHidden(node.clone());
                            out.push((
                                format!(
                                    "{w}: steals node (bound {}), unlocks BEFORE publishing slot",
                                    node.bound
                                ),
                                t,
                            ));
                        }
                    } else {
                        t.idle += 1;
                        if usize::from(t.idle) == n {
                            // Global exhaustion: this worker requests the
                            // (non-early) stop on everyone's behalf.
                            t.locked = false;
                            if self.params.stop_under_lock {
                                t.workers[i] = Wpc::StopLocked;
                                out.push((
                                    format!("{w}: all idle — exhaustion stop (will relock)"),
                                    t,
                                ));
                            } else {
                                Self::after_store(&mut t, false);
                                t.workers[i] = Wpc::StopStored;
                                out.push((
                                    format!(
                                        "{w}: all idle — stores stop WITHOUT the frontier lock"
                                    ),
                                    t,
                                ));
                            }
                        } else {
                            t.workers[i] = Wpc::WaitPrep;
                            out.push((
                                format!("{w}: heap dry, idle++ — prepares to wait (holds lock)"),
                                t,
                            ));
                        }
                    }
                }
                Wpc::WaitPrep => {
                    let mut t = s.clone();
                    t.locked = false;
                    t.workers[i] = Wpc::Parked;
                    out.push((format!("{w}: releases lock and parks on the condvar"), t));
                }
                Wpc::Parked => {} // only a notification moves this worker
                Wpc::Woken => {
                    if !s.locked {
                        let mut t = s.clone();
                        t.locked = true;
                        t.idle -= 1;
                        t.workers[i] = Wpc::StealLocked;
                        out.push((format!("{w}: wakes, relocks frontier, idle--"), t));
                    }
                }
                Wpc::HasNodeHidden(node) => {
                    let mut t = s.clone();
                    t.slots[i] = node.bound;
                    t.workers[i] = Wpc::HasNode(node.clone());
                    out.push((
                        format!("{w}: publishes in-flight slot (bound {}) — late", node.bound),
                        t,
                    ));
                }
                Wpc::HasNode(node) => {
                    if node.kids.is_empty() {
                        // Leaf: first-improver incumbent publication.
                        let mut t = s.clone();
                        if node.bound < t.inc {
                            t.inc = node.bound;
                        }
                        t.workers[i] = Wpc::GapRead;
                        out.push((
                            format!("{w}: processes leaf (value {}) — publishes incumbent", node.bound),
                            t,
                        ));
                    } else if !s.locked {
                        // Branch: share_node(alt) under the lock +
                        // notify_one, dive child onto the local stack.
                        let shared = Node::leaf(node.kids[0]);
                        let dive = Node::leaf(node.kids[1]);
                        let parked: Vec<usize> = (0..n)
                            .filter(|&j| s.workers[j] == Wpc::Parked)
                            .collect();
                        let mut base = s.clone();
                        Self::push_heap(&mut base.heap, shared);
                        base.locals[i].push(dive);
                        base.workers[i] = Wpc::GapRead;
                        if parked.is_empty() {
                            out.push((
                                format!("{w}: branches — shares alt child, dives (no waiter)"),
                                base,
                            ));
                        } else {
                            for j in parked {
                                let mut t = base.clone();
                                t.workers[j] = Wpc::Woken;
                                out.push((
                                    format!(
                                        "{w}: branches — shares alt child, notify_one wakes w{}",
                                        j + 1
                                    ),
                                    t,
                                ));
                            }
                        }
                    }
                }
                Wpc::GapRead => {
                    if !s.locked {
                        // Heap top read under the lock; released before
                        // the slot reads (the real code's structure).
                        let mut t = s.clone();
                        let hmin = t.heap.first().map_or(INF, |h| h.bound);
                        t.workers[i] = Wpc::GapDecide(hmin);
                        out.push((format!("{w}: gap check reads heap top ({hmin})"), t));
                    }
                }
                Wpc::GapDecide(hmin) => {
                    let mut t = s.clone();
                    let mut bound = (*hmin).min(t.inc);
                    for &slot in &t.slots {
                        bound = bound.min(slot);
                    }
                    if t.inc != INF && bound >= t.inc {
                        if t.proven.is_none() {
                            t.proven = Some(bound);
                        }
                        if self.params.stop_under_lock {
                            t.workers[i] = Wpc::StopLocked;
                            out.push((
                                format!("{w}: gap closed (proven {bound}) — stop via lock"),
                                t,
                            ));
                        } else {
                            Self::after_store(&mut t, false);
                            t.workers[i] = Wpc::StopStored;
                            out.push((
                                format!(
                                    "{w}: gap closed (proven {bound}) — stores stop WITHOUT \
                                     the frontier lock"
                                ),
                                t,
                            ));
                        }
                    } else {
                        t.workers[i] = Wpc::Ready;
                        out.push((format!("{w}: gap open (dual bound {bound}), continues"), t));
                    }
                }
                Wpc::StopLocked => {
                    if !s.locked {
                        // The fixed `request_stop`: store under the lock,
                        // release, then notify (a later step — safe, the
                        // flag is already visible to every locked check).
                        let mut t = s.clone();
                        Self::after_store(&mut t, false);
                        t.workers[i] = Wpc::StopStored;
                        out.push((
                            format!("{w}: locks frontier, stores stop, unlocks"),
                            t,
                        ));
                    }
                }
                Wpc::StopStored => {
                    let mut t = s.clone();
                    Self::wake_all(&mut t);
                    t.workers[i] = Wpc::Ready;
                    out.push((format!("{w}: notify_all"), t));
                }
                Wpc::Exiting => {
                    let mut t = s.clone();
                    t.slots[i] = INF;
                    t.workers[i] = Wpc::Done;
                    out.push((format!("{w}: clears slot, exits"), t));
                }
                Wpc::Done => {}
            }
        }
        match &s.watchdog {
            Some(Wd::Armed) => {
                if self.params.stop_under_lock {
                    if !s.locked {
                        let mut t = s.clone();
                        Self::after_store(&mut t, true);
                        t.watchdog = Some(Wd::Stored);
                        out.push((
                            "watchdog: locks frontier, stores stop, unlocks".into(),
                            t,
                        ));
                    }
                } else {
                    let mut t = s.clone();
                    Self::after_store(&mut t, true);
                    t.watchdog = Some(Wd::Stored);
                    out.push(("watchdog: stores stop WITHOUT the frontier lock".into(), t));
                }
            }
            Some(Wd::Stored) => {
                let mut t = s.clone();
                Self::wake_all(&mut t);
                t.watchdog = Some(Wd::Done);
                out.push(("watchdog: notify_all".into(), t));
            }
            _ => {}
        }
        out
    }

    fn invariant(&self, s: &WsState) -> Result<(), String> {
        // Bound-visibility soundness: once the gap rule claims a proof,
        // no unprocessed node may still be able to beat the incumbent.
        if s.proven.is_some() {
            let best = Self::remaining_achievable(s);
            if best < s.inc {
                return Err(format!(
                    "optimality proven with incumbent {} while an unprocessed node can still \
                     reach {best} — a node was invisible to the gap check (in neither the \
                     heap nor an in-flight slot)",
                    s.inc
                ));
            }
        }
        Ok(())
    }

    fn accepting(&self, s: &WsState) -> bool {
        let all_done = s.workers.iter().all(|w| *w == Wpc::Done);
        let wd_done = !matches!(s.watchdog, Some(Wd::Armed) | Some(Wd::Stored));
        if !(all_done && wd_done) {
            return false;
        }
        // Exhaustion-terminated searches (stop without `early` and
        // without a gap proof) additionally claim the incumbent optimal.
        if !s.early && s.proven.is_none() {
            Self::remaining_achievable(s) >= s.inc
        } else {
            true
        }
    }
}

// ---------------------------------------------------------------------
// The gate: what `xtask analyze` runs
// ---------------------------------------------------------------------

/// Default distinct-state cap for [`gate`] explorations.
pub const GATE_CAP: usize = 500_000;

/// The scenario reproducing race A's shape: one node of work plus an
/// idle worker that must park and be woken.
pub fn stop_race_scenario() -> WsScenario {
    WsScenario {
        workers: 2,
        heap: vec![Node::leaf(3)],
        watchdog: false,
    }
}

/// The scenario reproducing race B's shape: two leaves whose optimum is
/// only visible while one of them sits in an in-flight slot.
pub fn bound_race_scenario() -> WsScenario {
    WsScenario {
        workers: 2,
        heap: vec![Node::leaf(3), Node::leaf(5)],
        watchdog: false,
    }
}

/// The exhaustive suite the current protocol must pass.
pub fn current_scenarios() -> Vec<(String, WsScenario)> {
    vec![
        ("two workers, two leaves".into(), bound_race_scenario()),
        ("two workers, one leaf (park/wake)".into(), stop_race_scenario()),
        (
            "two workers, branch + leaf, watchdog".into(),
            WsScenario {
                workers: 2,
                heap: vec![Node::branch(2, [4, 6]), Node::leaf(3)],
                watchdog: true,
            },
        ),
        (
            "three workers, branch + two leaves".into(),
            WsScenario {
                workers: 3,
                heap: vec![Node::branch(2, [4, 6]), Node::leaf(3), Node::leaf(5)],
                watchdog: false,
            },
        ),
        (
            "three workers, one leaf, watchdog".into(),
            WsScenario {
                workers: 3,
                heap: vec![Node::leaf(3)],
                watchdog: true,
            },
        ),
    ]
}

/// Per-scenario result of a gate run.
#[derive(Debug)]
pub struct GateLine {
    /// Scenario label.
    pub name: String,
    /// Distinct states exhausted.
    pub states: usize,
}

/// Runs the full protocol gate: the current (both-fixes) protocol must
/// pass every scenario exhaustively, AND the two regression models must
/// still produce their counterexamples — if they stop failing, the
/// checker has lost the very races it exists to guard against.
pub fn gate() -> Result<Vec<GateLine>, String> {
    let mut lines = Vec::new();
    for (name, scenario) in current_scenarios() {
        let model = WsModel {
            params: WsParams::fixed(),
            scenario,
        };
        match explore(&model, GATE_CAP) {
            Verdict::Pass { states } => lines.push(GateLine { name, states }),
            Verdict::Violation { trace, why } => {
                return Err(format!(
                    "protocol violation in scenario `{name}`: {why}\n  trace:\n    {}",
                    trace.join("\n    ")
                ));
            }
            Verdict::Deadlock { trace } => {
                return Err(format!(
                    "protocol deadlock in scenario `{name}`:\n  trace:\n    {}",
                    trace.join("\n    ")
                ));
            }
            Verdict::Overflow { states } => {
                return Err(format!(
                    "scenario `{name}` overflowed the {GATE_CAP}-state cap at {states} states"
                ));
            }
        }
    }
    let race_a = WsModel {
        params: WsParams {
            stop_under_lock: false,
            publish_in_steal: true,
        },
        scenario: stop_race_scenario(),
    };
    if !matches!(explore(&race_a, GATE_CAP), Verdict::Deadlock { .. }) {
        return Err(
            "regression model A (stop stored without the lock) no longer deadlocks — the \
             checker lost the lost-wakeup race"
                .into(),
        );
    }
    let race_b = WsModel {
        params: WsParams {
            stop_under_lock: true,
            publish_in_steal: false,
        },
        scenario: bound_race_scenario(),
    };
    if !matches!(explore(&race_b, GATE_CAP), Verdict::Violation { .. }) {
        return Err(
            "regression model B (slot published outside the lock) no longer violates the \
             bound-visibility invariant — the checker lost the wrong-proof race"
                .into(),
        );
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_protocol_passes_exhaustively() {
        for (name, scenario) in current_scenarios() {
            let model = WsModel {
                params: WsParams::fixed(),
                scenario,
            };
            let v = explore(&model, GATE_CAP);
            match v {
                Verdict::Pass { states } => {
                    assert!(states > 50, "{name}: suspiciously few states ({states})");
                }
                other => panic!("{name}: expected exhaustive pass, got {other:?}"),
            }
        }
    }

    #[test]
    fn lost_wakeup_regression_a_deadlocks_with_trace() {
        let model = WsModel {
            params: WsParams {
                stop_under_lock: false,
                publish_in_steal: true,
            },
            scenario: stop_race_scenario(),
        };
        match explore(&model, GATE_CAP) {
            Verdict::Deadlock { trace } => {
                assert!(!trace.is_empty());
                assert!(
                    trace.iter().any(|l| l.contains("WITHOUT the frontier lock")),
                    "counterexample must pass through the unlocked store:\n{trace:#?}"
                );
                assert!(
                    trace.iter().any(|l| l.contains("parks on the condvar")),
                    "counterexample must end with a worker parked:\n{trace:#?}"
                );
            }
            other => panic!("expected the lost-wakeup deadlock, got {other:?}"),
        }
    }

    #[test]
    fn bound_visibility_regression_b_violates_with_trace() {
        let model = WsModel {
            params: WsParams {
                stop_under_lock: true,
                publish_in_steal: false,
            },
            scenario: bound_race_scenario(),
        };
        match explore(&model, GATE_CAP) {
            Verdict::Violation { trace, why } => {
                assert!(why.contains("unprocessed node"), "{why}");
                assert!(
                    trace
                        .iter()
                        .any(|l| l.contains("BEFORE publishing slot")),
                    "counterexample must pass through the unpublished window:\n{trace:#?}"
                );
            }
            other => panic!("expected the bound-visibility violation, got {other:?}"),
        }
    }

    #[test]
    fn fixed_protocol_passes_the_regression_scenarios() {
        for scenario in [stop_race_scenario(), bound_race_scenario()] {
            let model = WsModel {
                params: WsParams::fixed(),
                scenario,
            };
            assert!(explore(&model, GATE_CAP).passed());
        }
    }

    #[test]
    fn gate_passes_and_reports_state_counts() {
        let lines = gate().expect("gate must pass on the shipped protocol");
        assert_eq!(lines.len(), current_scenarios().len());
        assert!(lines.iter().all(|l| l.states > 0));
    }
}
