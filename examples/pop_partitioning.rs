//! POP under the microscope: partition-specific overfitting and the
//! expectation objective (§3.2 / Figure 5a of the paper).
//!
//! POP's output is a random variable (it depends on the random demand
//! partition). An adversarial input tuned against a *single* drawn
//! partition may be harmless on the next draw; optimizing the *average*
//! gap over several instantiations finds inputs that are consistently bad.
//!
//! ```sh
//! cargo run --release --example pop_partitioning
//! ```

use metaopt::core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt::te::{
    opt::opt_max_flow,
    pop::{pop_max_flow, random_partitions},
    TeInstance,
};
use metaopt::topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = builtin::swan(1000.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let budget = 20.0;
    println!(
        "POP(2 partitions) on {} ({} demand pairs):\n",
        inst.topo.name(),
        inst.n_pairs()
    );

    for &n_train in &[1usize, 5] {
        let mut rng = StdRng::seed_from_u64(1000 + n_train as u64);
        let train = random_partitions(inst.n_pairs(), 2, n_train, &mut rng);
        let spec = HeuristicSpec::Pop {
            partitions: train,
            mode: PopMode::Average,
        };
        let r = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();

        // Test the discovered input on 10 fresh random partitions.
        let opt = opt_max_flow(&inst, &r.demands).unwrap().total_flow;
        let mut rng = StdRng::seed_from_u64(4242);
        let fresh: Vec<f64> = random_partitions(inst.n_pairs(), 2, 10, &mut rng)
            .iter()
            .map(|p| opt - pop_max_flow(&inst, &r.demands, p).unwrap().total_flow)
            .collect();
        let mean = fresh.iter().sum::<f64>() / fresh.len() as f64;
        let min = fresh.iter().copied().fold(f64::INFINITY, f64::min);

        println!(
            "trained against {n_train} partition instantiation(s):
  gap on the training partitions : {:.4} (normalized)
  gap on 10 fresh partitions     : mean {:.4}, min {:.4}
",
            r.verified_gap / norm,
            mean / norm,
            min / norm
        );
    }
    println!(
        "Reading: the 1-instantiation input overfits its partition (fresh-partition\n\
         gap drops); the 5-instantiation average transfers (cf. Figure 5a)."
    );
}
