//! §5 "scaling to larger problem sizes": model growth and in-budget gap
//! quality from SWAN (10 nodes) up to GEANT (22 nodes), with and without
//! the quantization speedup.
//!
//! With `METAOPT_CAMPAIGN_DIR=<dir>` the grid runs through the crash-safe
//! campaign runner instead: every cell is journaled under `<dir>`, and
//! re-running the harness after an interruption (Ctrl-C, OOM kill, power
//! loss) resumes from the journal instead of starting over.

use metaopt_bench::{budget_secs, campaign_dir, f, run_or_resume_campaign, CsvOut};
use metaopt_campaign::{CellHeuristic, CellSpec, CellStatus, RunEnd, TopologySpec};
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_te::TeInstance;
use metaopt_topology::builtin;
use std::path::Path;

/// The §5 grid as campaign cells: one sweep per (topology, variant).
fn campaign_grid(budget: f64) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for name in ["swan", "b4", "abilene", "geant"] {
        for (variant, quantized) in [
            ("continuous", None),
            ("quantized", Some(vec![0.0, 50.0, 1000.0])),
        ] {
            cells.push(CellSpec {
                label: format!("{name}-{variant}"),
                topology: TopologySpec::Builtin {
                    name: name.into(),
                    cap: 1000.0,
                },
                paths_per_pair: 2,
                heuristic: CellHeuristic::Dp { threshold: 50.0 },
                lo: 0.0,
                hi: 1000.0,
                resolution: 25.0,
                probe_cap_nodes: 50_000,
                slice_nodes: 512,
                timeout_secs: Some(budget),
                fault_seed: None,
                quantized,
            });
        }
    }
    cells
}

fn run_campaign(dir: &Path, budget: f64) {
    println!("§5 scaling study via campaign runner, journal under {}\n", dir.display());
    let report = run_or_resume_campaign(dir, "scaling", campaign_grid(budget)).unwrap();
    let mut csv = CsvOut::new(
        "scaling",
        &["topology", "pairs", "sos", "variant", "norm_gap", "nodes"],
    );
    for (cell, st) in report.state.cells.iter().zip(&report.state.status) {
        let (topo_name, variant) = cell.label.split_once('-').unwrap_or((cell.label.as_str(), ""));
        let (inst, spec, cs, cfg) = cell.build().unwrap();
        let sos = build_adversarial_model(&inst, &spec, &cs, &cfg)
            .unwrap()
            .stats()
            .n_sos;
        let norm = inst.topo.total_capacity();
        let (gap, nodes, note) = match st {
            CellStatus::Done(o) => (
                o.verified_gap.map_or("-".into(), |g| f(g / norm)),
                o.nodes.to_string(),
                format!("{} probes", o.probes),
            ),
            CellStatus::Quarantined { reason, .. } => {
                ("-".into(), "-".into(), format!("quarantined: {reason}"))
            }
            CellStatus::Pending { .. } => ("-".into(), "-".into(), "pending".into()),
        };
        println!(
            "  {topo_name:<8} ({} pairs, {sos} SOS) {variant:<10}: gap {gap} ({nodes} nodes, {note})",
            inst.n_pairs()
        );
        csv.row([
            topo_name.to_string(),
            inst.n_pairs().to_string(),
            sos.to_string(),
            variant.into(),
            gap,
            nodes,
        ]);
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
    if report.end == RunEnd::Drained {
        println!("campaign drained before completion — re-run to resume");
        std::process::exit(3);
    }
}

fn main() {
    let budget = budget_secs();
    if let Some(dir) = campaign_dir() {
        run_campaign(&dir, budget);
        return;
    }
    println!("§5 scaling study (DP, T = 5% cap), budget {budget}s per point\n");
    let mut csv = CsvOut::new(
        "scaling",
        &["topology", "pairs", "sos", "variant", "norm_gap", "nodes"],
    );
    let topos = vec![
        builtin::swan(1000.0),
        builtin::b4(1000.0),
        builtin::abilene(1000.0),
        builtin::geant(1000.0),
    ];
    for topo in topos {
        let name = topo.name().to_string();
        let norm = topo.total_capacity();
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        for (variant, cs) in [
            ("continuous", ConstrainedSet::unconstrained()),
            (
                "quantized",
                ConstrainedSet::unconstrained().quantized(vec![0.0, 50.0, 1000.0]),
            ),
        ] {
            let cfg = FinderConfig::budgeted(budget);
            let am = build_adversarial_model(&inst, &spec, &cs, &cfg).unwrap();
            let sos = am.stats().n_sos;
            let r = find_adversarial_gap(&inst, &spec, &cs, &cfg).unwrap();
            println!(
                "  {name:<8} ({} pairs, {} SOS) {variant:<10}: gap {:.4} ({} nodes, {:?})",
                inst.n_pairs(),
                sos,
                r.verified_gap / norm,
                r.nodes,
                r.status
            );
            csv.row([
                name.clone(),
                inst.n_pairs().to_string(),
                sos.to_string(),
                variant.into(),
                f(r.verified_gap / norm),
                r.nodes.to_string(),
            ]);
        }
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
