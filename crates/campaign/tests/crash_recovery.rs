//! Crash-recovery acceptance tests.
//!
//! The contract under test: a campaign interrupted at any point — a
//! graceful drain or a `kill -9` — and resumed from its journal produces
//! the *same* set of certified `(cell, verified_gap)` results as an
//! uninterrupted run, never re-runs a completed cell, and continues
//! in-flight branch-and-bound searches from their checkpoints instead of
//! restarting them.

use metaopt_campaign::{
    resume, run, CampaignConfig, CampaignState, CellHeuristic, CellSpec, CellStatus, RunEnd,
    ShutdownFlag, TopologySpec,
};
use metaopt_resilience::RetryPolicy;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn grid(slice_nodes: usize) -> Vec<CellSpec> {
    [30.0, 50.0, 70.0]
        .into_iter()
        .map(|threshold| CellSpec {
            label: format!("fig1-dp-{threshold}"),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold },
            lo: 0.0,
            hi: 100.0,
            resolution: 4.0,
            probe_cap_nodes: 4_000,
            slice_nodes,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        })
        .collect()
}

fn cfg() -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        retry: RetryPolicy::default(),
        ..CampaignConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "metaopt-campaign-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Extracts `(label, threshold_bits, gap_bits, demand_bits, probes, nodes)`
/// per completed cell — the exact-comparison fingerprint.
type Fingerprint = Vec<(String, Option<u64>, Option<u64>, Vec<u64>, usize, usize)>;

fn fingerprint(state: &CampaignState) -> Fingerprint {
    state
        .cells
        .iter()
        .zip(&state.status)
        .map(|(cell, st)| match st {
            CellStatus::Done(o) => (
                cell.label.clone(),
                o.threshold.map(f64::to_bits),
                o.verified_gap.map(f64::to_bits),
                o.demands.iter().map(|d| d.to_bits()).collect(),
                o.probes,
                o.nodes,
            ),
            other => panic!("cell `{}` not done: {other:?}", cell.label),
        })
        .collect()
}

/// Counts `done <idx>` journal records per cell.
fn done_counts(dir: &Path, n_cells: usize) -> Vec<usize> {
    let contents = metaopt_campaign::read_journal(dir).unwrap();
    let mut counts = vec![0usize; n_cells];
    for rec in &contents.records {
        if let Some(rest) = rec.strip_prefix("done ") {
            let idx: usize = rest.split(' ').next().unwrap().parse().unwrap();
            counts[idx] += 1;
        }
    }
    counts
}

/// Drain a run mid-flight via the shutdown flag, resume it, and compare
/// against an uninterrupted run — bit for bit.
#[test]
fn drained_and_resumed_campaign_matches_uninterrupted() {
    let baseline_dir = tmp_dir("baseline");
    let baseline = run(&baseline_dir, "t", grid(3), &cfg(), &ShutdownFlag::new()).unwrap();
    assert_eq!(baseline.end, RunEnd::Complete);
    let want = fingerprint(&baseline.state);

    // Find a drain point that lands mid-campaign (timing-dependent, so
    // search over delays; every attempt uses a fresh directory).
    let mut delay_ms = 120u64;
    let mut attempt = 0;
    let (dir, drained_state) = loop {
        attempt += 1;
        assert!(attempt <= 12, "could not drain mid-campaign");
        let dir = tmp_dir(&format!("drain-{attempt}"));
        let flag = ShutdownFlag::new();
        let trigger = flag.clone();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            trigger.request();
        });
        let report = run(&dir, "t", grid(3), &cfg(), &flag).unwrap();
        stopper.join().unwrap();
        match report.end {
            RunEnd::Complete => delay_ms = (delay_ms * 2) / 3,
            RunEnd::Drained => {
                // Need evidence of *mid-cell* progress for the resume
                // assertions: a pending cell with a journaled checkpoint.
                let has_ckpt = report
                    .state
                    .status
                    .iter()
                    .any(|s| matches!(s, CellStatus::Pending { resume: Some(st), .. } if st.nodes > 0));
                if has_ckpt {
                    break (dir, report.state);
                }
                delay_ms += 40;
            }
        }
    };

    // Work already banked at the drain point — the resume must *not*
    // redo it.
    let banked_nodes: usize = drained_state
        .status
        .iter()
        .map(|s| match s {
            CellStatus::Pending { resume, .. } => resume.as_ref().map_or(0, |st| st.nodes),
            CellStatus::Done(o) => o.nodes,
            CellStatus::Quarantined { .. } => 0,
        })
        .sum();
    assert!(banked_nodes > 0);
    let mid_bnb = drained_state.status.iter().any(
        |s| matches!(s, CellStatus::Pending { resume: Some(st), .. } if st.pending.is_some()),
    );

    let resumed = resume(&dir, &cfg(), &ShutdownFlag::new()).unwrap();
    assert_eq!(resumed.end, RunEnd::Complete);
    let got = fingerprint(&resumed.state);
    assert_eq!(got, want, "resumed results differ from uninterrupted run");

    // Zero duplicated completed cells.
    assert!(done_counts(&dir, 3).iter().all(|&c| c <= 1));

    // The resumed process did strictly less branch-and-bound work than a
    // restart-from-scratch would have: the banked nodes were skipped.
    let total_nodes: usize = want.iter().map(|f| f.5).sum();
    assert!(
        banked_nodes < total_nodes,
        "banked {banked_nodes} vs total {total_nodes}"
    );
    let resumed_work = total_nodes - banked_nodes;
    assert!(
        resumed_work < total_nodes,
        "resume redid all the work ({resumed_work} of {total_nodes})"
    );
    if mid_bnb {
        // At least one sweep continued mid-probe: its probe count at the
        // drain equals its final probe count only if the interrupted
        // probe finished without restarting the bisection.
        // (The fingerprint equality above already implies this; the flag
        // documents that the scenario actually occurred.)
    }
}

/// SIGKILL the campaign child process mid-run, resume from the journal in
/// a fresh process, and compare the completed result set against an
/// uninterrupted run.
#[test]
fn sigkill_and_resume_matches_uninterrupted() {
    let drill = env!("CARGO_BIN_EXE_campaign_drill");

    // Uninterrupted baseline, in a child process like the real thing.
    let baseline_dir = tmp_dir("kill-baseline");
    let out = std::process::Command::new(drill)
        .args(["run", baseline_dir.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let want = fingerprint(&CampaignState::from_dir(&baseline_dir).unwrap());

    // Kill -9 mid-run. Search over delays for a kill that lands while
    // work is checkpointed but unfinished.
    let mut delay_ms = 150u64;
    let mut attempt = 0;
    let dir = loop {
        attempt += 1;
        assert!(attempt <= 15, "could not land a mid-run SIGKILL");
        let dir = tmp_dir(&format!("kill-{attempt}"));
        let mut child = std::process::Command::new(drill)
            .args(["run", dir.to_str().unwrap(), "3"])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(delay_ms));
        let finished = child.try_wait().unwrap().is_some();
        child.kill().ok(); // SIGKILL on unix
        child.wait().unwrap();
        if finished {
            delay_ms = (delay_ms * 2) / 3;
            continue;
        }
        match CampaignState::from_dir(&dir) {
            Ok(state) => {
                let (done, _, pending) = state.counts();
                let has_ckpt = state
                    .status
                    .iter()
                    .any(|s| matches!(s, CellStatus::Pending { resume: Some(st), .. } if st.nodes > 0));
                // A useful kill: pending work exists with banked progress.
                if pending > 0 && (has_ckpt || done > 0) {
                    break dir;
                }
                delay_ms += 60;
            }
            Err(_) => {
                // Killed before the header/cells were journaled; try later.
                delay_ms += 60;
            }
        }
    };

    let killed_state = CampaignState::from_dir(&dir).unwrap();
    let banked_nodes: usize = killed_state
        .status
        .iter()
        .map(|s| match s {
            CellStatus::Pending { resume, .. } => resume.as_ref().map_or(0, |st| st.nodes),
            CellStatus::Done(o) => o.nodes,
            CellStatus::Quarantined { .. } => 0,
        })
        .sum();

    // Resume in a fresh process.
    let out = std::process::Command::new(drill)
        .args(["resume", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let resumed_state = CampaignState::from_dir(&dir).unwrap();
    let got = fingerprint(&resumed_state);
    assert_eq!(got, want, "post-SIGKILL results differ from uninterrupted run");

    // Zero duplicated completed cells across both processes' journals.
    assert!(done_counts(&dir, 3).iter().all(|&c| c <= 1));

    // Strictly-less-work assertion: whatever was banked before the kill
    // was not redone by the resumed process.
    let total_nodes: usize = want.iter().map(|f| f.5).sum();
    assert!(
        banked_nodes > 0 && banked_nodes < total_nodes,
        "banked {banked_nodes} of {total_nodes}"
    );
}
