//! Integration tests for the §5 extensions through the public facade:
//! quantized search, hose-model constraints, the binary-sweep strategy,
//! and topology attacks.

use metaopt::core::{
    find_adversarial_gap, find_adversarial_topology, sweep_max_gap, ConstrainedSet,
    FinderConfig, HeuristicSpec, TopologyAttack,
};
use metaopt::milp::MilpStatus;
use metaopt::te::TeInstance;
use metaopt::topology::synth::figure1_triangle;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

/// Quantizing to {0, T, d_max} preserves the Figure-1 optimum (the worst
/// case sits on the grid) and every reported demand is on the grid.
#[test]
fn quantized_search_preserves_extremal_optimum() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cs = ConstrainedSet::unconstrained().quantized(vec![0.0, 50.0, 100.0]);
    let r = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal, "{r}");
    assert!((r.model_gap - 50.0).abs() < 1e-4, "{r}");
    for &d in &r.demands {
        assert!(
            [0.0, 50.0, 100.0].iter().any(|&l| (d - l).abs() < 1e-5),
            "demand {d} off the grid"
        );
    }
}

/// A coarse grid that misses the threshold caps the achievable gap.
#[test]
fn quantization_can_cost_quality() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    // Grid without any pinnable positive level except 25.
    let cs = ConstrainedSet::unconstrained().quantized(vec![0.0, 25.0, 100.0]);
    let r = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    // Pinning 25 over two hops displaces 25+25 while carrying 25 →
    // gap 25 with saturating one-hop demands… (plus leftover-capacity
    // effects) — strictly below the unconstrained 50.
    assert!(r.model_gap < 50.0 - 1e-6, "{r}");
    assert!(r.model_gap > 0.0, "{r}");
}

/// Hose-model constraints bound per-node egress/ingress totals.
#[test]
fn hose_constraints_respected() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let pairs: Vec<(usize, usize)> = inst.pairs.iter().map(|&(s, t)| (s.0, t.0)).collect();
    // Node 1 may send at most 80 in total (it sources demands 1→3 and 1→2).
    let egress = vec![80.0, f64::INFINITY, f64::INFINITY];
    let ingress = vec![f64::INFINITY; 3];
    let cs = ConstrainedSet::unconstrained().hose(&pairs, &egress, &ingress);
    let r = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal, "{r}");
    let node1_egress = r.demands[0] + r.demands[1]; // (1→3) + (1→2)
    assert!(node1_egress <= 80.0 + 1e-6, "egress {node1_egress}");
    // The hose cap binds: the gap must be below the unconstrained 50.
    assert!(r.model_gap < 50.0 - 1e-6, "{r}");
}

/// The binary sweep converges near the provable optimum from below.
#[test]
fn sweep_matches_direct_optimization() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let direct = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    let sweep = sweep_max_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(5.0),
        0.0,
        100.0,
        2.0,
    )
    .unwrap();
    let w = sweep.witness.expect("witness exists");
    let threshold = sweep.threshold.expect("a certified threshold exists");
    assert!(
        (threshold - direct.model_gap).abs() <= 2.5,
        "sweep {} vs direct {}",
        threshold,
        direct.model_gap
    );
    assert!(w.verified_gap >= threshold - 1e-6);
}

/// Topology attack on the triangle: degrading the two links lowers OPT and
/// DP together here, so the gap stays ~50; the API must report consistent
/// certified numbers either way.
#[test]
fn topology_attack_consistency() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let demands = vec![50.0, 100.0, 100.0];
    let r = find_adversarial_topology(
        &inst,
        &spec,
        &demands,
        &TopologyAttack::per_edge(0.2),
        &FinderConfig::budgeted(10.0),
    )
    .unwrap();
    assert!(r.gap.verified_gap.is_finite());
    assert!(r.gap.certification_error() < 1e-5, "{}", r.gap.certification_error());
    assert_eq!(r.capacities.len(), inst.topo.n_edges());
    for (e, &c) in r.capacities.iter().enumerate() {
        let c0 = inst.topo.capacity(metaopt::topology::EdgeId(e));
        assert!(c >= 0.8 * c0 - 1e-9 && c <= c0 + 1e-9);
    }
}
