//! Mutation hooks that bypass the builder's validation.
//!
//! The modelcheck golden tests need to manufacture *broken* encodings —
//! flipped dual signs, dropped complementarity pairs, shrunken big-M rows —
//! that the normal [`Model`] API refuses to build. These hooks edit the
//! model in place without re-validating, so a static checker downstream has
//! something real to catch. They are not for encoder use: encoders go
//! through the checked API.

use crate::expr::LinExpr;
use crate::model::{Complementarity, Constraint, Model, VarRef};

impl Model {
    /// Edits constraint `i` in place. Panics if `i` is out of range.
    pub fn mutate_constraint(&mut self, i: usize, f: impl FnOnce(&mut Constraint)) {
        f(&mut self.constraints[i]);
    }

    /// Removes and returns constraint `i`. Panics if `i` is out of range.
    pub fn remove_constraint(&mut self, i: usize) -> Constraint {
        self.constraints.remove(i)
    }

    /// Edits complementarity pair `i` in place. Panics if out of range.
    pub fn mutate_complementarity(&mut self, i: usize, f: impl FnOnce(&mut Complementarity)) {
        f(&mut self.compls[i]);
    }

    /// Removes and returns complementarity pair `i`. Panics if out of range.
    pub fn remove_complementarity(&mut self, i: usize) -> Complementarity {
        self.compls.remove(i)
    }

    /// Appends a complementarity pair without the foreign-variable and
    /// finiteness checks of [`Model::add_complementarity`].
    pub fn push_complementarity_unchecked(&mut self, multiplier: VarRef, slack: LinExpr) {
        self.compls.push(Complementarity { multiplier, slack });
    }

    /// Overwrites a variable's bounds without the `lo <= hi` / NaN checks of
    /// [`Model::set_var_bounds`]. Panics if the variable is out of range.
    pub fn set_var_bounds_unchecked(&mut self, v: VarRef, lo: f64, hi: f64) {
        self.vars[v.0].lo = lo;
        self.vars[v.0].hi = hi;
    }

    /// Renames a variable. Panics if the variable is out of range.
    pub fn rename_var(&mut self, v: VarRef, name: impl Into<String>) {
        self.vars[v.0].name = Some(name.into());
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinExpr, Model, Sense, VarRef};

    #[test]
    fn hooks_bypass_validation() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        m.constrain_named("c", x, Sense::Le, 1.0).unwrap();

        m.set_var_bounds_unchecked(x, 2.0, 1.0); // inverted, checked API refuses
        assert_eq!(m.var_bounds(x), (2.0, 1.0));

        m.rename_var(x, "y");
        assert_eq!(m.var_name(x), "y");

        m.push_complementarity_unchecked(VarRef(99), LinExpr::from(x));
        assert_eq!(m.n_complementarities(), 1);
        m.mutate_complementarity(0, |c| c.slack += 1.0);
        m.remove_complementarity(0);
        assert_eq!(m.n_complementarities(), 0);

        m.mutate_constraint(0, |c| c.sense = Sense::Ge);
        let c = m.remove_constraint(0);
        assert_eq!(c.sense, Sense::Ge);
        assert_eq!(m.n_constraints(), 0);
    }
}
