//@ rel: crates/server/src/server.rs
//@ expect: AN106 6:19
use std::process::Command;

fn escape_hatch() {
    let mut cmd = Command::new("solver-helper");
    cmd.arg("--fast");
    let _ = cmd;
}
