//! The three TE objective families of the paper's §2, side by side:
//! total flow (`OptMaxFlow`, Eq. 3), max-min fairness, and BwE-style
//! concave utility curves — all over the same `FeasibleFlow` polytope.
//!
//! ```sh
//! cargo run --release --example objectives
//! ```

use metaopt::te::{
    fairness::max_min_fair,
    opt::opt_max_flow,
    utility::{max_utility, UtilityCurve},
    TeInstance,
};
use metaopt::topology::synth::figure1_triangle;

fn main() {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let demands = vec![50.0, 100.0, 100.0];
    println!("Figure-1 triangle, demands (1→3, 1→2, 2→3) = (50, 100, 100)\n");

    // 1. Total flow: ruthless — the two-hop demand is starved entirely.
    let opt = opt_max_flow(&inst, &demands).unwrap();
    let rates: Vec<f64> = opt.flows.iter().map(|f| f.iter().sum()).collect();
    println!(
        "max total flow : rates ({:5.1}, {:5.1}, {:5.1})  total {:.1}",
        rates[0], rates[1], rates[2], opt.total_flow
    );

    // 2. Max-min fairness: the two-hop demand gets its fair share.
    let mm = max_min_fair(&inst, &demands).unwrap();
    println!(
        "max-min fair   : rates ({:5.1}, {:5.1}, {:5.1})  total {:.1}  ({} rounds)",
        mm.rates[0], mm.rates[1], mm.rates[2], mm.total_flow, mm.rounds
    );

    // 3. Utility curves: the two-hop demand is high-priority (steep early
    //    slope), so it wins some capacity but diminishing returns stop it
    //    from starving the one-hop demands.
    let curves = vec![
        UtilityCurve::new(vec![(20.0, 5.0), (30.0, 0.5)]).unwrap(), // 1→3: critical first 20
        UtilityCurve::linear(100.0, 1.0).unwrap(),                  // 1→2: best effort
        UtilityCurve::linear(100.0, 1.0).unwrap(),                  // 2→3: best effort
    ];
    let ut = max_utility(&inst, &curves).unwrap();
    println!(
        "utility curves : rates ({:5.1}, {:5.1}, {:5.1})  total {:.1}  utility {:.1}",
        ut.rates[0], ut.rates[1], ut.rates[2], ut.total_flow, ut.total_utility
    );

    println!(
        "\nReading: the objective choice decides who suffers. The paper's gap\n\
         analysis (and this library's finder) uses total flow, matching the\n\
         production heuristics it studies; the other objectives are provided\n\
         as substrate for analyzing heuristics of fairness-oriented systems."
    );
}
