//! Hand-rolled HTTP/1.1, exactly as much as the job API needs: one
//! request per connection (`Connection: close`), `Content-Length` bodies
//! with a hard cap, and chunked transfer encoding for event streams. No
//! keep-alive, no pipelining, no TLS — the server is an internal service
//! behind a trusted listener, and every simplification here is one less
//! state machine to get wrong.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum request head (request line + headers) the server will read.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body the server will read.
pub const MAX_BODY: usize = 256 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token.
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before sending a full request head.
    Eof,
    /// Transport failure.
    Io(io::Error),
    /// The bytes were not a well-formed request; the payload is a
    /// human-readable reason to send back with a `400`.
    Malformed(String),
    /// The declared body exceeded [`MAX_BODY`]; answer `413`.
    TooLarge,
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let body_start;
    loop {
        let n = stream.read(&mut buf).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Eof);
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(ReadError::Malformed("request head too large".into()));
        }
    }
    let head_text = std::str::from_utf8(&head[..body_start])
        .map_err(|_| ReadError::Malformed("non-UTF8 request head".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    // Bytes already read past the head belong to the body.
    req.body = head[body_start + 4..].to_vec();
    while req.body.len() < content_length {
        let n = stream.read(&mut buf).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("body shorter than content-length".into()));
        }
        req.body.extend_from_slice(&buf[..n]);
    }
    req.body.truncate(content_length);
    Ok(req)
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with a fixed body and closes the exchange.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn write_json(stream: &mut TcpStream, status: u16, value: &Json) -> io::Result<()> {
    write_response(stream, status, &[], "application/json", value.render().as_bytes())
}

/// Writes a JSON error response of the server's uniform error shape.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    kind: &str,
    detail: &str,
    retry_after_secs: Option<u64>,
) -> io::Result<()> {
    let body = Json::obj(vec![
        ("error", Json::str(kind)),
        ("detail", Json::str(detail)),
    ]);
    let extra: Vec<(&str, String)> = retry_after_secs
        .map(|s| vec![("Retry-After", s.to_string())])
        .unwrap_or_default();
    write_response(
        stream,
        status,
        &extra,
        "application/json",
        body.render().as_bytes(),
    )
}

/// A chunked-transfer response writer for event streams: one `start`,
/// any number of `chunk`s, one `finish`.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head announcing a chunked NDJSON stream.
    pub fn start(stream: &'a mut TcpStream, status: u16) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (the event line must already end with `\n`).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\nX-Client: alice\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-client"), Some("alice"));
        assert_eq!(req.header("X-CLIENT"), Some("alice"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            roundtrip(b"GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET /x SMTP/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let head = format!("POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(roundtrip(head.as_bytes()), Err(ReadError::TooLarge)));
    }
}
