//! Bounded-variable dual simplex used for warm-started re-solves.
//!
//! Branch-and-bound tightens or relaxes variable bounds between solves.
//! Bound changes never disturb dual feasibility of a basis (reduced costs
//! depend only on the basis), so the dual simplex restores primal
//! feasibility in a handful of pivots instead of re-solving from scratch.

use super::{Basis, Simplex, VarState};
use crate::solution::{Solution, SolveStatus};
use crate::{LpError, LpResult};
use metaopt_resilience::SolverFault;

impl Simplex {
    /// Warm-start entry point for branch-and-bound: installs `basis`
    /// (typically the parent node's optimal basis), then re-optimizes with
    /// the dual simplex — bound changes never disturb dual feasibility, so
    /// after a single-variable tightening this usually takes a handful of
    /// pivots. Falls back to a cold two-phase solve when the snapshot is
    /// singular for the current data or turns out not dual feasible; shape
    /// mismatches (a basis from a differently-sized problem) are an error.
    pub fn resolve_from(&mut self, basis: &Basis) -> LpResult<Solution> {
        match self.install_basis(basis) {
            Ok(()) => self.resolve(),
            Err(e) if e.is_recoverable() => self.solve(),
            Err(e) => Err(e),
        }
    }

    /// Runs dual-simplex iterations from the current basis.
    ///
    /// Returns `Ok(Some(status))` on a conclusion, or `Ok(None)` if the
    /// starting basis is not dual feasible (caller should cold-start).
    pub(crate) fn dual_loop(&mut self) -> LpResult<Option<SolveStatus>> {
        if !self.restore_dual_feasibility() {
            return Ok(None);
        }
        let limit = self.auto_iter_limit();
        let mut w = vec![0.0; self.m];
        let mut local_iters = 0usize;
        // Degenerate-pivot streak: the dual simplex has no Bland rule, so a
        // long streak hands control back to the (anti-cycling) primal
        // cold-start path instead of risking a cycle.
        let mut degen_streak = 0usize;
        // Dual devex reference weights, one per basis position
        // (approximate dual steepest edge, Forrest–Goldfarb): the
        // leaving row maximizes violation²/γ instead of the raw
        // violation, which scales out row norms.
        let mut gamma: Vec<f64> = vec![1.0; self.m];
        loop {
            if local_iters > limit {
                return Err(LpError::IterationLimit);
            }
            local_iters += 1;
            if local_iters.is_multiple_of(64) && self.deadline_passed() {
                return Err(LpError::Fault(SolverFault::DeadlineExceeded));
            }
            if self.refactor_due() {
                self.refactor_and_check()?;
            }

            // Leaving: the basic variable with the largest devex-scaled
            // bound violation.
            let ft = self.cfg.feas_tol;
            let mut leave: Option<(usize, f64, f64)> = None; // (pos, score, target)
            for (i, &g) in gamma.iter().enumerate().take(self.m) {
                let j = self.basis[i];
                let xj = self.x[j];
                let (viol, target) = if xj < self.lo[j] - ft {
                    (self.lo[j] - xj, self.lo[j])
                } else if xj > self.hi[j] + ft {
                    (xj - self.hi[j], self.hi[j])
                } else {
                    continue;
                };
                let score = viol * viol / g;
                if leave.as_ref().is_none_or(|&(_, bs, _)| score > bs) {
                    leave = Some((i, score, target));
                }
            }
            let (pos, _, target) = match leave {
                None => return Ok(Some(SolveStatus::Optimal)),
                Some(l) => l,
            };
            let leaving = self.basis[pos];
            let delta = self.x[leaving] - target; // >0 if above upper, <0 if below lower

            // Pivot row ρ = e_posᵀ B⁻¹ (backend-agnostic unit BTRAN).
            let rho = self.btran_unit(pos);
            let y = self.btran_duals();

            // Entering: among nonbasic j whose movement can pull the leaving
            // variable onto `target`, pick the one preserving dual
            // feasibility (min |d_j / α_j|).
            //
            // ∂x_B[pos]/∂x_j = −α_j with α_j = ρᵀ a_j. If delta > 0 we must
            // decrease x_B[pos]: j at lower (Δx_j ≥ 0) requires α_j > 0,
            // j at upper requires α_j < 0. If delta < 0, signs flip.
            let mut best: Option<(usize, f64, f64)> = None; // (var, alpha, ratio)
            for j in 0..self.total_vars() {
                let at_lower = match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower => true,
                    VarState::AtUpper => false,
                    VarState::FreeZero => {
                        // Free nonbasic variables can move either way; they
                        // are always eligible if α_j is significant.
                        let alpha = self.row_dot(&rho, j);
                        if alpha.abs() <= self.cfg.pivot_tol {
                            continue;
                        }
                        // A free variable has reduced cost ~0; it is the
                        // ideal entering candidate.
                        best = Some((j, alpha, 0.0));
                        break;
                    }
                };
                if self.lo[j] >= self.hi[j] {
                    continue; // fixed variables cannot move
                }
                let alpha = self.row_dot(&rho, j);
                if alpha.abs() <= self.cfg.pivot_tol {
                    continue;
                }
                let eligible = if delta > 0.0 {
                    (at_lower && alpha > 0.0) || (!at_lower && alpha < 0.0)
                } else {
                    (at_lower && alpha < 0.0) || (!at_lower && alpha > 0.0)
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let ratio = (d / alpha).abs();
                if best.as_ref().is_none_or(|&(_, ba, br)| {
                    ratio < br - 1e-12 || (ratio <= br + 1e-12 && alpha.abs() > ba.abs())
                }) {
                    best = Some((j, alpha, ratio));
                }
            }

            let (q, alpha_q, _) = match best {
                None => return Ok(Some(SolveStatus::Infeasible)),
                Some(b) => b,
            };

            // Entering step: x_B[pos] moves from its current value to target
            // as x_q changes by Δ = delta / α_q.
            let step = delta / alpha_q;
            let d_q = self.reduced_cost(q, &y);
            if d_q.abs() <= self.cfg.opt_tol {
                degen_streak += 1;
                if degen_streak > self.cfg.degen_threshold {
                    return Ok(None); // cold-start with Bland protection
                }
            } else {
                degen_streak = 0;
            }
            self.ftran(q, &mut w);
            if w.iter().any(|v| !v.is_finite()) || !step.is_finite() {
                return Err(LpError::Fault(SolverFault::NumericalBreakdown(format!(
                    "non-finite dual pivot data for entering column {q}"
                ))));
            }
            for (i, &wi) in w.iter().enumerate().take(self.m) {
                let j = self.basis[i];
                self.x[j] -= wi * step;
            }
            self.x[leaving] = target;
            self.state[leaving] = if (target - self.lo[leaving]).abs() <= ft {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            self.x[q] += step;
            // Dual devex weight update (Forrest–Goldfarb): with pivot
            // element w_r = w[pos], the reference weight of the pivot
            // row propagates through the entering column:
            //   γ_i ← max(γ_i, (w_i/w_r)²·γ_r),  γ_r ← max(γ_r/w_r², 1).
            let wr = w[pos];
            let gr = gamma[pos];
            let inv_wr2 = 1.0 / (wr * wr);
            let mut overflow = false;
            for (i, g) in gamma.iter_mut().enumerate().take(self.m) {
                if i == pos {
                    continue;
                }
                let wi = w[i];
                if wi != 0.0 {
                    let cand = wi * wi * inv_wr2 * gr;
                    if cand > *g {
                        *g = cand;
                        if cand > 1e8 {
                            overflow = true;
                        }
                    }
                }
            }
            gamma[pos] = (gr * inv_wr2).max(1.0);
            if overflow {
                gamma.iter_mut().for_each(|g| *g = 1.0);
            }
            self.update_basis(pos, q, &w);
            self.iterations += 1;
        }
    }

    /// `ρᵀ a_j` for a dense row vector `ρ`.
    fn row_dot(&self, rho: &[f64], j: usize) -> f64 {
        self.cols.col_dot(j, rho)
    }

    /// Flips nonbasic variables whose reduced-cost sign disagrees with the
    /// bound they sit at (possible after bound relaxation). Returns false if
    /// dual feasibility cannot be restored by flips alone.
    fn restore_dual_feasibility(&mut self) -> bool {
        let y = self.btran_duals();
        let tol = self.cfg.opt_tol.max(1e-6);
        let mut flipped = false;
        for j in 0..self.total_vars() {
            match self.state[j] {
                VarState::Basic(_) => {}
                VarState::FreeZero => {
                    let d = self.reduced_cost(j, &y);
                    if d.abs() > tol {
                        return false; // free var with nonzero reduced cost
                    }
                }
                VarState::AtLower => {
                    let d = self.reduced_cost(j, &y);
                    if d < -tol {
                        if self.hi[j].is_finite() {
                            self.state[j] = VarState::AtUpper;
                            self.x[j] = self.hi[j];
                            flipped = true;
                        } else {
                            return false;
                        }
                    }
                }
                VarState::AtUpper => {
                    let d = self.reduced_cost(j, &y);
                    if d > tol {
                        if self.lo[j].is_finite() {
                            self.state[j] = VarState::AtLower;
                            self.x[j] = self.lo[j];
                            flipped = true;
                        } else {
                            return false;
                        }
                    }
                }
            }
        }
        if flipped {
            self.recompute_basics();
        }
        true
    }
}
