//! Demand Pinning on a production WAN: how bad can it get, and do the
//! bad inputs look like real traffic?
//!
//! This example mirrors how an operator would use `metaopt` on the Abilene
//! backbone (§4 of the paper):
//!
//! 1. find the unconstrained worst case for DP at a 5%-of-capacity pin
//!    threshold,
//! 2. re-run the search *constrained to stay within ±30% of a gravity-model
//!    traffic matrix* (the "bounded distance from a goalpost" constraint of
//!    §3.3) — are realistic demands still adversarial?
//! 3. cross-examine the discovered inputs with the real heuristic.
//!
//! ```sh
//! cargo run --release --example wan_demand_pinning
//! ```

use metaopt::core::{
    find_adversarial_gap, ConstrainedSet, Distance, FinderConfig, HeuristicSpec,
};
use metaopt::te::{demand_pinning::demand_pinning, opt::opt_max_flow, TeInstance};
use metaopt::topology::{builtin, gravity_demands};

fn main() {
    let topo = builtin::abilene(1000.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let threshold = 50.0; // 5% of link capacity
    let spec = HeuristicSpec::DemandPinning { threshold };
    let budget = 20.0;

    // 1. Unconstrained worst case.
    let worst = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(budget),
    )
    .unwrap();
    println!("Abilene, DP threshold {threshold} (5% of capacity):");
    println!(
        "  unconstrained worst case: gap {:.1} flow units ({:.2}% of Σcap), {:?}",
        worst.verified_gap,
        100.0 * worst.verified_gap / norm,
        worst.status
    );
    let pinned = worst
        .demands
        .iter()
        .filter(|&&d| d > 0.0 && d <= threshold)
        .count();
    println!(
        "  adversarial structure: {pinned} of {} demands sit at/below the pin threshold",
        inst.n_pairs()
    );

    // 2. Same search near a realistic traffic matrix.
    let goalpost: Vec<f64> = gravity_demands(&inst.topo, &inst.pairs, 400.0)
        .iter()
        .map(|d| d.volume)
        .collect();
    let cs = ConstrainedSet::unconstrained().near(&goalpost, Distance::RelativeFraction(0.3));
    let realistic = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::budgeted(budget))
        .unwrap();
    println!(
        "  within ±30% of the gravity matrix: gap {:.1} flow units ({:.2}% of Σcap), {:?}",
        realistic.verified_gap,
        100.0 * realistic.verified_gap / norm,
        realistic.status
    );

    // 3. Cross-examination with the real heuristic.
    let dp = demand_pinning(&inst, &worst.demands, threshold).unwrap();
    let opt = opt_max_flow(&inst, &worst.demands).unwrap();
    println!(
        "  cross-check on the worst input: OPT carries {:.1}, DP carries {:.1} (feasible: {})",
        opt.total_flow, dp.total_flow, dp.feasible
    );
    assert!((opt.total_flow - dp.total_flow - worst.verified_gap).abs() < 1e-6);
    println!("  certification error: {:.2e}", worst.certification_error());
}
