//! Solve outcomes reported by the simplex solver.

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below (for the minimization form).
    Unbounded,
}

/// A solved LP: primal point, duals, and bookkeeping.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Terminal status. `x`/`duals` are only meaningful for `Optimal`.
    pub status: SolveStatus,
    /// Primal values per problem variable.
    pub x: Vec<f64>,
    /// Objective value `cᵀx + offset` (minimization form).
    pub objective: f64,
    /// Row duals `y` (one per row). Sign convention: for the minimization
    /// form, an active `<=` row has `y <= 0`… — see crate tests; callers in
    /// this workspace use [`Solution::duals`] only for verification, the KKT
    /// rewrite builds its own multipliers symbolically.
    pub duals: Vec<f64>,
    /// Reduced costs per problem variable (`c_j - yᵀ a_j`).
    pub reduced_costs: Vec<f64>,
    /// Total simplex pivots across phases.
    pub iterations: usize,
    /// True when the point came out of the recovery ladder's degraded
    /// rungs (perturbed bounds or a cached earlier feasible point) rather
    /// than a clean optimal basis. Degraded objectives are valid values of
    /// feasible points but must not be used as relaxation bounds.
    pub degraded: bool,
}

impl Solution {
    /// Convenience: whether the solve ended optimal.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Dual value of row `i`.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}
