//! Utility-curve flow allocation — the third TE objective family §2 cites
//! ("utility curves \[22\]", BwE-style bandwidth functions).
//!
//! Each demand carries a concave piecewise-linear utility `U_k(f_k)`
//! (decreasing marginal value); the allocator maximizes `Σ_k U_k(f_k)`
//! over `FeasibleFlow`. Concavity makes the LP encoding exact: the flow is
//! split into segments, each with its slope as objective coefficient — the
//! solver fills high-slope segments first automatically.

use crate::flow::edge_incidence;
use crate::instance::TeInstance;
use crate::{TeError, TeResult};
use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus, INF};

/// A concave piecewise-linear utility: segments of `(width, slope)` with
/// strictly non-increasing slopes. Utility at `x` is the integral of the
/// slopes over `[0, x]` (beyond the last breakpoint the utility is flat).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityCurve {
    segments: Vec<(f64, f64)>,
}

impl UtilityCurve {
    /// Builds a curve from `(width, slope)` segments.
    ///
    /// Returns an error unless widths are positive and slopes nonnegative
    /// and non-increasing (concavity — required for the LP encoding to be
    /// exact).
    pub fn new(segments: Vec<(f64, f64)>) -> TeResult<Self> {
        let mut last = f64::INFINITY;
        for (i, &(w, s)) in segments.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                return Err(TeError::Model(format!("segment {i}: bad width {w}")));
            }
            if !s.is_finite() || s < 0.0 {
                return Err(TeError::Model(format!("segment {i}: bad slope {s}")));
            }
            if s > last + 1e-12 {
                return Err(TeError::Model(format!(
                    "segment {i}: slope {s} increases (curve must be concave)"
                )));
            }
            last = s;
        }
        Ok(UtilityCurve { segments })
    }

    /// A linear utility `slope · min(x, cap)`.
    pub fn linear(cap: f64, slope: f64) -> TeResult<Self> {
        Self::new(vec![(cap, slope)])
    }

    /// Evaluates the utility at `x`.
    pub fn value(&self, x: f64) -> f64 {
        let mut remaining = x.max(0.0);
        let mut total = 0.0;
        for &(w, s) in &self.segments {
            let take = remaining.min(w);
            total += take * s;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        total
    }

    /// Total width (the saturation point).
    pub fn saturation(&self) -> f64 {
        self.segments.iter().map(|(w, _)| w).sum()
    }

    /// Segment view.
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }
}

/// Result of the utility-maximizing allocation.
#[derive(Debug, Clone)]
pub struct UtilityOutcome {
    /// Allocation per pair.
    pub rates: Vec<f64>,
    /// Total utility achieved.
    pub total_utility: f64,
    /// Total carried flow.
    pub total_flow: f64,
}

/// Maximizes `Σ_k U_k(f_k)` over `FeasibleFlow` with per-pair curves.
/// Demands are implicit in the curves' saturation points (a pair's flow
/// beyond saturation earns nothing and is never routed).
pub fn max_utility(inst: &TeInstance, curves: &[UtilityCurve]) -> TeResult<UtilityOutcome> {
    if curves.len() != inst.n_pairs() {
        return Err(TeError::DemandMismatch {
            expected: inst.n_pairs(),
            got: curves.len(),
        });
    }
    let mut lp = LpProblem::new();
    // Per (pair, path) flow variables.
    let grid: Vec<Vec<metaopt_lp::VarId>> = inst
        .paths
        .iter()
        .map(|paths| {
            (0..paths.len())
                .map(|_| lp.add_var(0.0, INF, 0.0))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<_, _>>()?;
    // Per (pair, segment) utility variables: seg <= width, objective −slope
    // (minimization form), and Σ segs == Σ path flows.
    let mut seg_vars = Vec::with_capacity(inst.n_pairs());
    for (k, curve) in curves.iter().enumerate() {
        let mut segs = Vec::with_capacity(curve.segments.len());
        for &(w, s) in &curve.segments {
            segs.push(lp.add_var(0.0, w, -s)?);
        }
        // Σ_p f_k^p − Σ_seg = 0, plus cap at saturation via segment widths.
        lp.add_row(
            RowSense::Eq,
            0.0,
            grid[k]
                .iter()
                .map(|&v| (v, 1.0))
                .chain(segs.iter().map(|&v| (v, -1.0))),
        )?;
        seg_vars.push(segs);
    }
    for (e, users) in edge_incidence(inst).into_iter().enumerate() {
        if users.is_empty() {
            continue;
        }
        lp.add_row(
            RowSense::Le,
            inst.topo.capacity(metaopt_topology::EdgeId(e)),
            users.into_iter().map(|(k, p)| (grid[k][p], 1.0)),
        )?;
    }
    let sol = Simplex::new(&lp).solve()?;
    if sol.status != SolveStatus::Optimal {
        return Err(TeError::Model(format!(
            "utility LP ended {:?}",
            sol.status
        )));
    }
    let rates: Vec<f64> = grid
        .iter()
        .map(|vars| vars.iter().map(|v| sol.x[v.0]).sum())
        .collect();
    let total_utility = -sol.objective;
    let total_flow = rates.iter().sum();
    Ok(UtilityOutcome {
        rates,
        total_utility,
        total_flow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::{figure1_triangle, line};
    use metaopt_topology::NodeId;

    #[test]
    fn curve_validation() {
        assert!(UtilityCurve::new(vec![(10.0, 2.0), (10.0, 1.0)]).is_ok());
        assert!(UtilityCurve::new(vec![(10.0, 1.0), (10.0, 2.0)]).is_err()); // convex
        assert!(UtilityCurve::new(vec![(0.0, 1.0)]).is_err());
        assert!(UtilityCurve::new(vec![(5.0, -1.0)]).is_err());
    }

    #[test]
    fn curve_evaluation() {
        let c = UtilityCurve::new(vec![(10.0, 2.0), (10.0, 1.0)]).unwrap();
        assert_eq!(c.value(0.0), 0.0);
        assert_eq!(c.value(5.0), 10.0);
        assert_eq!(c.value(10.0), 20.0);
        assert_eq!(c.value(15.0), 25.0);
        assert_eq!(c.value(100.0), 30.0); // flat beyond saturation
        assert_eq!(c.saturation(), 20.0);
    }

    /// High-priority (steep) demand wins the bottleneck.
    #[test]
    fn priority_wins_bottleneck() {
        let t = line(2, 10.0);
        let inst = TeInstance::with_pairs(
            t,
            vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))],
            1,
        )
        .unwrap();
        let curves = vec![
            UtilityCurve::linear(10.0, 5.0).unwrap(), // steep
            UtilityCurve::linear(10.0, 1.0).unwrap(), // shallow
        ];
        let out = max_utility(&inst, &curves).unwrap();
        assert!((out.rates[0] - 10.0).abs() < 1e-6, "{:?}", out.rates);
        assert!(out.rates[1].abs() < 1e-6);
        assert!((out.total_utility - 50.0).abs() < 1e-6);
    }

    /// Diminishing returns split the bottleneck: with curves 2-then-1 vs a
    /// flat 1.5, the first demand's first segment and then the second
    /// demand fill up.
    #[test]
    fn concavity_shares_capacity() {
        let t = line(2, 10.0);
        let inst = TeInstance::with_pairs(
            t,
            vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))],
            1,
        )
        .unwrap();
        let curves = vec![
            UtilityCurve::new(vec![(4.0, 2.0), (6.0, 1.0)]).unwrap(),
            UtilityCurve::linear(10.0, 1.5).unwrap(),
        ];
        let out = max_utility(&inst, &curves).unwrap();
        // Fill order by slope: d0 seg1 (4 @2), then d1 (up to 10 @1.5, but
        // only 6 left), then d0 seg2 (@1). Expect rates (4, 6).
        assert!((out.rates[0] - 4.0).abs() < 1e-6, "{:?}", out.rates);
        assert!((out.rates[1] - 6.0).abs() < 1e-6, "{:?}", out.rates);
        let expect = 4.0 * 2.0 + 6.0 * 1.5;
        assert!((out.total_utility - expect).abs() < 1e-6);
    }

    /// With identical linear curves, utility maximization reduces to
    /// OptMaxFlow (same totals).
    #[test]
    fn linear_curves_reduce_to_max_flow() {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst =
            TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let demands = vec![50.0, 100.0, 100.0];
        let curves: Vec<UtilityCurve> = demands
            .iter()
            .map(|&d: &f64| UtilityCurve::linear(d.max(1e-9), 1.0).unwrap())
            .collect();
        let ut = max_utility(&inst, &curves).unwrap();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        assert!(
            (ut.total_flow - opt.total_flow).abs() < 1e-6,
            "utility {} vs maxflow {}",
            ut.total_flow,
            opt.total_flow
        );
        // Utility value equals carried flow for unit slopes.
        assert!((ut.total_utility - ut.total_flow).abs() < 1e-6);
    }
}
