//! Chaos suite: deterministic fault injection across lp → milp → core.
//!
//! Every test here drives the *whole* pipeline (or the bare simplex) with
//! a [`FaultPlan`] that forces NaN pivots, singular refactorizations,
//! expired deadlines, panicking incumbent callbacks, and spurious stalls —
//! and asserts the invariant the resilience layer exists for: **a clean
//! status comes back every time** (no panic, no hang, no `Err` for solver
//! faults), and anything reported as an incumbent survives re-verification
//! against the real OPT and heuristic.
//!
//! The seed matrix is fixed by default and overridable for CI shards via
//! the `CHAOS_SEED` environment variable (a single `u64`).

use metaopt::core::{
    find_adversarial_gap, ConstrainedSet, DegradationLevel, FinderConfig, HeuristicSpec,
};
use metaopt::lp::{LpProblem, RowSense, Simplex, SolveStatus, INF};
use metaopt::milp::MilpStatus;
use metaopt::resilience::{Budget, FaultPlan, FaultSite};
use metaopt::te::TeInstance;
use metaopt::topology::builtin::b4;
use metaopt::topology::synth::figure1_triangle;
use proptest::prelude::*;

fn fig1_instance() -> TeInstance {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

/// The post-conditions every chaos run must satisfy, regardless of what
/// was injected.
fn assert_clean(result: &metaopt::core::GapResult, context: &str) {
    match result.status {
        MilpStatus::Optimal | MilpStatus::Feasible => {
            assert!(
                result.verified_gap.is_finite(),
                "{context}: incumbent demands failed re-verification: {result}"
            );
            assert!(
                result.certification_error() < 1e-3,
                "{context}: certification error {} too large: {result}",
                result.certification_error()
            );
        }
        MilpStatus::Infeasible | MilpStatus::Unbounded => {}
        MilpStatus::NoSolution => {
            assert!(
                result.degradation >= DegradationLevel::None,
                "{context}: inconsistent degradation"
            );
        }
    }
    // A degraded result must say so explicitly, never silently.
    if result.degradation == DegradationLevel::NoSolution {
        assert_eq!(result.status, MilpStatus::NoSolution, "{context}");
    }
}

/// Each of the five instrumented fault sites, injected into an otherwise
/// healthy run, ends in a clean status — and the instrumented path was
/// genuinely executed (`hits > 0`), so the coverage is real.
#[test]
fn every_fault_site_ends_in_clean_status() {
    let inst = fig1_instance();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    for site in FaultSite::ALL {
        let plan = FaultPlan::new().inject(site);
        let mut cfg = FinderConfig::budgeted(20.0);
        cfg.milp.fault_plan = Some(plan.clone());
        let result =
            find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
                .unwrap_or_else(|e| panic!("{site:?}: finder errored: {e}"));
        assert!(
            plan.hits(site) > 0,
            "{site:?}: instrumented path never executed"
        );
        assert_eq!(
            plan.fired(site),
            1,
            "{site:?}: injection did not fire exactly once"
        );
        assert_clean(&result, &format!("{site:?}"));
        // A single recoverable fault must not cost the answer: the
        // recovery ladder (or the degradation chain) still produces the
        // certified Figure-1 gap of 50 flow units.
        if matches!(site, FaultSite::NanPivot | FaultSite::SingularRefactor) {
            assert!(
                (result.verified_gap - 50.0).abs() < 1e-4,
                "{site:?}: expected the certified figure-1 gap, got {result}"
            );
        }
    }
}

/// Seeded random fault plans (1–3 triggers each) across the full pipeline.
/// The matrix is fixed so failures reproduce; CI shards can pin a single
/// seed with `CHAOS_SEED=<n>`.
#[test]
fn seeded_chaos_matrix_is_panic_free() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => (0..12).collect(),
    };
    let inst = fig1_instance();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    for seed in seeds {
        let plan = FaultPlan::from_seed(seed);
        let mut cfg = FinderConfig::budgeted(10.0);
        cfg.milp.fault_plan = Some(plan.clone());
        cfg.fallback_seed = seed;
        let result =
            find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: finder errored: {e}"));
        assert_clean(&result, &format!("seed {seed} ({:?})", plan.targeted_sites()));
    }
}

/// Acceptance: a 1-second end-to-end budget on B4 still returns a
/// *certified* incumbent through the new `Budget` plumbing — the anytime
/// guarantee the paper's §3.3 stop rules assume.
#[test]
fn one_second_budget_on_b4_returns_certified_incumbent() {
    let inst = TeInstance::all_pairs(b4(1000.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::budgeted(1.0);
    let result =
        find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    assert!(
        matches!(result.status, MilpStatus::Optimal | MilpStatus::Feasible),
        "no incumbent under the 1 s budget: {result}"
    );
    assert!(result.verified_gap.is_finite());
    assert!(
        result.certification_error() < 1e-3,
        "uncertified incumbent: {result}"
    );
}

/// Builds a transportation-style LP (m sources × n sinks).
fn transportation(m: usize, n: usize, seed: u64) -> LpProblem {
    let mut p = LpProblem::new();
    let mut cost = seed.max(1);
    let mut next = move || {
        cost ^= cost << 13;
        cost ^= cost >> 7;
        cost ^= cost << 17;
        (cost % 97) as f64 / 10.0 + 0.1
    };
    let xs: Vec<Vec<metaopt::lp::VarId>> = (0..m)
        .map(|_| {
            (0..n)
                .map(|_| p.add_var(0.0, INF, next()).unwrap())
                .collect()
        })
        .collect();
    let supply = 10.0 * n as f64 / m as f64;
    for row in &xs {
        p.add_row(RowSense::Le, supply, row.iter().map(|&v| (v, 1.0)))
            .unwrap();
    }
    for j in 0..n {
        p.add_row(RowSense::Ge, 8.0, xs.iter().map(|row| (row[j], 1.0)))
            .unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random LPs under microscopic deadlines and random injected faults:
    /// the simplex always returns a status — never panics, never loops —
    /// and afterwards recovers to a normal optimal solve once the plan and
    /// deadline are lifted.
    #[test]
    fn lp_never_panics_under_faults_and_tiny_deadlines(
        m in 2usize..6,
        n in 2usize..6,
        lp_seed in 1u64..400,
        fault_seed in 0u64..400,
        expired in 0u8..2,
    ) {
        let expired = expired == 1;
        let p = transportation(m, n, lp_seed);
        let mut sx = Simplex::new(&p);
        sx.set_fault_plan(Some(FaultPlan::from_seed(fault_seed)));
        if expired {
            sx.set_deadline(Some(std::time::Instant::now()));
        }
        // Any outcome is acceptable — only panics and hangs are bugs.
        let first = sx.solve();
        if let Ok(sol) = &first {
            prop_assert!(sol.status != SolveStatus::Optimal || p.max_violation(&sol.x) < 1e-5);
        }
        // The solver must remain usable: lift the chaos, solve cleanly.
        sx.set_fault_plan(None);
        sx.set_deadline(None);
        let clean = sx.solve();
        prop_assert!(clean.is_ok(), "post-chaos solve failed: {:?}", clean.err());
        prop_assert_eq!(clean.unwrap().status, SolveStatus::Optimal);
    }

    /// The full finder under microscopic budgets and seeded faults always
    /// returns a status whose incumbent (when present) re-verifies.
    #[test]
    fn finder_is_anytime_under_chaos(
        fault_seed in 0u64..64,
        millis in 1u64..40,
    ) {
        let inst = fig1_instance();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let mut cfg = FinderConfig {
            budget: Budget::from_duration(std::time::Duration::from_millis(millis)),
            fallback_seed: fault_seed,
            ..FinderConfig::default()
        };
        cfg.milp.fault_plan = Some(FaultPlan::from_seed(fault_seed));
        let result = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg);
        prop_assert!(result.is_ok(), "finder errored: {:?}", result.err());
        let result = result.unwrap();
        if matches!(result.status, MilpStatus::Optimal | MilpStatus::Feasible) {
            prop_assert!(result.verified_gap.is_finite());
            prop_assert!(
                result.certification_error() < 1e-3,
                "uncertified incumbent under chaos: {}", result
            );
        }
    }
}
