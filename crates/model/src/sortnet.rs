//! Batcher odd–even sorting networks as mixed-integer constraints.
//!
//! §3.2 of the paper proposes targeting a *tail percentile* of POP's random
//! heuristic value by pushing the per-instantiation values through a sorting
//! network "to bubble up the worst outcomes". Each comparator maps a pair of
//! expressions `(a, b)` to `(min(a,b), max(a,b))` using one binary variable
//! and the exact big-M min/max encoding; wiring comparators in Batcher's
//! odd–even-merge pattern yields a fully sorted (ascending) output.

use crate::expr::LinExpr;
use crate::model::{Model, Sense, VarRef};
use crate::{ModelError, ModelResult};

/// A comparator gate: `lo = min(a,b)`, `hi = max(a,b)`.
///
/// Requires a finite range `[vmin, vmax]` containing both inputs at every
/// feasible point. Encoding with binary `z` (`z = 1` means `a <= b`):
///
/// ```text
///   lo <= a,  lo <= b,
///   lo >= a − Γ(1−z),  lo >= b − Γz,   Γ = vmax − vmin
///   hi  = a + b − lo.
/// ```
pub fn comparator(
    model: &mut Model,
    name: &str,
    a: LinExpr,
    b: LinExpr,
    vmin: f64,
    vmax: f64,
) -> ModelResult<(VarRef, VarRef)> {
    if !vmin.is_finite() || !vmax.is_finite() || vmin > vmax {
        return Err(ModelError::MissingBound(format!(
            "comparator({name}) needs a finite value range, got [{vmin}, {vmax}]"
        )));
    }
    let gamma = vmax - vmin;
    let lo = model.add_var(format!("{name}::min"), vmin, vmax)?;
    let hi = model.add_var(format!("{name}::max"), vmin, vmax)?;
    let z = model.add_binary(format!("{name}::cmp"))?;
    model.constrain_named(format!("{name}::lo_le_a"), LinExpr::from(lo), Sense::Le, a.clone())?;
    model.constrain_named(format!("{name}::lo_le_b"), LinExpr::from(lo), Sense::Le, b.clone())?;
    // lo >= a − Γ(1−z)  ⇔ lo − a − Γz >= −Γ
    model.constrain_named(
        format!("{name}::lo_ge_a"),
        LinExpr::from(lo) - a.clone() - LinExpr::term(z, gamma),
        Sense::Ge,
        -gamma,
    )?;
    // lo >= b − Γz
    model.constrain_named(
        format!("{name}::lo_ge_b"),
        LinExpr::from(lo) - b.clone() + LinExpr::term(z, gamma),
        Sense::Ge,
        0.0,
    )?;
    // hi = a + b − lo
    model.constrain_named(
        format!("{name}::hi_sum"),
        LinExpr::from(hi) + lo,
        Sense::Eq,
        a + b,
    )?;
    Ok((lo, hi))
}

/// Comparator index pairs of Batcher's odd–even merge sort on `n` wires
/// (`n` padded up to a power of two by the caller). Pairs `(i, j)` with
/// `i < j` mean "compare-and-swap wires i and j (ascending)".
pub fn batcher_pairs(n: usize) -> Vec<(usize, usize)> {
    assert!(n.is_power_of_two(), "batcher_pairs needs a power of two");
    let mut pairs = Vec::new();
    // Knuth's iterative formulation (TAOCP vol. 3, §5.3.4, Algorithm M).
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..(n - j - k) {
                    let lo = i + j;
                    let hi = i + j + k;
                    if lo / (2 * p) == hi / (2 * p) && lo < n && hi < n && i < k {
                        pairs.push((lo, hi));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// Encodes an ascending sort of `inputs` and returns the output wires
/// (smallest first). Inputs beyond the largest power of two are handled by
/// padding with the constant `vmax`, which sinks to the top and never
/// displaces a real value from the low positions.
///
/// Returns `inputs.len()` output expressions: position `k` is the
/// `(k+1)`-smallest input value. Uses `O(n log² n)` comparators, one binary
/// variable each.
pub fn sort_ascending(
    model: &mut Model,
    name: &str,
    inputs: Vec<LinExpr>,
    vmin: f64,
    vmax: f64,
) -> ModelResult<Vec<LinExpr>> {
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let padded = n.next_power_of_two();
    let mut wires: Vec<LinExpr> = inputs;
    wires.resize(padded, LinExpr::constant(vmax));
    for (gate, (i, j)) in batcher_pairs(padded).into_iter().enumerate() {
        let (lo, hi) = comparator(
            model,
            &format!("{name}::g{gate}"),
            wires[i].clone(),
            wires[j].clone(),
            vmin,
            vmax,
        )?;
        wires[i] = LinExpr::from(lo);
        wires[j] = LinExpr::from(hi);
    }
    wires.truncate(n);
    Ok(wires)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Software reference: applying the comparator pairs to a concrete array
    /// must sort it, for every 0/1 input (the 0-1 principle then guarantees
    /// correctness on all inputs).
    #[test]
    fn batcher_pairs_satisfy_zero_one_principle() {
        for n in [1usize, 2, 4, 8, 16] {
            if !n.is_power_of_two() {
                continue;
            }
            let pairs = batcher_pairs(n);
            for mask in 0..(1u32 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (mask >> i) & 1).collect();
                for &(a, b) in &pairs {
                    if v[a] > v[b] {
                        v.swap(a, b);
                    }
                }
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "n={n} mask={mask:b} not sorted: {v:?}"
                );
            }
        }
    }

    #[test]
    fn comparator_gate_assignments() {
        let mut m = Model::new();
        let a = m.add_var("a", 0.0, 10.0).unwrap();
        let b = m.add_var("b", 0.0, 10.0).unwrap();
        let (lo, hi) = comparator(&mut m, "g", a.into(), b.into(), 0.0, 10.0).unwrap();
        // a=7, b=3 → lo=3, hi=7, z=0 (a > b).
        let mut vals = vec![0.0; m.n_vars()];
        vals[0] = 7.0;
        vals[1] = 3.0;
        vals[lo.0] = 3.0;
        vals[hi.0] = 7.0;
        // find z: it is the binary added by the comparator
        let z = crate::model::VarRef(
            (0..m.n_vars())
                .find(|&i| m.var_kind(crate::model::VarRef(i)) == crate::model::VarKind::Binary)
                .unwrap(),
        );
        vals[z.0] = 0.0;
        assert!(m.violation(&vals, 1e-9) <= 1e-9, "v={}", m.violation(&vals, 1e-9));
        // Swapped outputs must be rejected for both z values.
        for zv in [0.0, 1.0] {
            vals[lo.0] = 7.0;
            vals[hi.0] = 3.0;
            vals[z.0] = zv;
            assert!(m.violation(&vals, 1e-9) > 1e-6);
        }
    }

    /// End-to-end: solve-free check that a known sorted assignment satisfies
    /// the full network and an unsorted one does not exist (outputs are
    /// forced). Full solver-based checks live in the milp crate's tests.
    #[test]
    fn network_admits_sorted_assignment() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..3)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 10.0).unwrap())
            .collect();
        let out = sort_ascending(
            &mut m,
            "s",
            xs.iter().map(|&v| LinExpr::from(v)).collect(),
            0.0,
            10.0,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        // With 4 padded wires Batcher uses 5 comparators → 5 binaries.
        let n_bin = (0..m.n_vars())
            .filter(|&i| m.var_kind(VarRef(i)) == crate::model::VarKind::Binary)
            .count();
        assert_eq!(n_bin, 5);
    }
}
