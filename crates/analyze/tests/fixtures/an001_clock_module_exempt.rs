//@ rel: crates/obs/src/clock.rs
use std::time::Instant;

fn wall_now() -> Instant {
    Instant::now()
}
