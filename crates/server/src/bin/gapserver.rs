//! `gapserver` — the gap-finding job server and its companion CLI.
//!
//! ```text
//! gapserver serve  --dir DIR --addr HOST:PORT [--workers N] [--max-queue N]
//!                  [--quota-burst F] [--quota-per-sec F] [--aging-secs F]
//!                  [--default-threads N] [--name NAME]
//! gapserver submit --addr HOST:PORT (--file SPEC.json | reads stdin)
//! gapserver status --addr HOST:PORT [ID]
//! gapserver wait   --addr HOST:PORT ID [--timeout-secs N]
//! gapserver events --addr HOST:PORT ID
//! gapserver cancel --addr HOST:PORT ID
//! gapserver drain  --addr HOST:PORT
//! gapserver metrics --addr HOST:PORT
//! gapserver trace  --addr HOST:PORT
//! ```
//!
//! `serve` prints `LISTENING <addr>` once the socket is bound and also
//! writes the bound address to `DIR/ADDR`, so drill scripts can target an
//! OS-assigned port. Exit codes from `wait`: 0 done, 2 quarantined,
//! 3 cancelled, 4 timeout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use metaopt_campaign::journal::JournalDisk;
use metaopt_campaign::{FaultyDisk, IoFaultPlan, SandboxConfig, SandboxLimits};
use metaopt_obs::trace::DEFAULT_RING_CAPACITY;
use metaopt_obs::{Registry, SystemClock, Tracer};
use metaopt_server::client;
use metaopt_server::json::Json;
use metaopt_server::{serve, GapServer, ServerConfig};
use std::io::Read;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide tracer: CLI diagnostics go through
/// [`Tracer::log_stderr`] (byte-identical stderr plus a flight-recorder
/// event), and `serve` hands the same ring to the server so
/// `GET /admin/trace` and the panic dump see CLI context too.
fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer::new(Arc::new(SystemClock), DEFAULT_RING_CAPACITY))
}

fn main() -> ExitCode {
    tracer().install_panic_dump();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();
    let result = match cmd {
        // Sandbox worker mode: the server self-execs its own binary with
        // `--worker`; the child speaks the framed IPC protocol on
        // stdin/stdout and exits when its one cell is done. No flags, no
        // HTTP, no journal — everything arrives over the pipe.
        "--worker" => {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            return ExitCode::from(metaopt_campaign::worker_main().clamp(0, 255) as u8);
        }
        "serve" => cmd_serve(&rest),
        "submit" => cmd_submit(&rest),
        "status" => cmd_status(&rest),
        "wait" => cmd_wait(&rest),
        "events" => cmd_events(&rest),
        "cancel" => cmd_cancel(&rest),
        "drain" => cmd_drain(&rest),
        "metrics" => cmd_get(&rest, "/metrics"),
        "health" => cmd_get(&rest, "/healthz"),
        "trace" => cmd_get(&rest, "/admin/trace"),
        "help" | "--help" | "-h" => {
            tracer().log_stderr("cli.usage", USAGE);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            tracer().log_stderr("cli.error", &format!("gapserver: {msg}"));
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gapserver serve  --dir DIR --addr HOST:PORT [--workers N] [--max-queue N]
                   [--quota-burst F] [--quota-per-sec F] [--aging-secs F]
                   [--default-threads N] [--name NAME] [--sandbox on|off]
                   [--sandbox-wall-secs F] [--sandbox-rss-mb N]
                   [--sandbox-heartbeat-secs F]
  gapserver submit --addr HOST:PORT [--file SPEC.json]   (stdin when no --file)
  gapserver status --addr HOST:PORT [ID]
  gapserver wait   --addr HOST:PORT ID [--timeout-secs N]
  gapserver events --addr HOST:PORT ID
  gapserver cancel --addr HOST:PORT ID
  gapserver drain  --addr HOST:PORT
  gapserver metrics --addr HOST:PORT
  gapserver health --addr HOST:PORT
  gapserver trace  --addr HOST:PORT";

/// Pulls `--flag value` pairs and bare positionals out of an argv slice.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn parse(args: &[&'a str]) -> Result<Flags<'a>, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name, *value));
                i += 2;
            } else {
                positional.push(args[i]);
                i += 1;
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} `{v}`")),
        }
    }
}

/// Builds the worker-sandbox config for `serve`. `--sandbox off` opts
/// back into in-process execution; everything else self-execs this very
/// binary with `--worker`, so parent and child can never skew versions.
fn sandbox_config(flags: &Flags) -> Result<Option<SandboxConfig>, String> {
    match flags.get("sandbox") {
        Some("off") => return Ok(None),
        Some("on") | None => {}
        Some(other) => return Err(format!("bad --sandbox `{other}` (want on|off)")),
    }
    let program =
        std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let wall = flags.num("sandbox-wall-secs", 0.0f64)?;
    let rss_mb = flags.num("sandbox-rss-mb", 0u64)?;
    let heartbeat = flags.num("sandbox-heartbeat-secs", 10.0f64)?;
    Ok(Some(SandboxConfig {
        program,
        args: vec!["--worker".to_string()],
        limits: SandboxLimits {
            wall: (wall > 0.0).then(|| Duration::from_secs_f64(wall)),
            rss_bytes: (rss_mb > 0).then_some(rss_mb * 1024 * 1024),
            heartbeat: Duration::from_secs_f64(heartbeat.max(0.1)),
        },
    }))
}

/// Builds the journal disk layer for `serve`: the `GAPSERVER_IO_FAULTS`
/// environment variable (e.g. `append:3:enospc` or `sync:1:eio`) arms a
/// deterministic fault plan for the disk-full / fsync drills; unset
/// means the real filesystem, untouched.
fn fault_disk() -> Result<Option<Arc<dyn JournalDisk>>, String> {
    match std::env::var("GAPSERVER_IO_FAULTS") {
        Err(_) => Ok(None),
        Ok(spec) if spec.trim().is_empty() => Ok(None),
        Ok(spec) => {
            let plan = IoFaultPlan::parse(&spec)
                .map_err(|e| format!("GAPSERVER_IO_FAULTS: {e}"))?;
            tracer().log_stderr(
                "cli.io_faults",
                &format!("gapserver: journal fault plan armed: {spec}"),
            );
            Ok(Some(Arc::new(FaultyDisk::new(plan))))
        }
    }
}

fn cmd_serve(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let dir = PathBuf::from(flags.require("dir")?);
    let addr = flags.require("addr")?;
    let cfg = ServerConfig {
        sandbox: sandbox_config(&flags)?,
        disk: fault_disk()?,
        name: flags.get("name").unwrap_or("gapserver").to_string(),
        dir: dir.clone(),
        workers: flags.num("workers", 2usize)?,
        max_queue: flags.num("max-queue", 64usize)?,
        quota_burst: flags.num("quota-burst", 16.0f64)?,
        quota_per_sec: flags.num("quota-per-sec", 4.0f64)?,
        aging_secs: flags.num("aging-secs", 30.0f64)?,
        default_threads: flags.num("default-threads", 0usize)?,
        // Live observability: `GET /metrics` renders this registry and
        // `GET /admin/trace` tails the process-wide flight recorder.
        registry: Registry::new(),
        tracer: tracer().clone(),
        ..ServerConfig::default()
    };
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let server = GapServer::open(cfg).map_err(|e| format!("open {}: {e}", dir.display()))?;
    // Drill scripts read the OS-assigned port from here.
    std::fs::write(dir.join("ADDR"), bound.to_string())
        .map_err(|e| format!("write ADDR: {e}"))?;
    println!("LISTENING {bound}");
    let workers = server.start_workers();
    serve(&server, listener).map_err(|e| format!("serve: {e}"))?;
    for handle in workers {
        let _ = handle.join();
    }
    Ok(ExitCode::SUCCESS)
}

fn call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<client::Response, String> {
    client::request(addr, method, path, body, Duration::from_secs(120))
        .map_err(|e| format!("{method} {path} on {addr}: {e}"))
}

fn cmd_submit(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let body = match flags.get("file") {
        Some(path) => std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?,
        None => {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| format!("read stdin: {e}"))?;
            buf
        }
    };
    let resp = call(addr, "POST", "/jobs", Some(&body))?;
    println!("{}", resp.text());
    Ok(if resp.status == 202 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_status(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let path = match flags.positional.first() {
        Some(id) => format!("/jobs/{id}"),
        None => "/jobs".to_string(),
    };
    let resp = call(addr, "GET", &path, None)?;
    println!("{}", resp.text());
    Ok(if resp.status == 200 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_wait(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let id = flags
        .positional
        .first()
        .ok_or_else(|| "wait needs a job id".to_string())?;
    let timeout = flags.num("timeout-secs", 600u64)?;
    // an:allow(AN001): CLI polling deadline — the client binary lives
    // outside the deterministic-replay boundary.
    let deadline = Instant::now() + Duration::from_secs(timeout);
    loop {
        let resp = call(addr, "GET", &format!("/jobs/{id}"), None)?;
        if resp.status != 200 {
            return Err(format!("job {id}: HTTP {} {}", resp.status, resp.text()));
        }
        let parsed =
            Json::parse(&resp.text()).map_err(|e| format!("bad status body: {e}"))?;
        let status = parsed
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        match status.as_str() {
            "done" => {
                println!("{}", resp.text());
                return Ok(ExitCode::SUCCESS);
            }
            "quarantined" => {
                println!("{}", resp.text());
                return Ok(ExitCode::from(2));
            }
            "cancelled" => {
                println!("{}", resp.text());
                return Ok(ExitCode::from(3));
            }
            _ => {}
        }
        // an:allow(AN001): see the deadline above.
        if Instant::now() >= deadline {
            tracer().log_stderr(
                "cli.wait_timeout",
                &format!("gapserver: timed out waiting for job {id} (last: {status})"),
            );
            return Ok(ExitCode::from(4));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn cmd_events(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let id = flags
        .positional
        .first()
        .ok_or_else(|| "events needs a job id".to_string())?;
    let resp = call(addr, "GET", &format!("/jobs/{id}/events"), None)?;
    print!("{}", resp.text());
    Ok(if resp.status == 200 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_cancel(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let id = flags
        .positional
        .first()
        .ok_or_else(|| "cancel needs a job id".to_string())?;
    let resp = call(addr, "DELETE", &format!("/jobs/{id}"), None)?;
    println!("{}", resp.text());
    Ok(if resp.status == 200 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `metrics` / `trace`: dump a GET endpoint's body verbatim (Prometheus
/// text exposition and the flight-recorder NDJSON tail respectively), so
/// drill scripts can scrape a live server without curl.
fn cmd_get(args: &[&str], path: &str) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let resp = call(addr, "GET", path, None)?;
    print!("{}", resp.text());
    Ok(if resp.status == 200 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_drain(args: &[&str]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let resp = call(addr, "POST", "/admin/drain", None)?;
    println!("{}", resp.text());
    Ok(if resp.status == 202 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
