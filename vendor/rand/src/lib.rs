#![allow(clippy::all, clippy::pedantic, clippy::nursery)] // vendored offline subset: exempt from the repo lint bar
//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin slice of `rand` 0.8 it actually uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], uniform [`Rng::gen`] /
//! [`Rng::gen_range`] draws, and [`seq::SliceRandom::shuffle`]. The
//! generator is xoshiro256++ (public domain reference construction) seeded
//! through splitmix64 — deterministic across platforms, which is all the
//! workspace's seeded experiments and property tests require.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range {:?}", self);
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range {lo}..={hi}");
        // Scale a [0, 1] draw (including the endpoint bit pattern).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// User-facing random-draw methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for `rand`'s `StdRng`; this
    /// workspace only relies on determinism-under-seed, not on ChaCha
    /// output compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (cannot occur from splitmix64 with
            // overwhelming probability, but keep the guarantee absolute).
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`] (the real crate's small generator; identical
    /// here).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn uniform_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
