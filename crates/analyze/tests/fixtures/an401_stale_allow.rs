//@ rel: crates/campaign/src/runner.rs
//@ expect: AN401 4:1
fn tick() -> u64 {
    // an:allow(AN001): stale -- nothing here reads the clock.
    41 + 1
}
