//! The strongest correctness property of the whole pipeline: the KKT
//! rewrite of a random inner LP, solved as a feasibility problem by
//! branch-and-bound, recovers exactly the optimum that the simplex finds
//! on the LP directly (§3.1's "any feasible solution is also optimal").

use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus};
use metaopt_milp::{solve, FactorBackend, MilpConfig, MilpStatus};
use metaopt_model::{kkt, InnerProblem, LinExpr, Model, ObjSense, Sense};
use proptest::prelude::*;

/// A random feasible, bounded inner maximization:
///   max c·x  s.t. A x <= b (rows anchored at a feasible point), 0 <= x <= u.
#[derive(Debug, Clone)]
struct RandomInnerLp {
    n: usize,
    c: Vec<f64>,
    u: Vec<f64>,
    rows: Vec<(Vec<Option<f64>>, f64)>,
}

fn strategy() -> impl Strategy<Value = RandomInnerLp> {
    (2usize..5, 1usize..5).prop_flat_map(|(n, m)| {
        let c = proptest::collection::vec(0.0f64..3.0, n);
        let u = proptest::collection::vec(0.5f64..6.0, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(proptest::option::weighted(0.7, 0.1f64..2.0), n),
                0.5f64..8.0,
            ),
            m,
        );
        (Just(n), c, u, rows).prop_map(|(n, c, u, rows)| RandomInnerLp { n, c, u, rows })
    })
}

fn lp_optimum(r: &RandomInnerLp) -> f64 {
    let mut p = LpProblem::new();
    let xs: Vec<_> = (0..r.n)
        .map(|j| p.add_var(0.0, r.u[j], -r.c[j]).unwrap())
        .collect();
    for (coeffs, rhs) in &r.rows {
        let entries: Vec<_> = coeffs
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|v| (xs[j], v)))
            .collect();
        if !entries.is_empty() {
            p.add_row(RowSense::Le, *rhs, entries).unwrap();
        }
    }
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    -sol.objective
}

fn kkt_solution_value(r: &RandomInnerLp, backend: FactorBackend) -> f64 {
    let mut model = Model::new();
    let mut inner = InnerProblem::new("rand");
    let xs: Vec<_> = (0..r.n)
        .map(|j| inner.add_var(&mut model, format!("x{j}"), 0.0, f64::INFINITY).unwrap())
        .collect();
    // Upper bounds as explicit rows (exercising the boxed path too).
    for (j, &uj) in r.u.iter().enumerate() {
        inner
            .constrain(LinExpr::from(xs[j]) - uj, Sense::Le)
            .unwrap();
    }
    for (coeffs, rhs) in &r.rows {
        let mut e = LinExpr::constant(-rhs);
        let mut any = false;
        for (j, c) in coeffs.iter().enumerate() {
            if let Some(v) = c {
                e.add_term(xs[j], *v);
                any = true;
            }
        }
        if any {
            inner.constrain(e, Sense::Le).unwrap();
        }
    }
    let mut obj = LinExpr::zero();
    for (j, &cj) in r.c.iter().enumerate() {
        obj.add_term(xs[j], cj);
    }
    inner.set_objective(ObjSense::Max, obj.clone());
    kkt::append_kkt(&mut model, &inner, f64::INFINITY).unwrap();
    // Pure feasibility solve: any point satisfying KKT is optimal.
    let cfg = MilpConfig {
        factor: backend,
        ..MilpConfig::default()
    };
    let sol = solve(&model, &cfg).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal, "KKT system must be feasible");
    obj.eval(&sol.values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any KKT-feasible point attains the LP optimum exactly — under
    /// either basis-factorization backend.
    #[test]
    fn kkt_feasibility_equals_lp_optimum(r in strategy()) {
        let direct = lp_optimum(&r);
        for backend in [FactorBackend::Dense, FactorBackend::SparseLU] {
            let via_kkt = kkt_solution_value(&r, backend);
            prop_assert!(
                (direct - via_kkt).abs() <= 1e-5 * (1.0 + direct.abs()),
                "simplex {direct} vs KKT/B&B ({backend}) {via_kkt}"
            );
        }
    }
}
