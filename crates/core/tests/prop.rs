//! Property tests for the adversarial finder on randomized small
//! instances: certification always holds, quantization never *beats* the
//! continuous optimum, and constrained optima never exceed unconstrained
//! ones.

use metaopt_core::{
    find_adversarial_gap, ConstrainedSet, Distance, FinderConfig, HeuristicSpec,
};
use metaopt_milp::MilpStatus;
use metaopt_te::TeInstance;
use metaopt_topology::synth::random_connected;
use proptest::prelude::*;

fn small_instance(seed: u64) -> TeInstance {
    // 4–6 nodes, a couple of chords, capacity 40.
    let n = 4 + (seed % 3) as usize;
    let topo = random_connected(n, 2, 40.0, seed.max(1));
    TeInstance::all_pairs(topo, 2).expect("random_connected graphs are connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The finder's certificate holds on arbitrary small topologies, and
    /// tightening the input space (goalpost around the found optimum with
    /// zero radius) reproduces exactly the same gap.
    #[test]
    fn certification_and_goalpost_consistency(seed in 1u64..500) {
        let inst = small_instance(seed);
        let spec = HeuristicSpec::DemandPinning { threshold: 8.0 };
        let free = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(8.0),
        ).unwrap();
        prop_assert!(free.certification_error() < 1e-5, "{free}");
        prop_assert!(free.verified_gap >= -1e-7);

        // Re-search pinned exactly to the found optimum: same gap.
        let pinned = ConstrainedSet::unconstrained()
            .near(&free.demands, Distance::Absolute(0.0));
        let again = find_adversarial_gap(&inst, &spec, &pinned, &FinderConfig::budgeted(10.0))
            .unwrap();
        prop_assert!(
            (again.verified_gap - free.verified_gap).abs() <= 1e-4 * (1.0 + free.verified_gap.abs()),
            "pinned {} vs free {}", again.verified_gap, free.verified_gap
        );
    }

    /// A quantized search can never exceed the continuous optimum when the
    /// continuous search proved optimality.
    #[test]
    fn quantized_never_beats_proven_continuous(seed in 1u64..500) {
        let inst = small_instance(seed);
        let spec = HeuristicSpec::DemandPinning { threshold: 8.0 };
        let cont = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
        ).unwrap();
        if cont.status != MilpStatus::Optimal {
            return Ok(()); // inconclusive continuous run: nothing to compare
        }
        let quant = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained().quantized(vec![0.0, 8.0, 40.0]),
            &FinderConfig::budgeted(10.0),
        ).unwrap();
        prop_assert!(
            quant.verified_gap <= cont.verified_gap + 1e-5,
            "quantized {} beats proven continuous {}",
            quant.verified_gap,
            cont.verified_gap
        );
    }
}
