//! Golden-file suite for the ANxxx source lints.
//!
//! Every fixture under `tests/fixtures/` is a small Rust source headed by
//! directives:
//!
//! ```text
//! //@ rel: crates/server/src/server.rs     (pretend workspace path)
//! //@ expect: AN203 4:18                   (code line:col, zero or more)
//! ```
//!
//! The analyzer must emit *exactly* the expected diagnostics on the
//! fixture — same codes, same 1-based line/column spans, nothing extra,
//! nothing missing. Fixtures with no `expect` directives pin down the
//! scoping and idiom exemptions (clock module, lp float-eq carve-out,
//! lock-poison unwrap, interprocedural catch_unwind containment, a
//! justified `an:allow`), which are as load-bearing as the positives: a
//! lint that fires where it shouldn't gets suppressed into uselessness.

use metaopt_analyze::lints;
use metaopt_analyze::scan::SourceFile;
use std::path::Path;

struct Fixture {
    name: String,
    rel: String,
    /// `(code, line, col)` triples, sorted.
    expected: Vec<(String, usize, usize)>,
    text: String,
}

fn parse_fixture(name: &str, text: &str) -> Fixture {
    let mut rel = None;
    let mut expected = Vec::new();
    for line in text.lines() {
        if let Some(r) = line.strip_prefix("//@ rel:") {
            rel = Some(r.trim().to_string());
        } else if let Some(e) = line.strip_prefix("//@ expect:") {
            let mut parts = e.split_whitespace();
            let code = parts
                .next()
                .unwrap_or_else(|| panic!("{name}: empty expect directive"))
                .to_string();
            let span = parts
                .next()
                .unwrap_or_else(|| panic!("{name}: expect `{code}` missing line:col"));
            let (l, c) = span
                .split_once(':')
                .unwrap_or_else(|| panic!("{name}: expect span `{span}` is not line:col"));
            expected.push((
                code,
                l.parse().unwrap_or_else(|_| panic!("{name}: bad line `{l}`")),
                c.parse().unwrap_or_else(|_| panic!("{name}: bad col `{c}`")),
            ));
        }
    }
    expected.sort();
    Fixture {
        name: name.to_string(),
        rel: rel.unwrap_or_else(|| panic!("{name}: missing `//@ rel:` directive")),
        expected,
        text: text.to_string(),
    }
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            let text = std::fs::read_to_string(&p).expect("readable fixture");
            parse_fixture(&name, &text)
        })
        .collect()
}

#[test]
fn fixtures_match_golden_diagnostics() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 12,
        "golden suite shrank to {} fixtures; keep at least 12",
        fixtures.len()
    );
    for fx in &fixtures {
        let file = SourceFile::parse(&fx.rel, &fx.text);
        let report = lints::run(std::slice::from_ref(&file));
        let mut actual: Vec<(String, usize, usize)> = report
            .diagnostics()
            .iter()
            .map(|d| (d.code.to_string(), d.span.line, d.span.col))
            .collect();
        actual.sort();
        for d in report.diagnostics() {
            assert_eq!(
                d.span.file, fx.rel,
                "{}: diagnostic span names the wrong file",
                fx.name
            );
        }
        assert_eq!(
            actual,
            fx.expected,
            "{}: diagnostics diverged from golden expectations;\nactual:\n{}",
            fx.name,
            report
                .diagnostics()
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn golden_suite_covers_every_suppressable_lint() {
    // Each per-file code must appear in at least one fixture expectation,
    // so no lint family can silently lose its golden coverage. (AN103 is
    // cross-file in production but reproducible single-file; the AN3xx
    // vocabulary contracts are workspace-level and tested in `vocab`.)
    let fixtures = load_fixtures();
    for code in [
        "AN001", "AN002", "AN003", "AN101", "AN102", "AN103", "AN104", "AN105", "AN201", "AN202",
        "AN203", "AN401", "AN402",
    ] {
        assert!(
            fixtures
                .iter()
                .any(|f| f.expected.iter().any(|(c, _, _)| c == code)),
            "no fixture expects {code}; add one"
        );
    }
}
