//! Binary-sweep feasibility driver (§3.3 of the paper).
//!
//! For solvers that expose no incremental progress (the paper's Z3 path),
//! the method "iteratively asks for any input with a gap that is at least as
//! large as a specified value and binary-sweeps the value with a fixed
//! timeout". This module implements that strategy generically: the caller
//! supplies a predicate that tries to find a witness with value ≥ g (e.g. by
//! adding `gap >= g` to the model and running a budgeted feasibility solve).

use crate::MilpResult;

/// Result of a [`binary_sweep`].
#[derive(Debug, Clone)]
pub enum SweepOutcome<W> {
    /// The largest threshold for which a witness was found, the witness, and
    /// the number of probes spent.
    Found {
        /// Highest threshold with a witness.
        threshold: f64,
        /// The witness returned by the probe at `threshold`.
        witness: W,
        /// Number of probe invocations.
        probes: usize,
    },
    /// No threshold in `[lo, hi]` produced a witness.
    NotFound {
        /// Number of probe invocations.
        probes: usize,
    },
}

/// Binary-searches the largest `g ∈ [lo, hi]` for which `probe(g)` returns a
/// witness, to within absolute resolution `resolution`.
///
/// `probe` is typically "solve the feasibility problem `gap >= g` under a
/// fixed time budget"; a `None` result is treated as *no witness at this
/// threshold* (which, under a timeout, is a heuristic answer — the sweep is
/// a search strategy, not a proof, exactly as in the paper).
pub fn binary_sweep<W>(
    lo: f64,
    hi: f64,
    resolution: f64,
    mut probe: impl FnMut(f64) -> MilpResult<Option<W>>,
) -> MilpResult<SweepOutcome<W>> {
    assert!(lo <= hi && resolution > 0.0);
    let mut probes = 0usize;
    let mut best: Option<(f64, W)>;

    // Establish feasibility at the bottom of the range first.
    let mut lo_bound = lo;
    let mut hi_bound = hi;
    probes += 1;
    match probe(lo)? {
        Some(w) => best = Some((lo, w)),
        None => return Ok(SweepOutcome::NotFound { probes }),
    }

    while hi_bound - lo_bound > resolution {
        let mid = 0.5 * (lo_bound + hi_bound);
        probes += 1;
        match probe(mid)? {
            Some(w) => {
                best = Some((mid, w));
                lo_bound = mid;
            }
            None => {
                hi_bound = mid;
            }
        }
    }

    let (threshold, witness) = best.expect("seeded above");
    Ok(SweepOutcome::Found {
        threshold,
        witness,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_converges_to_boundary() {
        // Witness exists iff g <= 7.3.
        let out = binary_sweep(0.0, 10.0, 1e-3, |g| {
            Ok(if g <= 7.3 { Some(g) } else { None })
        })
        .unwrap();
        match out {
            SweepOutcome::Found { threshold, .. } => {
                assert!((threshold - 7.3).abs() < 1e-2, "threshold {threshold}");
            }
            SweepOutcome::NotFound { .. } => panic!("should find"),
        }
    }

    #[test]
    fn sweep_reports_not_found() {
        let out = binary_sweep(1.0, 2.0, 1e-3, |_g| Ok(None::<f64>)).unwrap();
        assert!(matches!(out, SweepOutcome::NotFound { probes: 1 }));
    }

    #[test]
    fn sweep_handles_everywhere_feasible() {
        let out = binary_sweep(0.0, 4.0, 1e-3, |g| Ok(Some(g))).unwrap();
        match out {
            SweepOutcome::Found { threshold, .. } => {
                assert!((threshold - 4.0).abs() < 1e-2);
            }
            _ => panic!(),
        }
    }
}
