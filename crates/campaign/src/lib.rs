#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-campaign
//!
//! Crash-safe campaign runner for long adversarial-gap studies: a grid of
//! cells (instance × heuristic × sweep range × budget) executed on a
//! supervised pool of panic-contained workers, with every state
//! transition — including the in-flight branch-and-bound frontier of each
//! cell's sweep — appended to a checksummed write-ahead journal.
//!
//! The design goal is a precise recovery contract:
//!
//! * **`kill -9` loses at most one tick.** Cells always execute in fixed
//!   node-budget slices with a checkpoint journaled at every boundary, so
//!   a resumed campaign re-executes only the interrupted tick — and,
//!   because slices are node-based (never wall-clock) and floats are
//!   journaled as exact bit patterns, it produces the *same* certified
//!   `(cell, verified_gap)` results as an uninterrupted run.
//! * **Completed work never repeats.** `done` cells replay as terminal;
//!   resume schedules only pending cells, from their last checkpoint.
//! * **Failures are bounded.** Worker panics are contained, failures retry
//!   with exponential backoff and deterministic jitter
//!   ([`metaopt_resilience::RetryPolicy`]), and cells that keep failing
//!   are quarantined with their full fault history instead of wedging the
//!   run.
//!
//! See `DESIGN.md` §11 for the journal format and resume semantics.

pub mod cell;
pub mod clock;
pub mod jobs;
pub mod journal;
pub mod metrics;
pub mod runner;
pub mod sandbox;
pub mod state;
pub mod wire;

pub use cell::{
    decode_sweep_state, encode_sweep_state, CellHeuristic, CellOutcome, CellSpec, TopologySpec,
};
pub use clock::{Clock, SystemClock, TestClock};
pub use jobs::{JobBook, JobEntry, JobRecord, JobStatus, JOBS_MAGIC};
pub use journal::{
    decode_line, encode_line, parse_journal_bytes, read_journal, FaultyDisk, IoFaultKind,
    IoFaultPlan, IoFaultSite, Journal, JournalContents, JournalDisk, JournalFile, RealDisk,
    JOURNAL_FILE,
};
pub use metrics::CampaignMetrics;
pub use runner::{
    drive_cell, quarantine_reason_for, resume, retry_jitter_seed, run, status, CampaignConfig,
    CampaignReport, CellDriveEnd, RunEnd, ShutdownFlag, SolverObs, MANIFEST_FILE,
};
pub use sandbox::{
    run_cell_sandboxed, worker_main, SandboxConfig, SandboxEnd, SandboxLimits,
};
pub use state::{CampaignState, CellStatus, FailureRecord, CAMPAIGN_MAGIC};

use metaopt_core::CoreError;

/// Errors raised by the campaign layer.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem / journal I/O failed.
    Io(String),
    /// The disk is full (ENOSPC): nothing can be made durable, but
    /// existing durable state is intact. Classified apart from
    /// [`CampaignError::Io`] so a supervisor can degrade to a read-only
    /// draining mode instead of treating the failure as unexplained.
    DiskFull(String),
    /// The journal (or a record inside it) failed verification. Resuming
    /// from corrupt state would be unsound, so this is always fatal.
    Corrupt(String),
    /// The underlying gap-finding machinery failed.
    Core(CoreError),
    /// Invalid campaign configuration.
    Config(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(s) => write!(f, "campaign io error: {s}"),
            CampaignError::DiskFull(s) => write!(f, "disk full: {s}"),
            CampaignError::Corrupt(s) => write!(f, "corrupt journal: {s}"),
            CampaignError::Core(e) => write!(f, "campaign core error: {e}"),
            CampaignError::Config(s) => write!(f, "campaign config error: {s}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CoreError> for CampaignError {
    fn from(e: CoreError) -> Self {
        CampaignError::Core(e)
    }
}

impl From<String> for CampaignError {
    fn from(s: String) -> Self {
        CampaignError::Corrupt(s)
    }
}
