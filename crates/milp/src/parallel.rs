//! Parallel branch-and-bound engines.
//!
//! Two engines share the serial search's node semantics (bounds, pruning,
//! branching rules, degraded handling, callback containment):
//!
//! * **Deterministic** (`ParallelMode::Deterministic`) — a wave-synchronous
//!   coordinator/worker design. The coordinator repeatedly pops the
//!   [`DET_WAVE`] canonically-smallest open nodes, farms their relaxation
//!   LPs out to a worker pool, and then *certifies* the results strictly in
//!   canonical node order: pruning, node counting, incumbent publication,
//!   and branching all happen sequentially on the coordinator. Three design
//!   rules make the whole trajectory a pure function of the problem,
//!   independent of the thread count:
//!
//!   1. the wave width is a *constant*, never "how many threads are free";
//!   2. every node LP is solved from its parent's [`Basis`] snapshot (or
//!      cold when it has none), so the result does not depend on which
//!      worker's simplex performs it;
//!   3. node order is the content-based [`canon_cmp`] — no sequence
//!      numbers, so a frontier reloaded from a checkpoint orders exactly
//!      like the live one.
//!
//!   Budget stops land on wave boundaries and *checkpoint* trajectory
//!   timestamps count nodes instead of seconds, so `Checkpoint`s, §3.3
//!   stall accounting, `resilience::Budget` node allowances, and campaign
//!   resume keep their bit-for-bit replay guarantees at any thread count.
//!   The node-axis trajectory stays internal to the checkpoint: the
//!   reported [`MilpSolution::trajectory`] is a separately-recorded
//!   wall-clock one, in seconds like every other engine's. (Wall-clock
//!   rules — deadlines and stall windows — remain real time; they choose
//!   *which* wave boundary the search pauses at, and replay from that
//!   checkpoint is again exact.)
//!
//! * **Work-stealing** (`ParallelMode::WorkStealing`) — the throughput
//!   engine: a mutex-protected best-bound frontier with per-worker local
//!   stacks for dive phases, an atomically shared incumbent objective for
//!   cooperative pruning (workers drop nodes whose bound falls above it),
//!   first-improver incumbent publication under a single lock, and a
//!   condvar-based idle count for termination detection. Results are
//!   certified-correct but the visit order (hence node counts, trajectory,
//!   checkpoint) is timing-dependent.
//!
//! The incumbent callback is `&mut dyn` without `Send`, so both engines
//! invoke it exclusively on the calling thread: the deterministic
//! coordinator calls it inline during certification; the work-stealing
//! workers ship relaxation points over a channel to the calling thread,
//! which services them between its wall-clock stop checks.

use crate::solver::{
    canon_cmp, most_fractional_binary, most_violated_compl, propose_contained, to_min_space,
    Checkpoint, FrontierNode, IncumbentCallback, LpSolveStats, MilpConfig, MilpSolution,
    MilpStatus, TrajAxis, MAX_CALLBACK_PANICS,
};
use crate::{MilpError, MilpResult};
use metaopt_lp::{Basis, LpError, Simplex, SolveStatus, VarId};
use metaopt_model::CompiledModel;
use metaopt_resilience::{Budget, FaultPlan, FaultSite, NodeMeter, SolverFault};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtOrd};
use std::sync::atomic::AtomicUsize;
use std::sync::{mpsc, Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which tree-search engine a solve runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Pick automatically: the serial engine at one resolved thread (or
    /// whenever a fault-injection plan is installed — injection schedules
    /// are defined in terms of the serial visit order), the deterministic
    /// parallel engine above one.
    #[default]
    Auto,
    /// The original single-threaded best-bound/diving search.
    Serial,
    /// Wave-synchronous parallel search whose certified results, node
    /// counts, and checkpoints are bit-identical at any thread count.
    Deterministic,
    /// Throughput-oriented work-stealing search; certified-correct but
    /// with a timing-dependent visit order.
    WorkStealing,
}

/// A resolved engine choice: mode plus worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Engine {
    Serial,
    Deterministic(usize),
    WorkStealing(usize),
}

/// Thread count requested through the environment (`METAOPT_THREADS`),
/// defaulting to 1. Zero or unparsable values fall back to 1.
pub fn env_threads() -> usize {
    std::env::var("METAOPT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl MilpConfig {
    /// The worker-thread count this configuration resolves to:
    /// [`MilpConfig::threads`] when nonzero, else `METAOPT_THREADS`, else 1.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            env_threads()
        }
    }

    pub(crate) fn resolved_engine(&self) -> Engine {
        let t = self.resolved_threads().max(1);
        match self.parallel {
            ParallelMode::Serial => Engine::Serial,
            ParallelMode::Deterministic => Engine::Deterministic(t),
            ParallelMode::WorkStealing => Engine::WorkStealing(t),
            ParallelMode::Auto => {
                if t <= 1 || self.fault_plan.is_some() {
                    Engine::Serial
                } else {
                    Engine::Deterministic(t)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic wave-synchronous engine
// ---------------------------------------------------------------------

/// Nodes speculatively solved per wave. A *constant* (never derived from
/// the thread count): the wave partition — and with it the entire
/// exploration order — must be identical whether 1 or 64 threads execute
/// the LP solves.
const DET_WAVE: usize = 8;

/// An open node of the deterministic engine. `basis` is the parent's
/// optimal basis (shared, never mutated), making the node's LP solve a
/// pure function of the node itself.
struct DetNode {
    changes: Vec<(VarId, f64, f64)>,
    bound: f64,
    depth: usize,
    basis: Option<Arc<Basis>>,
}

impl DetNode {
    fn key(&self) -> (&[(VarId, f64, f64)], f64, usize) {
        (&self.changes, self.bound, self.depth)
    }
}

/// Heap wrapper: the canonically-smallest node pops first.
struct ByCanon(DetNode);

impl PartialEq for ByCanon {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ByCanon {}
impl PartialOrd for ByCanon {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByCanon {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, canonical minimum on top.
        canon_cmp(other.0.key(), self.0.key())
    }
}

/// One dispatched node-LP job.
struct Job {
    slot: usize,
    changes: Vec<(VarId, f64, f64)>,
    basis: Option<Arc<Basis>>,
}

/// Outcome of one node's relaxation LP, computed on a worker.
enum Eval {
    Solved {
        status: SolveStatus,
        x: Vec<f64>,
        objective: f64,
        degraded: bool,
        warm: bool,
        iterations: usize,
        basis: Option<Arc<Basis>>,
    },
    /// The wall-clock deadline interrupted the solve; the node stays open.
    Deadline,
    /// The LP exhausted its recovery ladder (or pivot budget): prune
    /// conservatively, optionally carrying the structured fault.
    Pruned(Option<SolverFault>),
    /// Irrecoverable LP failure — aborts the whole search.
    Fatal(LpError),
    /// The worker caught a panic while solving (should never happen; kept
    /// as a containment backstop so a worker bug cannot hang the search).
    Panicked(String),
}

/// Solves one node's relaxation on `simplex`: restores root bounds for
/// stale vars, applies the node's bound set, then solves from the parent
/// basis when one is attached (cold otherwise — never from the worker's
/// happenstance previous basis, which would break determinism).
fn eval_node(
    simplex: &mut Simplex,
    applied: &mut Vec<usize>,
    root_bounds: &[(f64, f64)],
    changes: &[(VarId, f64, f64)],
    basis: Option<&Basis>,
    deterministic: bool,
) -> Eval {
    for &j in applied.iter() {
        let (lo, hi) = root_bounds[j];
        if let Err(e) = simplex.set_var_bounds(VarId(j), lo, hi) {
            return Eval::Fatal(e);
        }
    }
    applied.clear();
    for &(v, lo, hi) in changes {
        if let Err(e) = simplex.set_var_bounds(v, lo, hi) {
            return Eval::Fatal(e);
        }
        applied.push(v.0);
    }
    let before = simplex.iterations();
    let res = match basis {
        Some(b) => simplex.resolve_from(b),
        // Deterministic mode must not warm-start from whatever basis this
        // worker happens to hold; the work-stealing mode wants exactly
        // that for dive children (the worker's basis *is* the parent's).
        None if deterministic => simplex.solve(),
        None => simplex.resolve(),
    };
    match res {
        Ok(sol) => Eval::Solved {
            basis: if sol.status == SolveStatus::Optimal {
                simplex.snapshot_basis().map(Arc::new)
            } else {
                None
            },
            status: sol.status,
            objective: sol.objective,
            degraded: sol.degraded,
            warm: simplex.last_solve_warm(),
            iterations: simplex.iterations() - before,
            x: sol.x,
        },
        Err(LpError::Fault(SolverFault::DeadlineExceeded)) => Eval::Deadline,
        Err(e) if e.is_recoverable() || matches!(e, LpError::IterationLimit) => {
            Eval::Pruned(e.fault().cloned())
        }
        Err(e) => Eval::Fatal(e),
    }
}

fn worker_simplex(
    cm: &CompiledModel,
    budget: &Budget,
    plan: Option<FaultPlan>,
    metrics: crate::metrics::MilpMetrics,
    backend: metaopt_lp::FactorBackend,
) -> Simplex {
    let mut s = Simplex::with_config(
        &cm.lp,
        metaopt_lp::SimplexConfig {
            backend,
            ..Default::default()
        },
    );
    s.set_deadline(budget.deadline());
    s.set_fault_plan(plan);
    s.set_metrics(metrics.lp);
    s
}

struct Det<'a> {
    cm: &'a CompiledModel,
    cfg: &'a MilpConfig,
    callback: &'a mut dyn IncumbentCallback,
    frontier: BinaryHeap<ByCanon>,
    incumbent: Option<(Vec<f64>, f64)>,
    nodes: usize,
    numerical_prunes: usize,
    degraded_nodes: usize,
    /// Node-axis incumbent trajectory — the deterministic replay clock,
    /// stored in checkpoints (bit-identical at any thread count).
    trajectory: Vec<(f64, f64)>,
    /// Wall-clock incumbent trajectory of *this run*, in seconds — what
    /// [`MilpSolution::trajectory`] reports, like every other engine.
    wall_trajectory: Vec<(f64, f64)>,
    last_improvement: Instant,
    last_stall_value: f64,
    stopped_early: bool,
    proven_bound: f64,
    budget: Budget,
    fault_plan: Option<FaultPlan>,
    faults: Vec<SolverFault>,
    callback_panics: usize,
    resumed: bool,
    lp_stats: LpSolveStats,
    start: Instant,
}

/// Entry point for the deterministic engine (dispatched from
/// `solve_resumable`).
pub(crate) fn solve_deterministic(
    cm: &CompiledModel,
    cfg: &MilpConfig,
    callback: &mut dyn IncumbentCallback,
    resume: Option<Checkpoint>,
    threads: usize,
    start: Instant,
) -> MilpResult<(MilpSolution, Option<Checkpoint>)> {
    let budget = cfg.effective_budget();
    let root_bounds: Vec<(f64, f64)> = (0..cm.lp.n_vars()).map(|j| cm.lp.bounds(VarId(j))).collect();
    let mut det = Det {
        cm,
        cfg,
        callback,
        frontier: BinaryHeap::new(),
        incumbent: None,
        nodes: 0,
        numerical_prunes: 0,
        degraded_nodes: 0,
        trajectory: Vec::new(),
        wall_trajectory: Vec::new(),
        // an:allow(AN001): the §3.3 stall rule measures real elapsed time
        // between incumbent improvements; determinism is preserved because
        // stall stops are always recorded as `stopped_early`.
        last_improvement: Instant::now(),
        last_stall_value: f64::INFINITY,
        stopped_early: false,
        proven_bound: f64::NEG_INFINITY,
        budget,
        fault_plan: cfg.fault_plan.clone(),
        faults: Vec::new(),
        callback_panics: 0,
        resumed: false,
        lp_stats: LpSolveStats::default(),
        start,
    };
    if let Some(cp) = resume {
        det.resumed = true;
        det.incumbent = cp.incumbent;
        det.nodes = cp.nodes;
        det.numerical_prunes = cp.numerical_prunes;
        det.degraded_nodes = cp.degraded_nodes;
        // Seed whichever trajectory matches the checkpoint's axis: the
        // replay clock from a deterministic checkpoint, the reported
        // wall-clock history from a serial/work-stealing one. Never both —
        // the units must not mix in one vector.
        match cp.traj_axis {
            TrajAxis::Nodes => det.trajectory = cp.trajectory,
            TrajAxis::Seconds => det.wall_trajectory = cp.trajectory,
        }
        det.last_stall_value = cp.last_stall_value;
        det.faults = cp.faults;
        for (changes, bound, depth) in cp.frontier {
            det.frontier.push(ByCanon(DetNode {
                changes,
                bound,
                depth,
                basis: None,
            }));
        }
    }
    let outcome = if threads <= 1 {
        let mut simplex = worker_simplex(
            cm,
            &budget,
            cfg.fault_plan.clone(),
            cfg.metrics.clone(),
            cfg.factor,
        );
        let mut applied: Vec<usize> = Vec::new();
        det.run(&mut |wave: &[DetNode]| {
            Ok(wave
                .iter()
                .map(|n| {
                    eval_node(
                        &mut simplex,
                        &mut applied,
                        &root_bounds,
                        &n.changes,
                        n.basis.as_deref(),
                        true,
                    )
                })
                .collect())
        })
    } else {
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, Eval)>();
            let job_txs: Vec<mpsc::Sender<Job>> = (0..threads)
                .map(|_| {
                    let (tx, rx) = mpsc::channel::<Job>();
                    let res_tx = res_tx.clone();
                    let rb = &root_bounds;
                    let plan = cfg.fault_plan.clone();
                    let metrics = cfg.metrics.clone();
                    let backend = cfg.factor;
                    scope.spawn(move || {
                        let mut simplex = worker_simplex(cm, &budget, plan, metrics, backend);
                        let mut applied: Vec<usize> = Vec::new();
                        while let Ok(Job {
                            slot,
                            changes,
                            basis,
                        }) = rx.recv()
                        {
                            let out = catch_unwind(AssertUnwindSafe(|| {
                                eval_node(
                                    &mut simplex,
                                    &mut applied,
                                    rb,
                                    &changes,
                                    basis.as_deref(),
                                    true,
                                )
                            }))
                            .unwrap_or_else(|_| Eval::Panicked("LP worker panicked".into()));
                            if res_tx.send((slot, out)).is_err() {
                                break;
                            }
                        }
                    });
                    tx
                })
                .collect();
            let r = det.run(&mut |wave: &[DetNode]| {
                for (slot, n) in wave.iter().enumerate() {
                    job_txs[slot % threads]
                        .send(Job {
                            slot,
                            changes: n.changes.clone(),
                            basis: n.basis.clone(),
                        })
                        .map_err(|_| MilpError::Model("parallel LP worker unavailable".into()))?;
                }
                let mut evals: Vec<Option<Eval>> = wave.iter().map(|_| None).collect();
                for _ in 0..wave.len() {
                    let (slot, out) = res_rx
                        .recv()
                        .map_err(|_| MilpError::Model("parallel LP worker disappeared".into()))?;
                    evals[slot] = Some(out);
                }
                Ok(evals
                    .into_iter()
                    .map(|e| e.unwrap_or_else(|| Eval::Panicked("missing worker result".into())))
                    .collect())
            });
            drop(job_txs);
            r
        })
    };
    outcome?;
    Ok(det.finish(start))
}

impl<'a> Det<'a> {
    fn fire_fault(&self, site: FaultSite) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.fire(site))
    }

    fn incumbent_obj(&self) -> f64 {
        self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o)
    }

    fn open_bound(&self) -> f64 {
        let mut b = f64::INFINITY;
        if let Some(top) = self.frontier.peek() {
            b = b.min(top.0.bound);
        }
        b.min(self.incumbent_obj())
    }

    /// Mirrors the serial `record_incumbent`, recording each improvement
    /// twice: on the node axis (the deterministic replay clock, kept for
    /// checkpoints) and on the wall clock (what the solution reports).
    fn record_incumbent(&mut self, values: Vec<f64>, min_obj: f64) {
        if min_obj < self.incumbent_obj() - 1e-12 {
            let improvement = if self.last_stall_value.is_finite() {
                (self.last_stall_value - min_obj).abs() / self.last_stall_value.abs().max(1.0)
            } else {
                f64::INFINITY
            };
            if improvement >= self.cfg.stall_improvement {
                // an:allow(AN001): stall-rule wall clock, as at the engine
                // start above.
                self.last_improvement = Instant::now();
                self.last_stall_value = min_obj;
            }
            self.incumbent = Some((values, min_obj));
            let obj = self.cm.restore_objective(min_obj);
            self.trajectory.push((self.nodes as f64, obj));
            self.wall_trajectory
                .push((self.start.elapsed().as_secs_f64(), obj));
            self.cfg.metrics.incumbents.inc();
            self.cfg.tracer.event(
                "milp.incumbent",
                vec![
                    ("engine", "deterministic".to_string()),
                    ("objective", format!("{obj}")),
                    ("nodes", self.nodes.to_string()),
                ],
            );
        }
    }

    fn propose(&mut self, relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        if self.cfg.callback_every == 0 || self.callback_panics >= MAX_CALLBACK_PANICS {
            return None;
        }
        let inject = self.fire_fault(FaultSite::CallbackPanic);
        match propose_contained(self.callback, relaxation, inject) {
            Ok(p) => p,
            Err(fault) => {
                self.callback_panics += 1;
                self.faults.push(fault);
                None
            }
        }
    }

    /// Stop rules, checked *between* waves only, so interruptions always
    /// land on a wave boundary (the property that makes node-budget
    /// checkpoints resume bit-exactly). Returns true to halt.
    fn pre_wave_stop(&mut self) -> bool {
        if self.budget.expired() {
            self.stopped_early = true;
            return true;
        }
        let stall_injected = self.fire_fault(FaultSite::StallNow);
        if stall_injected
            || self
                .cfg
                .stall_window
                .is_some_and(|w| self.incumbent.is_some() && self.last_improvement.elapsed() >= w)
        {
            if stall_injected {
                self.faults.push(SolverFault::StallDetected);
            }
            self.stopped_early = true;
            return true;
        }
        if self.nodes >= self.budget.max_nodes().unwrap_or(usize::MAX) {
            self.stopped_early = true;
            return true;
        }
        if let Some(target) = self.cfg.target_objective {
            let target_min = self.cm.restore_objective(target);
            if self.incumbent_obj() <= target_min + crate::CERT_TOL {
                self.stopped_early = true;
                return true;
            }
        }
        if let Some((_, inc)) = &self.incumbent {
            let bound = self.open_bound();
            let gap = (inc - bound) / inc.abs().max(1.0);
            if gap <= self.cfg.rel_gap {
                self.proven_bound = bound;
                return true;
            }
        }
        false
    }

    fn run(
        &mut self,
        eval_wave: &mut dyn FnMut(&[DetNode]) -> MilpResult<Vec<Eval>>,
    ) -> MilpResult<()> {
        // Seed the incumbent before the root relaxation, exactly like the
        // serial engine.
        let origin = vec![0.0; self.cm.var_map.len()];
        if let Some((vals, model_obj)) = self.propose(&origin) {
            let min_obj = to_min_space(self.cm, model_obj);
            self.record_incumbent(vals, min_obj);
        }
        if !self.resumed {
            self.frontier.push(ByCanon(DetNode {
                changes: Vec::new(),
                bound: f64::NEG_INFINITY,
                depth: 0,
                basis: None,
            }));
        }
        loop {
            if self.pre_wave_stop() {
                return Ok(());
            }
            // Assemble the wave: the DET_WAVE canonically-best open nodes
            // that survive the incumbent prune.
            let mut wave: Vec<DetNode> = Vec::with_capacity(DET_WAVE);
            while wave.len() < DET_WAVE {
                match self.frontier.pop() {
                    Some(ByCanon(n)) => {
                        if n.bound < self.incumbent_obj() - 1e-9 {
                            wave.push(n);
                        }
                    }
                    None => break,
                }
            }
            if wave.is_empty() {
                // Tree exhausted: the incumbent (if any) is optimal.
                self.proven_bound = self.incumbent_obj();
                return Ok(());
            }
            self.cfg.metrics.waves.inc();
            let mut evals = eval_wave(&wave)?;
            // Certify strictly in canonical (wave) order.
            let mut push_back = false;
            for (node, slot) in wave.into_iter().zip(0..) {
                let eval = std::mem::replace(&mut evals[slot], Eval::Deadline);
                if push_back {
                    self.frontier.push(ByCanon(node));
                    continue;
                }
                self.certify(node, eval, &mut push_back)?;
            }
            if push_back {
                // A deadline interrupted the wave mid-flight; stop with
                // the untouched remainder back on the frontier.
                return Ok(());
            }
        }
    }

    /// Certifies one solved node: the serial `process` logic, minus the LP
    /// solve (already done on a worker) and with children inheriting the
    /// node's optimal basis for their own warm starts.
    fn certify(&mut self, node: DetNode, eval: Eval, push_back: &mut bool) -> MilpResult<()> {
        // Certification-time prune re-check: an incumbent certified
        // earlier in this wave may have overtaken this node's bound.
        if node.bound >= self.incumbent_obj() - 1e-9 {
            return Ok(());
        }
        match eval {
            Eval::Deadline => {
                self.faults.push(SolverFault::DeadlineExceeded);
                self.stopped_early = true;
                self.frontier.push(ByCanon(node));
                *push_back = true;
                Ok(())
            }
            Eval::Pruned(fault) => {
                self.nodes += 1;
                self.cfg.metrics.nodes.inc();
                if let Some(f) = fault {
                    self.faults.push(f);
                }
                self.numerical_prunes += 1;
                Ok(())
            }
            Eval::Fatal(e) => Err(MilpError::Lp(e)),
            Eval::Panicked(msg) => Err(MilpError::Model(format!(
                "parallel LP worker panicked: {msg}"
            ))),
            Eval::Solved {
                status,
                x,
                objective,
                degraded,
                warm,
                iterations,
                basis,
            } => {
                self.nodes += 1;
                self.cfg.metrics.nodes.inc();
                self.lp_stats.record(warm, iterations);
                match status {
                    SolveStatus::Infeasible => return Ok(()),
                    SolveStatus::Unbounded => {
                        self.proven_bound = f64::NEG_INFINITY;
                        return Err(MilpError::Model(
                            "relaxation is unbounded; bound the outer variables".into(),
                        ));
                    }
                    SolveStatus::Optimal => {}
                }
                let obj = if degraded {
                    self.degraded_nodes += 1;
                    node.bound
                } else {
                    objective
                };
                if !degraded && obj >= self.incumbent_obj() - 1e-9 {
                    return Ok(()); // pruned by bound
                }
                if self.cfg.callback_every > 0
                    && (self.nodes - 1).is_multiple_of(self.cfg.callback_every)
                {
                    let relax_vals = self.cm.extract_values(&x);
                    if let Some((vals, model_obj)) = self.propose(&relax_vals) {
                        let min_obj = to_min_space(self.cm, model_obj);
                        self.record_incumbent(vals, min_obj);
                    }
                }
                match (
                    most_fractional_binary(self.cm, self.cfg.int_tol, &x),
                    most_violated_compl(self.cm, self.cfg.compl_tol, &x),
                ) {
                    (None, None) => {
                        if degraded {
                            self.numerical_prunes += 1;
                        } else {
                            let vals = self.cm.extract_values(&x);
                            self.record_incumbent(vals, obj);
                        }
                    }
                    (Some((v, value, _frac)), _) => {
                        let rounded = value.round().clamp(0.0, 1.0);
                        self.push_children(node, v, rounded, 1.0 - rounded, obj, basis);
                    }
                    (None, Some((mult, slack, mval, sval))) => {
                        let (first, second) = if mval <= sval {
                            (mult, slack)
                        } else {
                            (slack, mult)
                        };
                        let mut a = node.changes.clone();
                        a.push((first, 0.0, 0.0));
                        let mut b = node.changes;
                        b.push((second, 0.0, 0.0));
                        let depth = node.depth + 1;
                        self.frontier.push(ByCanon(DetNode {
                            changes: a,
                            bound: obj,
                            depth,
                            basis: basis.clone(),
                        }));
                        self.frontier.push(ByCanon(DetNode {
                            changes: b,
                            bound: obj,
                            depth,
                            basis,
                        }));
                    }
                }
                Ok(())
            }
        }
    }

    fn push_children(
        &mut self,
        node: DetNode,
        v: VarId,
        first: f64,
        second: f64,
        obj: f64,
        basis: Option<Arc<Basis>>,
    ) {
        let mut a = node.changes.clone();
        a.push((v, first, first));
        let mut b = node.changes;
        b.push((v, second, second));
        let depth = node.depth + 1;
        self.frontier.push(ByCanon(DetNode {
            changes: a,
            bound: obj,
            depth,
            basis: basis.clone(),
        }));
        self.frontier.push(ByCanon(DetNode {
            changes: b,
            bound: obj,
            depth,
            basis,
        }));
    }

    fn finish(mut self, start: Instant) -> (MilpSolution, Option<Checkpoint>) {
        let bound_min = if self.stopped_early {
            self.open_bound()
        } else {
            self.proven_bound
        };
        let checkpoint = if self.stopped_early {
            let mut frontier: Vec<FrontierNode> = self
                .frontier
                .drain()
                .map(|ByCanon(n)| (n.changes, n.bound, n.depth))
                .collect();
            // Canonical serialization order: identical frontiers produce
            // identical `to_text` bytes at every thread count.
            frontier.sort_by(|a, b| canon_cmp((&a.0, a.1, a.2), (&b.0, b.1, b.2)));
            if frontier.is_empty() {
                None
            } else {
                Some(Checkpoint {
                    frontier,
                    incumbent: self.incumbent.clone(),
                    nodes: self.nodes,
                    numerical_prunes: self.numerical_prunes,
                    degraded_nodes: self.degraded_nodes,
                    trajectory: self.trajectory.clone(),
                    traj_axis: TrajAxis::Nodes,
                    last_stall_value: self.last_stall_value,
                    faults: self.faults.clone(),
                })
            }
        } else {
            None
        };
        let (status, values, objective) = match (&self.incumbent, self.stopped_early) {
            (Some((vals, obj)), early) => {
                let gap = (obj - bound_min) / obj.abs().max(1.0);
                let st = if !early || gap <= self.cfg.rel_gap {
                    MilpStatus::Optimal
                } else {
                    MilpStatus::Feasible
                };
                (st, vals.clone(), *obj)
            }
            (None, true) => (MilpStatus::NoSolution, Vec::new(), f64::NAN),
            (None, false) => (MilpStatus::Infeasible, Vec::new(), f64::NAN),
        };
        let rel_gap = if objective.is_nan() {
            f64::INFINITY
        } else {
            ((objective - bound_min) / objective.abs().max(1.0)).max(0.0)
        };
        let solution = MilpSolution {
            status,
            values,
            objective: self.cm.restore_objective(objective),
            best_bound: self.cm.restore_objective(bound_min),
            rel_gap,
            nodes: self.nodes,
            lp_iterations: self.lp_stats.warm_iterations + self.lp_stats.cold_iterations,
            numerical_prunes: self.numerical_prunes,
            solve_time: start.elapsed(),
            trajectory: std::mem::take(&mut self.wall_trajectory),
            faults: std::mem::take(&mut self.faults),
            degraded_nodes: self.degraded_nodes,
            lp_stats: self.lp_stats,
        };
        (solution, checkpoint)
    }
}

// ---------------------------------------------------------------------
// Work-stealing engine
// ---------------------------------------------------------------------

/// An open node of the work-stealing engine. Nodes pushed to the shared
/// frontier carry their parent's basis so the stealing worker can still
/// warm-start; dive children stay on the local stack with no snapshot (the
/// worker's simplex already holds the parent basis).
struct WsNode {
    changes: Vec<(VarId, f64, f64)>,
    bound: f64,
    depth: usize,
    basis: Option<Arc<Basis>>,
}

/// Heap wrapper ordered so the smallest bound pops first.
struct WsOrd(WsNode);

impl PartialEq for WsOrd {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for WsOrd {}
impl PartialOrd for WsOrd {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WsOrd {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
    }
}

struct WsFrontier {
    heap: BinaryHeap<WsOrd>,
    /// Workers currently parked in [`WsShared::steal`].
    idle: usize,
}

/// First-improver incumbent state plus everything that must move with it
/// under one lock (trajectory entries and §3.3 stall bookkeeping).
struct WsIncumbent {
    best: Option<(Vec<f64>, f64)>,
    trajectory: Vec<(f64, f64)>,
    last_improvement: Instant,
    last_stall_value: f64,
}

struct WsShared<'a> {
    cm: &'a CompiledModel,
    cfg: &'a MilpConfig,
    threads: usize,
    budget: Budget,
    target_min: Option<f64>,
    // lock-order: ws-frontier (terminal: the stop flag store and condvar
    // park protocol live under it; never held while taking another lock)
    frontier: Mutex<WsFrontier>,
    cv: Condvar,
    // lock-order: ws-inc (dropped before `request_stop` takes ws-frontier)
    inc: Mutex<WsIncumbent>,
    /// Min-space incumbent objective bits (`f64::INFINITY` when none):
    /// the lock-free read side of cooperative pruning.
    inc_bits: AtomicU64,
    /// Per-worker bound of the subtree it currently owns (`f64::INFINITY`
    /// bits when idle); combined with the heap top for the global dual
    /// bound of the gap stop rule.
    inflight: Vec<AtomicU64>,
    stop: AtomicBool,
    stopped_early: AtomicBool,
    deadline_noted: AtomicBool,
    /// Gap-rule conclusion: the proven dual bound, when the search ended
    /// by proof rather than interruption.
    // lock-order: ws-proven (dropped before `request_stop` takes ws-frontier)
    proven: Mutex<Option<f64>>,
    meter: NodeMeter,
    prunes: AtomicUsize,
    degraded: AtomicUsize,
    // lock-order: ws-faults (leaf: push/take only, nothing acquired under it)
    faults: Mutex<Vec<SolverFault>>,
    // lock-order: ws-fatal (dropped before `record_fatal` calls request_stop)
    fatal: Mutex<Option<MilpError>>,
    // lock-order: ws-stats (leaf: record/read only, nothing acquired under it)
    stats: Mutex<LpSolveStats>,
    start: Instant,
    /// Root bounds per LP variable, shared so every worker restores stale
    /// bound changes against the same reference.
    root_bounds_cache: Vec<(f64, f64)>,
}

impl<'a> WsShared<'a> {
    fn inc_obj(&self) -> f64 {
        f64::from_bits(self.inc_bits.load(AtOrd::Acquire))
    }

    fn request_stop(&self, early: bool) {
        if early {
            self.stopped_early.store(true, AtOrd::Release);
        }
        // The stop flag must be stored while holding the frontier lock:
        // a worker in `steal` checks the flag and then parks on the
        // condvar under that same lock, so storing + notifying without it
        // could land entirely inside a waiter's check-to-wait window —
        // the notification is lost and the worker parks forever.
        let fr = self.frontier.lock().unwrap();
        self.stop.store(true, AtOrd::Release);
        drop(fr);
        self.cv.notify_all();
    }

    fn record_fault(&self, f: SolverFault) {
        self.faults.lock().unwrap().push(f);
    }

    fn record_fatal(&self, e: MilpError) {
        let mut slot = self.fatal.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.request_stop(true);
    }

    /// First-improver publication: the first thread to lock in a strict
    /// improvement wins; equal-or-worse latecomers are dropped.
    fn publish(&self, values: Vec<f64>, min_obj: f64) {
        let mut inc = self.inc.lock().unwrap();
        let cur = inc.best.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        if min_obj < cur - 1e-12 {
            let improvement = if inc.last_stall_value.is_finite() {
                (inc.last_stall_value - min_obj).abs() / inc.last_stall_value.abs().max(1.0)
            } else {
                f64::INFINITY
            };
            if improvement >= self.cfg.stall_improvement {
                // an:allow(AN001): stall-rule wall clock (work-stealing
                // engine makes no determinism claims at all).
                inc.last_improvement = Instant::now();
                inc.last_stall_value = min_obj;
            }
            inc.best = Some((values, min_obj));
            let t = self.start.elapsed().as_secs_f64();
            let obj = self.cm.restore_objective(min_obj);
            inc.trajectory.push((t, obj));
            self.inc_bits.store(min_obj.to_bits(), AtOrd::Release);
            self.cfg.metrics.incumbents.inc();
            self.cfg.tracer.event(
                "milp.incumbent",
                vec![
                    ("engine", "work_stealing".to_string()),
                    ("objective", format!("{obj}")),
                ],
            );
            if let Some(target) = self.target_min {
                if min_obj <= target + crate::CERT_TOL {
                    drop(inc);
                    self.request_stop(true);
                }
            }
        }
    }

    /// Pops the best surviving shared node, parking on the condvar when
    /// the heap is dry. Returns `None` when the search is over — either a
    /// stop was requested or every worker went idle with an empty heap
    /// (global exhaustion, detected by the idle count reaching the worker
    /// count).
    fn steal(&self, id: usize) -> Option<WsNode> {
        let mut fr = self.frontier.lock().unwrap();
        // The caller's local stack is dry, so it owns no subtree; clear
        // its in-flight slot under the frontier lock, pairing with the
        // publication below.
        self.inflight[id].store(f64::INFINITY.to_bits(), AtOrd::Release);
        loop {
            if self.stop.load(AtOrd::Acquire) {
                return None;
            }
            let mut got = None;
            while let Some(WsOrd(n)) = fr.heap.pop() {
                if n.bound < self.inc_obj() - 1e-9 {
                    got = Some(n);
                    break;
                }
            }
            if let Some(n) = got {
                // Publish the stolen subtree's bound while the frontier
                // lock is still held: a node must never be invisible to
                // `check_gap_stop` — at every instant it is either in the
                // heap or in an inflight slot, otherwise a concurrent gap
                // check could overestimate the dual bound and stop with a
                // wrong optimality proof.
                self.inflight[id].store(n.bound.to_bits(), AtOrd::Release);
                self.cfg.metrics.steals.inc();
                return Some(n);
            }
            fr.idle += 1;
            if fr.idle == self.threads {
                drop(fr);
                self.request_stop(false);
                return None;
            }
            fr = self.cv.wait(fr).unwrap();
            fr.idle -= 1;
        }
    }

    fn share_node(&self, node: WsNode) {
        let mut fr = self.frontier.lock().unwrap();
        fr.heap.push(WsOrd(node));
        drop(fr);
        self.cv.notify_one();
    }

    /// The gap stop rule: global dual bound = min(shared heap top, every
    /// worker's in-flight subtree bound), compared against the incumbent.
    fn check_gap_stop(&self) {
        let inc = self.inc_obj();
        if inc == f64::INFINITY {
            return;
        }
        let mut bound = inc;
        {
            let fr = self.frontier.lock().unwrap();
            if let Some(top) = fr.heap.peek() {
                bound = bound.min(top.0.bound);
            }
        }
        for slot in &self.inflight {
            bound = bound.min(f64::from_bits(slot.load(AtOrd::Acquire)));
        }
        let gap = (inc - bound) / inc.abs().max(1.0);
        if gap <= self.cfg.rel_gap {
            let mut proven = self.proven.lock().unwrap();
            if proven.is_none() {
                *proven = Some(bound);
            }
            drop(proven);
            self.request_stop(false);
        }
    }
}

fn ws_worker(sh: &WsShared<'_>, id: usize, cb_tx: &mpsc::Sender<Vec<f64>>) {
    let mut simplex = worker_simplex(
        sh.cm,
        &sh.budget,
        sh.cfg.fault_plan.clone(),
        sh.cfg.metrics.clone(),
        sh.cfg.factor,
    );
    let mut applied: Vec<usize> = Vec::new();
    let mut local: Vec<WsNode> = Vec::new();
    let park = |local: &mut Vec<WsNode>| {
        if !local.is_empty() {
            let mut fr = sh.frontier.lock().unwrap();
            for n in local.drain(..) {
                fr.heap.push(WsOrd(n));
            }
            drop(fr);
            sh.cv.notify_all();
        }
        sh.inflight[id].store(f64::INFINITY.to_bits(), AtOrd::Release);
    };
    loop {
        if sh.stop.load(AtOrd::Acquire) {
            park(&mut local);
            return;
        }
        // Cooperative pruning on the local dive stack.
        let mut node = None;
        while let Some(n) = local.pop() {
            if n.bound < sh.inc_obj() - 1e-9 {
                node = Some(n);
                break;
            }
        }
        let node = match node {
            Some(n) => {
                // Local pop: raise the slot from the parent's bound to this
                // node's. Children bounds dominate their parent's, so the
                // stale value in between only understates the dual bound —
                // conservative for the gap rule. Steals publish their bound
                // inside `steal` itself, under the frontier lock.
                sh.inflight[id].store(n.bound.to_bits(), AtOrd::Release);
                n
            }
            None => match sh.steal(id) {
                Some(n) => n,
                None => {
                    park(&mut local);
                    return;
                }
            },
        };
        // Global node allowance.
        if sh.meter.exhausted(&sh.budget) {
            sh.stopped_early.store(true, AtOrd::Release);
            local.push(node);
            park(&mut local);
            sh.request_stop(true);
            return;
        }
        let idx = sh.meter.charge(1);
        sh.cfg.metrics.nodes.inc();
        // Same containment as the deterministic engine's workers: a panic
        // inside the node evaluation must surface as `Eval::Panicked` (park
        // local nodes, release the inflight slot, stop the search) rather
        // than unwind past the frontier protocol — an unwinding worker
        // leaves its inflight slot populated, so the gap rule would keep
        // waiting on a bound that no thread will ever retire.
        let eval = catch_unwind(AssertUnwindSafe(|| {
            if sh
                .cfg
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.fire(FaultSite::EvalPanic))
            {
                // an:allow(AN202): chaos-injection site — unreachable unless
                // a FaultPlan arms EvalPanic, and the catch_unwind one line
                // up exists precisely to contain it.
                panic!("injected node-evaluation panic");
            }
            eval_node(
                &mut simplex,
                &mut applied,
                // Work-stealing workers re-derive root bounds from the
                // compiled LP (cheap relative to a node LP).
                &sh.root_bounds_cache,
                &node.changes,
                node.basis.as_deref(),
                false,
            )
        }))
        .unwrap_or_else(|_| Eval::Panicked("work-stealing LP worker panicked".into()));
        match eval {
            Eval::Deadline => {
                if !sh.deadline_noted.swap(true, AtOrd::AcqRel) {
                    sh.record_fault(SolverFault::DeadlineExceeded);
                }
                local.push(node);
                park(&mut local);
                sh.request_stop(true);
                return;
            }
            Eval::Pruned(fault) => {
                if let Some(f) = fault {
                    sh.record_fault(f);
                }
                sh.prunes.fetch_add(1, AtOrd::Relaxed);
            }
            Eval::Fatal(e) => {
                park(&mut local);
                sh.record_fatal(MilpError::Lp(e));
                return;
            }
            Eval::Panicked(msg) => {
                park(&mut local);
                sh.record_fatal(MilpError::Model(format!(
                    "parallel LP worker panicked: {msg}"
                )));
                return;
            }
            Eval::Solved {
                status,
                x,
                objective,
                degraded,
                warm,
                iterations,
                basis,
            } => {
                sh.stats.lock().unwrap().record(warm, iterations);
                match status {
                    SolveStatus::Infeasible => {
                        sh.check_gap_stop();
                        continue;
                    }
                    SolveStatus::Unbounded => {
                        park(&mut local);
                        sh.record_fatal(MilpError::Model(
                            "relaxation is unbounded; bound the outer variables".into(),
                        ));
                        return;
                    }
                    SolveStatus::Optimal => {}
                }
                let obj = if degraded {
                    sh.degraded.fetch_add(1, AtOrd::Relaxed);
                    node.bound
                } else {
                    objective
                };
                if !degraded && obj >= sh.inc_obj() - 1e-9 {
                    sh.check_gap_stop();
                    continue; // pruned by bound
                }
                if sh.cfg.callback_every > 0 && (idx - 1).is_multiple_of(sh.cfg.callback_every) {
                    // Ship the relaxation point to the calling thread; the
                    // callback itself is not Send.
                    let _ = cb_tx.send(sh.cm.extract_values(&x));
                }
                match (
                    most_fractional_binary(sh.cm, sh.cfg.int_tol, &x),
                    most_violated_compl(sh.cm, sh.cfg.compl_tol, &x),
                ) {
                    (None, None) => {
                        if degraded {
                            sh.prunes.fetch_add(1, AtOrd::Relaxed);
                        } else {
                            sh.publish(sh.cm.extract_values(&x), obj);
                        }
                    }
                    (Some((v, value, _frac)), _) => {
                        let rounded = value.round().clamp(0.0, 1.0);
                        let mut dive = node.changes.clone();
                        dive.push((v, rounded, rounded));
                        let mut alt = node.changes;
                        alt.push((v, 1.0 - rounded, 1.0 - rounded));
                        let depth = node.depth + 1;
                        sh.share_node(WsNode {
                            changes: alt,
                            bound: obj,
                            depth,
                            basis,
                        });
                        local.push(WsNode {
                            changes: dive,
                            bound: obj,
                            depth,
                            basis: None,
                        });
                    }
                    (None, Some((mult, slack, mval, sval))) => {
                        let (first, second) = if mval <= sval {
                            (mult, slack)
                        } else {
                            (slack, mult)
                        };
                        let mut dive = node.changes.clone();
                        dive.push((first, 0.0, 0.0));
                        let mut alt = node.changes;
                        alt.push((second, 0.0, 0.0));
                        let depth = node.depth + 1;
                        sh.share_node(WsNode {
                            changes: alt,
                            bound: obj,
                            depth,
                            basis,
                        });
                        local.push(WsNode {
                            changes: dive,
                            bound: obj,
                            depth,
                            basis: None,
                        });
                    }
                }
                sh.check_gap_stop();
            }
        }
    }
}

/// Entry point for the work-stealing engine (dispatched from
/// `solve_resumable`).
pub(crate) fn solve_work_stealing(
    cm: &CompiledModel,
    cfg: &MilpConfig,
    callback: &mut dyn IncumbentCallback,
    resume: Option<Checkpoint>,
    threads: usize,
    start: Instant,
) -> MilpResult<(MilpSolution, Option<Checkpoint>)> {
    let budget = cfg.effective_budget();
    let root_bounds: Vec<(f64, f64)> = (0..cm.lp.n_vars()).map(|j| cm.lp.bounds(VarId(j))).collect();
    let mut heap = BinaryHeap::new();
    let mut inc = WsIncumbent {
        best: None,
        trajectory: Vec::new(),
        // an:allow(AN001): stall-rule wall clock; see `publish`.
        last_improvement: Instant::now(),
        last_stall_value: f64::INFINITY,
    };
    let meter = NodeMeter::new();
    let mut seed_prunes = 0usize;
    let mut seed_degraded = 0usize;
    let mut seed_faults: Vec<SolverFault> = Vec::new();
    let resumed = resume.is_some();
    if let Some(cp) = resume {
        inc.best = cp.incumbent;
        // Only adopt a seconds-axis history; a deterministic checkpoint's
        // node-count trajectory must not mix into this wall-clock one.
        if cp.traj_axis == TrajAxis::Seconds {
            inc.trajectory = cp.trajectory;
        }
        inc.last_stall_value = cp.last_stall_value;
        meter.charge(cp.nodes);
        seed_prunes = cp.numerical_prunes;
        seed_degraded = cp.degraded_nodes;
        seed_faults = cp.faults;
        for (changes, bound, depth) in cp.frontier {
            heap.push(WsOrd(WsNode {
                changes,
                bound,
                depth,
                basis: None,
            }));
        }
    }
    if !resumed {
        heap.push(WsOrd(WsNode {
            changes: Vec::new(),
            bound: f64::NEG_INFINITY,
            depth: 0,
            basis: None,
        }));
    }
    let inc_bits = inc.best.as_ref().map_or(f64::INFINITY, |(_, o)| *o).to_bits();
    let sh = WsShared {
        cm,
        cfg,
        threads,
        budget,
        target_min: cfg.target_objective.map(|t| cm.restore_objective(t)),
        frontier: Mutex::new(WsFrontier { heap, idle: 0 }),
        cv: Condvar::new(),
        inc: Mutex::new(inc),
        inc_bits: AtomicU64::new(inc_bits),
        inflight: (0..threads)
            .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
            .collect(),
        stop: AtomicBool::new(false),
        stopped_early: AtomicBool::new(false),
        deadline_noted: AtomicBool::new(false),
        proven: Mutex::new(None),
        meter,
        prunes: AtomicUsize::new(seed_prunes),
        degraded: AtomicUsize::new(seed_degraded),
        faults: Mutex::new(seed_faults),
        fatal: Mutex::new(None),
        stats: Mutex::new(LpSolveStats::default()),
        start,
        root_bounds_cache: root_bounds,
    };
    let mut callback_panics = 0usize;
    // Seed the incumbent before the workers start, exactly like the
    // serial engine's pre-root proposal.
    if cfg.callback_every > 0 {
        let origin = vec![0.0; cm.var_map.len()];
        let inject = cfg
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.fire(FaultSite::CallbackPanic));
        match propose_contained(callback, &origin, inject) {
            Ok(Some((vals, model_obj))) => sh.publish(vals, to_min_space(cm, model_obj)),
            Ok(None) => {}
            Err(f) => {
                callback_panics += 1;
                sh.record_fault(f);
            }
        }
    }
    let (cb_tx, cb_rx) = mpsc::channel::<Vec<f64>>();
    std::thread::scope(|scope| {
        for id in 0..threads {
            let shr = &sh;
            let tx = cb_tx.clone();
            scope.spawn(move || ws_worker(shr, id, &tx));
        }
        drop(cb_tx);
        // The calling thread is the callback servicer and the wall-clock
        // stop-rule watchdog.
        loop {
            match cb_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(relax) => {
                    if callback_panics < MAX_CALLBACK_PANICS {
                        let inject = cfg
                            .fault_plan
                            .as_ref()
                            .is_some_and(|p| p.fire(FaultSite::CallbackPanic));
                        match propose_contained(callback, &relax, inject) {
                            Ok(Some((vals, model_obj))) => {
                                sh.publish(vals, to_min_space(cm, model_obj));
                            }
                            Ok(None) => {}
                            Err(f) => {
                                callback_panics += 1;
                                sh.record_fault(f);
                            }
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            if sh.stop.load(AtOrd::Acquire) {
                continue; // drain remaining proposals until workers exit
            }
            if sh.budget.expired() {
                sh.request_stop(true);
                continue;
            }
            let stall_injected = cfg
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.fire(FaultSite::StallNow));
            let stalled = stall_injected
                || cfg.stall_window.is_some_and(|w| {
                    let inc = sh.inc.lock().unwrap();
                    inc.best.is_some() && inc.last_improvement.elapsed() >= w
                });
            if stalled {
                if stall_injected {
                    sh.record_fault(SolverFault::StallDetected);
                }
                sh.request_stop(true);
            }
        }
    });
    if let Some(e) = sh.fatal.lock().unwrap().take() {
        return Err(e);
    }
    Ok(ws_finish(&sh, start))
}

fn ws_finish(sh: &WsShared<'_>, start: Instant) -> (MilpSolution, Option<Checkpoint>) {
    let stopped_early = sh.stopped_early.load(AtOrd::Acquire);
    let mut inc = sh.inc.lock().unwrap();
    let incumbent = inc.best.take();
    let trajectory = std::mem::take(&mut inc.trajectory);
    let last_stall_value = inc.last_stall_value;
    drop(inc);
    let incumbent_obj = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
    let mut fr = sh.frontier.lock().unwrap();
    let mut frontier: Vec<FrontierNode> = fr
        .heap
        .drain()
        .map(|WsOrd(n)| (n.changes, n.bound, n.depth))
        .collect();
    drop(fr);
    frontier.sort_by(|a, b| canon_cmp((&a.0, a.1, a.2), (&b.0, b.1, b.2)));
    let proven = *sh.proven.lock().unwrap();
    let bound_min = if stopped_early {
        frontier
            .iter()
            .map(|&(_, b, _)| b)
            .fold(incumbent_obj, f64::min)
    } else {
        proven.unwrap_or(incumbent_obj)
    };
    let nodes = sh.meter.count();
    let numerical_prunes = sh.prunes.load(AtOrd::Relaxed);
    let degraded_nodes = sh.degraded.load(AtOrd::Relaxed);
    let faults = std::mem::take(&mut *sh.faults.lock().unwrap());
    let lp_stats = *sh.stats.lock().unwrap();
    let checkpoint = if stopped_early && !frontier.is_empty() {
        Some(Checkpoint {
            frontier: frontier.clone(),
            incumbent: incumbent.clone(),
            nodes,
            numerical_prunes,
            degraded_nodes,
            trajectory: trajectory.clone(),
            traj_axis: TrajAxis::Seconds,
            last_stall_value,
            faults: faults.clone(),
        })
    } else {
        None
    };
    let (status, values, objective) = match (&incumbent, stopped_early) {
        (Some((vals, obj)), early) => {
            let gap = (obj - bound_min) / obj.abs().max(1.0);
            let st = if !early || gap <= sh.cfg.rel_gap {
                MilpStatus::Optimal
            } else {
                MilpStatus::Feasible
            };
            (st, vals.clone(), *obj)
        }
        (None, true) => (MilpStatus::NoSolution, Vec::new(), f64::NAN),
        (None, false) => (MilpStatus::Infeasible, Vec::new(), f64::NAN),
    };
    let rel_gap = if objective.is_nan() {
        f64::INFINITY
    } else {
        ((objective - bound_min) / objective.abs().max(1.0)).max(0.0)
    };
    let solution = MilpSolution {
        status,
        values,
        objective: sh.cm.restore_objective(objective),
        best_bound: sh.cm.restore_objective(bound_min),
        rel_gap,
        nodes,
        lp_iterations: lp_stats.warm_iterations + lp_stats.cold_iterations,
        numerical_prunes,
        solve_time: start.elapsed(),
        trajectory,
        faults,
        degraded_nodes,
        lp_stats,
    };
    (solution, checkpoint)
}
