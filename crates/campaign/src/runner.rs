//! The supervised campaign runner.
//!
//! A campaign executes its grid of cells on a pool of panic-contained
//! worker threads. Each worker owns one cell at a time and advances it in
//! fixed node-budget *ticks* ([`metaopt_core::sweep_tick`]); after every
//! tick the resulting state is appended to the write-ahead journal, so a
//! hard kill loses at most the (re-executable) tick in flight. Failures go
//! through the [`RetryPolicy`] with exponential backoff and deterministic
//! jitter; cells that keep failing are quarantined with their full fault
//! history instead of wedging the campaign.
//!
//! Shutdown is cooperative: a polled [`ShutdownFlag`] (the process's
//! SIGINT handler or a supervisor sets it) or the campaign deadline makes
//! every worker finish its current tick — whose checkpoint is then
//! durable — and exit; the runner then writes a `shutdown` record and the
//! resumable manifest.

use crate::cell::{encode_sweep_state, CellOutcome, CellSpec};
use crate::clock::{Clock, SystemClock};
use crate::journal::Journal;
use crate::state::{CampaignState, CellStatus};
use crate::{wire, CampaignError};
use metaopt_core::{CoreError, SliceBudget, SweepState, SweepTick};
use metaopt_resilience::{QuarantineReason, RetryDecision, RetryPolicy};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cooperative shutdown flag. The campaign has no signal handler of its
/// own (no libc dependency); the embedding binary polls or traps SIGINT
/// and calls [`ShutdownFlag::request`].
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Requests a graceful drain.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads.
    pub workers: usize,
    /// Retry/backoff/quarantine policy for failed cell attempts.
    pub retry: RetryPolicy,
    /// Optional campaign-wide wall-clock deadline (graceful drain when it
    /// passes).
    pub deadline: Option<Instant>,
    /// Branch-and-bound worker threads granted to each cell's solves
    /// (`FinderConfig::threads` override). `0` (the default) leaves the
    /// cell spec's own configuration — and hence `METAOPT_THREADS` — in
    /// charge. Total CPU appetite is `workers x threads_per_cell`.
    pub threads_per_cell: usize,
    /// Basis-factorization backend override for each cell's LP solves
    /// (`FinderConfig::factor` override). `None` (the default) leaves the
    /// cell spec's own configuration — and hence `METAOPT_FACTOR` — in
    /// charge (sparse LU when unset).
    pub factor_per_cell: Option<metaopt_core::FactorBackend>,
    /// Salt mixed into the retry-backoff jitter seed. Within one campaign
    /// the seed already varies by (cell, attempt), but *across* campaigns
    /// it did not: many queued jobs whose cell 0 fails at the same moment
    /// would all draw the identical jitter and retry in lockstep — a
    /// thundering herd against the shared worker pool. Give each
    /// campaign/job a distinct salt (the job server mixes in the job id)
    /// to decorrelate them. The seed stays fully deterministic for a
    /// given salt, so replayed campaigns make identical scheduling
    /// decisions.
    pub retry_salt: u64,
    /// Time source for deadlines, retry backoff, and drain checks. The
    /// default [`SystemClock`] reads the OS monotonic clock; tests inject
    /// a [`crate::clock::TestClock`] to drive timeout paths
    /// deterministically.
    pub clock: Arc<dyn Clock>,
    /// Observability handles (journal durability, retries, quarantines,
    /// replay durations, solver counters). Defaults to no-ops; enabling
    /// them changes no scheduling decision and no journal byte.
    pub metrics: crate::CampaignMetrics,
    /// Flight-recorder tracer installed on each cell's solver stack.
    /// Defaults to disabled.
    pub tracer: metaopt_obs::Tracer,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 2,
            retry: RetryPolicy::default(),
            deadline: None,
            threads_per_cell: 0,
            factor_per_cell: None,
            retry_salt: 0,
            clock: Arc::new(SystemClock),
            metrics: crate::CampaignMetrics::disabled(),
            tracer: metaopt_obs::Tracer::disabled(),
        }
    }
}

/// The deterministic jitter seed for the `attempt`-th retry of work unit
/// `unit` under `salt`: a splitmix-style mix so that changing any one
/// input decorrelates the whole seed. Campaigns use the cell index as the
/// unit; the job server uses the job id and its own per-boot salt.
pub fn retry_jitter_seed(salt: u64, unit: u64, attempt: usize) -> u64 {
    let mut z = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(unit)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(attempt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// How a campaign run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// Every cell reached a terminal state (done or quarantined).
    Complete,
    /// A graceful drain (shutdown flag or deadline) stopped the run with
    /// pending cells; resume later with [`resume`].
    Drained,
}

/// What [`run`] / [`resume`] return: the replayed end-of-run state plus
/// how the run ended.
#[derive(Debug)]
pub struct CampaignReport {
    /// The campaign state replayed from the journal after the run.
    pub state: CampaignState,
    /// Whether the run completed or drained.
    pub end: RunEnd,
}

/// Starts a fresh campaign in `dir` (which must not already contain a
/// journal) and runs it to completion or drain.
pub fn run(
    dir: &Path,
    name: &str,
    cells: Vec<CellSpec>,
    cfg: &CampaignConfig,
    shutdown: &ShutdownFlag,
) -> Result<CampaignReport, CampaignError> {
    if cells.is_empty() {
        return Err(CampaignError::Config("campaign has no cells".into()));
    }
    let mut journal = Journal::create(dir)?;
    journal.set_metrics(cfg.metrics.clone());
    journal.append(&format!(
        "{} {} {}",
        crate::state::CAMPAIGN_MAGIC,
        wire::escape(name),
        cells.len()
    ))?;
    for (i, c) in cells.iter().enumerate() {
        journal.append(&format!("cell {i} {}", c.encode()))?;
    }
    let work: Vec<WorkItem> = cells
        .iter()
        .enumerate()
        .map(|(idx, spec)| WorkItem {
            idx,
            attempt: 1,
            state: None,
            spec: spec.clone(),
        })
        .collect();
    execute(dir, journal, work, cfg, shutdown)
}

/// Resumes the campaign journaled in `dir`: replays the journal,
/// reconstructs every pending cell's frontier from its last checkpoint,
/// and continues. Completed and quarantined cells are never re-run.
pub fn resume(
    dir: &Path,
    cfg: &CampaignConfig,
    shutdown: &ShutdownFlag,
) -> Result<CampaignReport, CampaignError> {
    let replay_started = cfg.clock.now();
    let prior = CampaignState::from_dir(dir)?;
    cfg.metrics
        .replay_seconds
        .observe((cfg.clock.now() - replay_started).as_secs_f64());
    let mut work = Vec::new();
    for idx in prior.pending_indices() {
        // an:allow(AN203): `pending_indices` yields indices into its own
        // `status`/`cells` vectors, which replay constructed together.
        let (attempt, resume_state) = match &prior.status[idx] {
            CellStatus::Pending { attempt, resume } => (*attempt + 1, resume.clone()),
            // an:allow(AN202): a non-Pending status at a pending index means
            // `CampaignState` itself is inconsistent; aborting resume is right.
            _ => unreachable!("pending_indices returned a terminal cell"),
        };
        work.push(WorkItem {
            idx,
            attempt,
            state: resume_state,
            // an:allow(AN203): same `pending_indices` in-bounds invariant.
            spec: prior.cells[idx].clone(),
        });
    }
    let mut journal = Journal::open_append(dir)?;
    journal.set_metrics(cfg.metrics.clone());
    execute(dir, journal, work, cfg, shutdown)
}

/// Replays the journal in `dir` without running anything.
pub fn status(dir: &Path) -> Result<CampaignState, CampaignError> {
    CampaignState::from_dir(dir)
}

/// Resumable manifest file name inside a campaign directory.
pub const MANIFEST_FILE: &str = "MANIFEST.txt";

// ---------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------

/// A unit of schedulable work: one cell attempt, possibly mid-sweep.
#[derive(Debug, Clone)]
struct WorkItem {
    idx: usize,
    /// 1-based attempt number this pickup runs as.
    attempt: usize,
    /// Resume point (None = fresh sweep).
    state: Option<SweepState>,
    spec: CellSpec,
}

struct Queue {
    ready: VecDeque<WorkItem>,
    /// Backoff-delayed retries, with their not-before instants.
    delayed: Vec<(Instant, WorkItem)>,
    /// Items currently held by workers.
    outstanding: usize,
    /// Set to stop workers (drain or completion).
    stop: bool,
}

impl Queue {
    fn work_remains(&self) -> bool {
        !self.ready.is_empty() || !self.delayed.is_empty() || self.outstanding > 0
    }
}

struct Shared {
    // lock-order: campaign.queue
    queue: Mutex<Queue>,
    cv: Condvar,
    // lock-order: campaign.journal
    journal: Mutex<Journal>,
    shutdown: ShutdownFlag,
    deadline: Option<Instant>,
    retry: RetryPolicy,
    threads_per_cell: usize,
    factor_per_cell: Option<metaopt_core::FactorBackend>,
    retry_salt: u64,
    clock: Arc<dyn Clock>,
    metrics: crate::CampaignMetrics,
    tracer: metaopt_obs::Tracer,
    /// First unrecoverable runner error (journal I/O); stops the run.
    // lock-order: campaign.fatal -> campaign.queue
    fatal: Mutex<Option<CampaignError>>,
}

impl Shared {
    fn append(&self, payload: &str) -> Result<(), CampaignError> {
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .append(payload)
    }

    fn drain_requested(&self) -> bool {
        self.shutdown.is_requested() || self.deadline.is_some_and(|d| self.clock.now() >= d)
    }

    fn abort(&self, err: CampaignError) {
        let mut slot = self.fatal.lock().expect("fatal lock poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        let mut q = self.queue.lock().expect("queue lock poisoned");
        q.stop = true;
        drop(q);
        self.cv.notify_all();
    }
}

fn execute(
    dir: &Path,
    journal: Journal,
    work: Vec<WorkItem>,
    cfg: &CampaignConfig,
    shutdown: &ShutdownFlag,
) -> Result<CampaignReport, CampaignError> {
    let had_work = !work.is_empty();
    let shared = Shared {
        queue: Mutex::new(Queue {
            ready: work.into(),
            delayed: Vec::new(),
            outstanding: 0,
            stop: !had_work,
        }),
        cv: Condvar::new(),
        journal: Mutex::new(journal),
        shutdown: shutdown.clone(),
        deadline: cfg.deadline,
        retry: cfg.retry,
        threads_per_cell: cfg.threads_per_cell,
        factor_per_cell: cfg.factor_per_cell,
        retry_salt: cfg.retry_salt,
        clock: Arc::clone(&cfg.clock),
        metrics: cfg.metrics.clone(),
        tracer: cfg.tracer.clone(),
        fatal: Mutex::new(None),
    };

    let n_workers = cfg.workers.max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            // an:allow(AN104): containment lives one call deeper —
            // `worker_loop` funnels every cell through `drive_cell`, which
            // catch_unwinds both spec build and tick panics into `Failed`
            // outcomes; a panic escaping the loop itself is a runner bug
            // that the supervisor's join below deliberately propagates.
            handles.push(scope.spawn(|| worker_loop(&shared)));
        }
        // Supervisor: watch for drain requests while workers run.
        loop {
            if shared.drain_requested() {
                let mut q = shared.queue.lock().expect("queue lock poisoned");
                q.stop = true;
                drop(q);
                shared.cv.notify_all();
                break;
            }
            let q = shared.queue.lock().expect("queue lock poisoned");
            if q.stop && q.outstanding == 0 {
                break;
            }
            drop(q);
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in handles {
            // Workers contain cell panics themselves; a panic escaping the
            // worker loop is a runner bug worth propagating.
            // an:allow(AN201): deliberate propagation — see the comment
            // above; swallowing this would hide a broken containment story.
            h.join().expect("worker thread panicked outside containment");
        }
    });

    if let Some(err) = shared.fatal.lock().expect("fatal lock poisoned").take() {
        return Err(err);
    }

    let drained = {
        let q = shared.queue.lock().expect("queue lock poisoned");
        q.work_remains()
    };
    let end = if drained { RunEnd::Drained } else { RunEnd::Complete };
    let reason = match end {
        RunEnd::Complete => "complete",
        RunEnd::Drained => "drained",
    };
    shared.append(&format!("shutdown {}", wire::escape(reason)))?;
    drop(shared);

    let replay_started = cfg.clock.now();
    let state = CampaignState::from_dir(dir)?;
    cfg.metrics
        .replay_seconds
        .observe((cfg.clock.now() - replay_started).as_secs_f64());
    std::fs::write(dir.join(MANIFEST_FILE), state.manifest())
        .map_err(|e| CampaignError::Io(format!("write manifest: {e}")))?;
    Ok(CampaignReport { state, end })
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut q = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if q.stop {
                    return;
                }
                let now = shared.clock.now();
                // Promote due retries.
                let mut i = 0;
                while i < q.delayed.len() {
                    // an:allow(AN203): `i < q.delayed.len()` is re-checked
                    // every iteration and `swap_remove` only shrinks the
                    // vector, so the index cannot go stale.
                    if q.delayed[i].0 <= now {
                        let (_, item) = q.delayed.swap_remove(i);
                        q.ready.push_back(item);
                    } else {
                        i += 1;
                    }
                }
                if let Some(item) = q.ready.pop_front() {
                    q.outstanding += 1;
                    break item;
                }
                if !q.work_remains() {
                    // Nothing left anywhere: the campaign is complete.
                    q.stop = true;
                    shared.cv.notify_all();
                    return;
                }
                // Wait for a retry to come due or for new signals.
                let wait = q
                    .delayed
                    .iter()
                    .map(|(t, _)| t.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_millis(50))
                    .min(Duration::from_millis(50));
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, wait.max(Duration::from_millis(1)))
                    .expect("queue lock poisoned");
                q = guard;
            }
        };
        run_item(shared, item);
        let mut q = shared.queue.lock().expect("queue lock poisoned");
        q.outstanding -= 1;
        if !q.work_remains() {
            q.stop = true;
        }
        drop(q);
        shared.cv.notify_all();
    }
}

/// What one cell attempt ended as.
enum AttemptEnd {
    Finished,
    Failed { kind: String, detail: String },
    DrainedMidCell,
}

fn run_item(shared: &Shared, item: WorkItem) {
    let WorkItem {
        idx,
        attempt,
        state,
        spec,
    } = item;
    if let Err(e) = shared.append(&format!("run {idx} {attempt}")) {
        shared.abort(e);
        return;
    }
    // The last journaled (durable) state: retries restart from here, not
    // from whatever a failing tick left behind.
    let mut last_good = state;
    let started = shared.clock.now();
    let cell_deadline = spec.timeout_secs.map(|s| started + Duration::from_secs_f64(s));

    let end = attempt_cell(shared, idx, &spec, &mut last_good, cell_deadline);
    match end {
        Ok(AttemptEnd::Finished) => {}
        Ok(AttemptEnd::DrainedMidCell) => {
            // Hand the cell back so the queue still counts it as pending
            // (stop is set, so nobody picks it up; `resume` will).
            let mut q = shared.queue.lock().expect("queue lock poisoned");
            q.ready.push_back(WorkItem {
                idx,
                attempt,
                state: last_good,
                spec,
            });
        }
        Ok(AttemptEnd::Failed { kind, detail }) => {
            if let Err(e) = shared.append(&format!(
                "fail {idx} {attempt} {} {}",
                wire::escape(&kind),
                wire::escape(&detail)
            )) {
                shared.abort(e);
                return;
            }
            let fatal = kind == "fatal";
            let seed = retry_jitter_seed(shared.retry_salt, idx as u64, attempt);
            let decision = if fatal {
                RetryDecision::Quarantine
            } else {
                shared.retry.on_failure(attempt, seed)
            };
            match decision {
                RetryDecision::RetryAfter(delay) => {
                    shared.metrics.retries.inc();
                    let retry = WorkItem {
                        idx,
                        attempt: attempt + 1,
                        state: last_good,
                        spec,
                    };
                    let mut q = shared.queue.lock().expect("queue lock poisoned");
                    q.delayed.push((shared.clock.now() + delay, retry));
                    drop(q);
                    shared.cv.notify_all();
                }
                RetryDecision::Quarantine => {
                    shared.metrics.quarantines.inc();
                    let reason = quarantine_reason_for(&kind);
                    if let Err(e) = shared
                        .append(&format!("quarantine {idx} {} {attempt}", reason.kind()))
                    {
                        shared.abort(e);
                    }
                }
            }
        }
        Err(e) => shared.abort(e),
    }
}

/// Maps a [`CellDriveEnd::Failed`] kind string onto the quarantine
/// taxonomy. Shared by the campaign runner and the job server so both
/// journal the same reasons for the same failures.
pub fn quarantine_reason_for(failure_kind: &str) -> QuarantineReason {
    match failure_kind {
        "fatal" => QuarantineReason::FatalError,
        // A worker repeatedly killed for blowing its wall-clock limit is
        // the sandboxed shape of a repeated in-process timeout.
        "timeout" | "killed_deadline" => QuarantineReason::RepeatedTimeout,
        "panic" => QuarantineReason::WorkerPanic,
        // `killed_oom` / `killed_heartbeat` / `worker_exit` (and anything
        // future) exhaust their retries like transient solver faults.
        _ => QuarantineReason::ExhaustedRetries,
    }
}

/// Observability handles a supervisor installs on each cell attempt's
/// solver stack: [`drive_cell`] copies them into the rebuilt
/// `FinderConfig`'s `MilpConfig` before the first tick, so
/// branch-and-bound node/wave/steal counters and node-LP pivot counters
/// accumulate — and incumbent events reach the flight recorder —
/// without the spec (which is journaled) having to carry them.
/// Defaults to all-disabled: observation never changes tick results.
#[derive(Debug, Clone, Default)]
pub struct SolverObs {
    /// Branch-and-bound + node-LP counter handles.
    pub metrics: metaopt_milp::MilpMetrics,
    /// Tracer receiving incumbent / solver events.
    pub tracer: metaopt_obs::Tracer,
}

/// How one supervised [`drive_cell`] attempt ended.
#[derive(Debug)]
pub enum CellDriveEnd {
    /// The sweep converged; the outcome is final and certified.
    Finished(CellOutcome),
    /// The attempt failed. `kind` is the journal failure taxonomy
    /// (`fatal` / `panic` / `solver` / `timeout`); feed it to
    /// [`quarantine_reason_for`] when retries are exhausted.
    Failed {
        /// Failure-taxonomy kind.
        kind: String,
        /// Free-form detail for the fault history.
        detail: String,
    },
    /// `stop()` returned true at a tick boundary. The last state passed to
    /// `on_checkpoint` is the exact resume point — nothing after it ran.
    Stopped,
}

/// Drives one cell attempt tick by tick until it finishes, fails, times
/// out, or `stop()` asks it to suspend. This is the supervised execution
/// hook shared by the campaign runner and the job server:
///
/// * the spec is rebuilt (panic-contained) fresh for the attempt,
/// * every completed tick's state goes to `on_checkpoint` *before* the
///   next tick starts — the caller journals it, so a hard kill loses at
///   most the tick in flight,
/// * `stop()` is consulted at each tick boundary (cancel / drain), and
/// * all cell panics are contained and reported as `Failed` ends.
///
/// The timeout check at each tick boundary reads `clock`, so a test with
/// a [`crate::clock::TestClock`] can drive the timeout path exactly.
///
/// `Err` is reserved for the caller's own `on_checkpoint` failures
/// (journal I/O): those are supervisor-fatal, not cell failures.
#[allow(clippy::too_many_arguments)] // supervisor boundary: spec + overrides + clock + obs + callbacks
pub fn drive_cell(
    spec: &CellSpec,
    threads_override: usize,
    factor_override: Option<metaopt_core::FactorBackend>,
    resume: Option<SweepState>,
    cell_deadline: Option<Instant>,
    clock: &dyn Clock,
    obs: &SolverObs,
    on_checkpoint: &mut dyn FnMut(&SweepState) -> Result<(), CampaignError>,
    stop: &mut dyn FnMut() -> bool,
) -> Result<CellDriveEnd, CampaignError> {
    // Rebuild the problem from the spec. Build errors are never transient.
    let built = catch_unwind(AssertUnwindSafe(|| spec.build()));
    let (inst, heu, cs, mut cfg) = match built {
        Ok(Ok(parts)) => parts,
        Ok(Err(e)) => {
            return Ok(CellDriveEnd::Failed {
                kind: "fatal".into(),
                detail: format!("build failed: {e}"),
            })
        }
        Err(p) => {
            return Ok(CellDriveEnd::Failed {
                kind: "panic".into(),
                detail: format!("build panicked: {}", panic_message(&p)),
            })
        }
    };
    if threads_override > 0 {
        cfg.threads = threads_override;
    }
    if factor_override.is_some() {
        cfg.factor = factor_override;
    }
    cfg.milp.metrics = obs.metrics.clone();
    cfg.milp.tracer = obs.tracer.clone();
    // Span covering the whole cell drive: every tick, probe, and solver
    // event recorded below nests inside it in the flight recorder.
    let _cell_span = obs.tracer.span(
        "campaign.drive_cell",
        vec![
            ("label", spec.label.clone()),
            ("threads", cfg.threads.to_string()),
            ("factor", cfg.milp_config().factor.name().to_string()),
        ],
    );
    let mut current = match resume {
        Some(s) => s,
        None => spec.fresh_state()?,
    };

    loop {
        // Only the *cell* timeout may cut a tick short mid-slice (that is
        // its documented determinism-for-liveness tradeoff). Drain/cancel
        // stops are checked between ticks instead: every journaled
        // checkpoint then sits on a node-count boundary, so an
        // interrupted run resumes to the same node totals as an
        // uninterrupted one.
        let slice = SliceBudget {
            max_nodes: spec.slice_nodes.max(1),
            deadline: cell_deadline,
        };
        let ticked = catch_unwind(AssertUnwindSafe(|| {
            metaopt_core::sweep_tick(&inst, &heu, &cs, &cfg, current.clone(), &slice)
        }));
        match ticked {
            Ok(Ok(SweepTick::Done(final_state))) => {
                let result = final_state.result();
                let outcome = CellOutcome {
                    threshold: result.threshold,
                    verified_gap: result.witness.as_ref().map(|w| w.verified_gap),
                    demands: result.witness.map(|w| w.demands).unwrap_or_default(),
                    probes: result.probes,
                    nodes: final_state.nodes,
                };
                return Ok(CellDriveEnd::Finished(outcome));
            }
            Ok(Ok(SweepTick::Paused(next))) => {
                on_checkpoint(&next)?;
                current = next;
                if cell_deadline.is_some_and(|d| clock.now() >= d) {
                    return Ok(CellDriveEnd::Failed {
                        kind: "timeout".into(),
                        detail: format!("cell exceeded {:?}s", spec.timeout_secs),
                    });
                }
                if stop() {
                    // The checkpoint above is durable; resume continues
                    // exactly here.
                    return Ok(CellDriveEnd::Stopped);
                }
            }
            Ok(Err(err)) => {
                let (kind, detail) = classify_core_error(&err);
                return Ok(CellDriveEnd::Failed { kind, detail });
            }
            Err(p) => {
                return Ok(CellDriveEnd::Failed {
                    kind: "panic".into(),
                    detail: format!("tick panicked: {}", panic_message(&p)),
                })
            }
        }
    }
}

/// Ticks one cell until it finishes, fails, times out, or the campaign
/// drains. `last_good` tracks the latest *journaled* state.
fn attempt_cell(
    shared: &Shared,
    idx: usize,
    spec: &CellSpec,
    last_good: &mut Option<SweepState>,
    cell_deadline: Option<Instant>,
) -> Result<AttemptEnd, CampaignError> {
    let resume = last_good.clone();
    let obs = SolverObs {
        metrics: shared.metrics.solver.clone(),
        tracer: shared.tracer.clone(),
    };
    let end = drive_cell(
        spec,
        shared.threads_per_cell,
        shared.factor_per_cell,
        resume,
        cell_deadline,
        &*shared.clock,
        &obs,
        &mut |next| {
            shared.append(&format!("ckpt {idx} {}", encode_sweep_state(next)))?;
            *last_good = Some(next.clone());
            Ok(())
        },
        &mut || shared.drain_requested(),
    )?;
    Ok(match end {
        CellDriveEnd::Finished(outcome) => {
            shared.append(&format!("done {idx} {}", outcome.encode()))?;
            AttemptEnd::Finished
        }
        CellDriveEnd::Failed { kind, detail } => AttemptEnd::Failed { kind, detail },
        CellDriveEnd::Stopped => AttemptEnd::DrainedMidCell,
    })
}

/// Maps a core error onto the journal's failure taxonomy. Configuration,
/// model-construction, and model-check failures are deterministic —
/// retrying cannot change them — so they quarantine immediately.
fn classify_core_error(err: &CoreError) -> (String, String) {
    match err {
        CoreError::Config(_) | CoreError::Model(_) | CoreError::ModelCheck(_) => {
            ("fatal".into(), err.to_string())
        }
        CoreError::Milp(_) | CoreError::Te(_) => ("solver".into(), err.to_string()),
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}
