//@ rel: crates/te/src/eval.rs
//@ expect: AN003 4:10
fn saturated(util: f64) -> bool {
    util == 1.0
}
