//! Presolve/postsolve round-trip properties, on LPs engineered so the
//! reductions actually fire: random bounded feasible cores are wrapped
//! with fixed variables, singleton rows, empty rows, and strictly
//! redundant rows. The postsolved solution must
//!
//! * match a direct simplex solve of the *original* problem on status
//!   and objective,
//! * be primally feasible in the original problem, and
//! * carry a valid dual certificate: stationarity of the reduced costs
//!   against the original matrix, sign-correct reduced costs at the
//!   bounds, and complementary slackness for every reconstructed row
//!   dual (a nonzero multiplier only on a binding row, with the sign the
//!   minimization convention demands — active `<=` side `y <= 0`, active
//!   `>=` side `y >= 0`).

use metaopt_lp::{LpProblem, Presolve, RowSense, Simplex, SolveStatus, VarId, INF, NEG_INF};
use proptest::prelude::*;

const OBJ_TOL: f64 = 1e-7;
const FEAS_TOL: f64 = 1e-6;
const DUAL_TOL: f64 = 1e-5;

/// A random LP plus the interior anchor point that made it feasible.
#[derive(Debug, Clone)]
struct Decorated {
    problem: LpProblem,
}

/// Core generator: boxed variables, rows anchored at an interior point —
/// then decorated with every structure presolve targets.
#[allow(clippy::too_many_arguments)]
fn build_decorated(
    vars: &[(f64, f64, f64)],
    rows: &[(Vec<Option<f64>>, usize, f64)],
    anchor: &[f64],
    fixed_vals: &[Option<f64>],
    singletons: &[(usize, f64, f64)],
    add_empty: bool,
    add_redundant: bool,
) -> Decorated {
    let mut p = LpProblem::new();
    let mut ids = Vec::new();
    let mut point = Vec::new();
    for (i, (lo_off, width, obj)) in vars.iter().enumerate() {
        let (lo, hi, at) = match fixed_vals[i] {
            // A fixed variable: presolve substitutes it out.
            Some(t) => {
                let v = lo_off + t * width;
                (v, v, v)
            }
            None => (*lo_off, lo_off + width, lo_off + anchor[i] * width),
        };
        ids.push(p.add_var(lo, hi, *obj).unwrap());
        point.push(at);
    }
    for (coeffs, sense_sel, margin) in rows {
        let entries: Vec<(usize, f64)> = coeffs
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|v| (j, v)))
            .collect();
        if entries.is_empty() {
            continue;
        }
        let act: f64 = entries.iter().map(|(j, c)| c * point[*j]).sum();
        let it = entries.iter().map(|(j, c)| (ids[*j], *c));
        match sense_sel {
            0 => p.add_row(RowSense::Le, act + margin, it).unwrap(),
            1 => p.add_row(RowSense::Ge, act - margin, it).unwrap(),
            _ => p.add_row(RowSense::Eq, act, it).unwrap(),
        };
    }
    // Singleton rows: `coef * x_j <= coef * point_j + slack` (kept
    // feasible at the anchor; tightening may still bind at the optimum).
    for &(j, coef, slack) in singletons {
        let j = j % ids.len();
        p.add_row(RowSense::Le, coef * point[j] + slack, [(ids[j], coef)])
            .unwrap();
    }
    if add_empty {
        // 0 ∈ [-1, ∞): trivially satisfiable empty row.
        p.add_row(RowSense::Ge, -1.0, std::iter::empty::<(VarId, f64)>())
            .unwrap();
    }
    if add_redundant {
        // Σ x_j over the whole box cannot exceed Σ max(|lo|,|hi|) + 10:
        // strictly redundant at any feasible point.
        let cap: f64 = vars
            .iter()
            .zip(fixed_vals)
            .map(|((lo, w, _), f)| match f {
                Some(t) => (lo + t * w).abs(),
                None => lo.abs().max((lo + w).abs()),
            })
            .sum::<f64>()
            + 10.0;
        p.add_row(RowSense::Le, cap, ids.iter().map(|&v| (v, 1.0)))
            .unwrap();
    }
    Decorated { problem: p }
}

fn decorated_strategy() -> impl Strategy<Value = Decorated> {
    (2usize..7, 1usize..8).prop_flat_map(|(n, m)| {
        let var_data = proptest::collection::vec((-4.0f64..4.0, 0.2f64..6.0, -3.0f64..3.0), n);
        let row_data = proptest::collection::vec(
            (
                proptest::collection::vec(proptest::option::weighted(0.6, -2.0f64..2.0), n),
                0usize..3,
                0.5f64..5.0,
            ),
            m,
        );
        let anchor = proptest::collection::vec(0.0f64..1.0, n);
        let fixed = proptest::collection::vec(proptest::option::weighted(0.25, 0.0f64..1.0), n);
        let singles = proptest::collection::vec((0usize..8, 0.5f64..2.0, 0.0f64..4.0), 0..3);
        (
            var_data,
            row_data,
            anchor,
            fixed,
            singles,
            0usize..2,
            0usize..2,
        )
            .prop_map(|(vars, rows, anchor, fixed, singles, emp, red)| {
                build_decorated(&vars, &rows, &anchor, &fixed, &singles, emp == 1, red == 1)
            })
    })
}

/// Full KKT audit of a postsolved optimal solution against the original
/// problem: primal feasibility, stationarity, bound-sign correctness of
/// the reduced costs, and complementary slackness of every row dual.
fn assert_certificate(p: &LpProblem, sol: &metaopt_lp::Solution) {
    let n = p.n_vars();
    // Primal feasibility.
    assert!(
        p.max_violation(&sol.x) <= FEAS_TOL,
        "postsolved point violates original rows by {}",
        p.max_violation(&sol.x)
    );
    for j in 0..n {
        let (lo, hi) = p.bounds(VarId(j));
        assert!(
            sol.x[j] >= lo - FEAS_TOL && sol.x[j] <= hi + FEAS_TOL,
            "x[{j}] = {} outside [{lo}, {hi}]",
            sol.x[j]
        );
    }
    // Stationarity: the reported reduced costs must BE c - Aᵀy.
    let mut rc: Vec<f64> = (0..n).map(|j| p.obj_coef(VarId(j))).collect();
    for &(r, c, v) in p.triplets() {
        rc[c] -= sol.duals[r] * v;
    }
    for (j, (&mine, &theirs)) in rc.iter().zip(&sol.reduced_costs).enumerate() {
        assert!(
            (mine - theirs).abs() <= DUAL_TOL * (1.0 + mine.abs()),
            "rc[{j}] reported {theirs}, recomputed {mine}"
        );
    }
    // Reduced-cost signs at the bounds (minimization): interior ⇒ rc ≈ 0,
    // at lower ⇒ rc ≥ −tol, at upper ⇒ rc ≤ tol.
    for (j, &rcj) in rc.iter().enumerate() {
        let (lo, hi) = p.bounds(VarId(j));
        let xj = sol.x[j];
        let scale = DUAL_TOL * (1.0 + rcj.abs());
        let at_lo = (xj - lo).abs() <= FEAS_TOL;
        let at_hi = (hi - xj).abs() <= FEAS_TOL;
        if !at_lo && !at_hi {
            assert!(
                rcj.abs() <= scale,
                "interior x[{j}] with nonzero reduced cost {rcj}"
            );
        } else {
            if at_lo && !at_hi {
                assert!(rcj >= -scale, "x[{j}] at lower with rc {rcj}");
            }
            if at_hi && !at_lo {
                assert!(rcj <= scale, "x[{j}] at upper with rc {rcj}");
            }
        }
    }
    // Complementary slackness with sign: a nonzero y[i] demands a binding
    // row, on the side its sign selects.
    let acts = p.row_activity(&sol.x);
    for (i, (&yi, &act)) in sol.duals.iter().zip(&acts).enumerate() {
        if yi.abs() <= DUAL_TOL {
            continue;
        }
        let (rlo, rhi) = p.row_bounds(i);
        let atol = FEAS_TOL * (1.0 + act.abs());
        if yi < 0.0 {
            // Active `<=` side.
            assert!(
                (act - rhi).abs() <= atol,
                "y[{i}] = {yi} < 0 but activity {act} is slack of upper {rhi}"
            );
        } else {
            // Active `>=` side.
            assert!(
                (act - rlo).abs() <= atol,
                "y[{i}] = {yi} > 0 but activity {act} is slack of lower {rlo}"
            );
        }
    }
}

fn round_trip(d: &Decorated) {
    let direct = Simplex::new(&d.problem).solve().expect("direct solve");
    let via = Presolve::solve(&d.problem).expect("presolved solve");
    assert_eq!(via.status, direct.status, "status diverged");
    if direct.status != SolveStatus::Optimal {
        return;
    }
    assert!(
        (via.objective - direct.objective).abs() <= OBJ_TOL * (1.0 + direct.objective.abs()),
        "objective diverged: direct {} vs presolved {}",
        direct.objective,
        via.objective
    );
    assert_eq!(via.x.len(), d.problem.n_vars());
    assert_eq!(via.duals.len(), d.problem.n_rows());
    assert_certificate(&d.problem, &via);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Presolve → simplex → postsolve equals a direct solve, with a full
    /// dual certificate on the original problem.
    #[test]
    fn presolve_round_trip_preserves_solutions(d in decorated_strategy()) {
        round_trip(&d);
    }
}

/// Deterministic regression set over the same decorated family.
#[test]
fn seeded_round_trip_matrix() {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut unit = {
        let mut n2 = next;
        move || (n2() >> 11) as f64 / (1u64 << 53) as f64
    };
    for case in 0..64 {
        let n = 2 + (unit() * 5.0) as usize;
        let m = 1 + (unit() * 7.0) as usize;
        let vars: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    -4.0 + 8.0 * unit(),
                    0.2 + 5.8 * unit(),
                    -3.0 + 6.0 * unit(),
                )
            })
            .collect();
        let rows: Vec<(Vec<Option<f64>>, usize, f64)> = (0..m)
            .map(|_| {
                let coeffs = (0..n)
                    .map(|_| (unit() < 0.6).then(|| -2.0 + 4.0 * unit()))
                    .collect();
                ((coeffs), (unit() * 3.0) as usize, 0.5 + 4.5 * unit())
            })
            .collect();
        let anchor: Vec<f64> = (0..n).map(|_| unit()).collect();
        let fixed: Vec<Option<f64>> = (0..n).map(|_| (unit() < 0.25).then(&mut unit)).collect();
        let singles: Vec<(usize, f64, f64)> = (0..(unit() * 3.0) as usize)
            .map(|_| ((unit() * 8.0) as usize, 0.5 + 1.5 * unit(), 4.0 * unit()))
            .collect();
        let d = build_decorated(
            &vars,
            &rows,
            &anchor,
            &fixed,
            &singles,
            case % 2 == 0,
            case % 3 == 0,
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| round_trip(&d)));
        assert!(r.is_ok(), "round trip failed at seeded case {case}");
    }
}

/// Presolve alone proves infeasibility of contradictory singleton pairs —
/// no simplex run, original-shape `Infeasible` solution out.
#[test]
fn presolve_detects_contradiction_without_simplex() {
    let mut p = LpProblem::new();
    let x = p.add_var(NEG_INF, INF, 1.0).unwrap();
    let y = p.add_var(0.0, 5.0, -1.0).unwrap();
    p.add_row(RowSense::Ge, 7.0, [(x, 1.0)]).unwrap();
    p.add_row(RowSense::Le, 6.5, [(x, 1.0)]).unwrap();
    p.add_row(RowSense::Le, 4.0, [(x, 0.0), (y, 1.0)]).unwrap();
    let sol = Presolve::solve(&p).unwrap();
    assert_eq!(sol.status, SolveStatus::Infeasible);
    assert_eq!(sol.x.len(), 2);
    assert_eq!(sol.duals.len(), 3);
}
