//@ rel: crates/milp/src/parallel.rs
//@ expect: AN103 7:6
use std::sync::Mutex;

struct Shared {
    // lock-order: cyc-a -> cyc-b
    a: Mutex<u64>,
    // lock-order: cyc-b -> cyc-a
    b: Mutex<u64>,
}
