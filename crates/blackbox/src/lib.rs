#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-blackbox
//!
//! The black-box baselines of §3.4: local search over demand vectors using
//! only gap *evaluations* (no knowledge of the heuristic's structure).
//!
//! * [`hill_climb`] — Algorithm 1 of the paper: Gaussian neighborhood
//!   moves (`σ` = 10% of link capacity), patience `K` = 100, restarted
//!   from fresh random demands until the time budget runs out,
//! * [`simulated_annealing`] — the annealed variant (`t₀` = 500,
//!   `γ` = 0.1, `K_p` = 100) that accepts downhill moves with probability
//!   `exp(Δgap / t_p)`,
//! * [`random_search`] — uniform sampling, the weakest baseline.
//!
//! All searches record a best-gap-vs-time trajectory so Figure 3 can plot
//! quality against latency for every method.

mod gaussian;
mod search;

pub use search::{
    hill_climb, random_search, simulated_annealing, SearchConfig, SearchOutcome,
};

pub use gaussian::GaussianSampler;
