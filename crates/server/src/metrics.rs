//! Pre-registered obs handles for the job server.
//!
//! One `ServerMetrics` lives inside [`crate::GapServer`], built from the
//! registry handed in via [`crate::ServerConfig`]. Route families are
//! pre-registered for every route the API serves (plus a `not_found`
//! bucket), so the hot request path never takes the registry lock — it
//! looks handles up in an immutable map built at boot.
//!
//! The `metaopt_server_jobs_*` counters carry the crash-recovery
//! consistency contract: at boot, [`crate::GapServer::open`] re-derives
//! them from the replayed journal (admitted = every `job` record,
//! completed/quarantined/cancelled = terminal statuses, retried = failed
//! attempts that did not quarantine), so after a `kill -9` the scraped
//! values line up with what the pre-kill process reported for all durable
//! transitions. The crash drill in CI asserts exactly that.

use metaopt_milp::MilpMetrics;
use metaopt_obs::metrics::LATENCY_BUCKETS_SECS;
use metaopt_obs::{Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;

/// Route names used as the `route` label. `route_name` in the API layer
/// maps every request onto one of these; keeping the list closed means
/// a scanning client cannot mint unbounded label values.
pub const ROUTES: &[&str] = &[
    "healthz",
    "jobs_list",
    "jobs_submit",
    "job_get",
    "job_events",
    "job_cancel",
    "admin_drain",
    "admin_trace",
    "metrics",
    "not_found",
];

/// Per-route request handles.
#[derive(Debug, Clone, Default)]
pub struct RouteMetrics {
    /// Requests served on this route.
    pub requests: Counter,
    /// Wall-clock handling latency (includes response write).
    pub latency: Histogram,
}

/// Counter/gauge/histogram handles for the job server.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    routes: BTreeMap<&'static str, RouteMetrics>,
    /// Admission queue depth (updated at every push/pop site).
    pub queue_depth: Gauge,
    /// Live HTTP connections being serviced.
    pub active_connections: Gauge,
    /// Submissions refused by the per-client token bucket.
    pub quota_rejections: Counter,
    /// Connections shed at the acceptor's hard cap.
    pub shed_connections: Counter,
    /// Submissions shed because the bounded queue was full.
    pub shed_queue_full: Counter,
    /// Jobs durably admitted (journal `job` record fsynced).
    pub jobs_admitted: Counter,
    /// Jobs that reached `done`.
    pub jobs_completed: Counter,
    /// Jobs quarantined.
    pub jobs_quarantined: Counter,
    /// Jobs cancelled.
    pub jobs_cancelled: Counter,
    /// Failed attempts re-queued by the retry policy.
    pub jobs_retried: Counter,
    /// Sandboxed worker children spawned.
    pub workers_spawned: Counter,
    /// Workers killed for an RSS-limit breach.
    pub workers_killed_oom: Counter,
    /// Workers killed for a wall-clock-limit breach.
    pub workers_killed_deadline: Counter,
    /// Workers killed for heartbeat silence.
    pub workers_killed_heartbeat: Counter,
    /// Worker children that exited without a terminal result frame.
    pub workers_lost: Counter,
    /// Stale results rejected by lease fencing (a write arriving under a
    /// fence token that is no longer the job's current lease).
    pub workers_fenced: Counter,
    /// Solver-stack counters installed on every job attempt's
    /// branch-and-bound config (nodes, waves, steals, node-LP pivots).
    pub solver: MilpMetrics,
}

impl ServerMetrics {
    /// No-op handles.
    pub fn disabled() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Registers the `metaopt_server_*` families on `registry`.
    pub fn register(registry: &Registry) -> ServerMetrics {
        let mut routes = BTreeMap::new();
        for &route in ROUTES {
            routes.insert(
                route,
                RouteMetrics {
                    requests: registry.counter(
                        "metaopt_server_requests_total",
                        "HTTP requests served",
                        &[("route", route)],
                    ),
                    latency: registry.histogram(
                        "metaopt_server_request_seconds",
                        "HTTP request handling latency",
                        &[("route", route)],
                        LATENCY_BUCKETS_SECS,
                    ),
                },
            );
        }
        ServerMetrics {
            routes,
            queue_depth: registry.gauge(
                "metaopt_server_queue_depth",
                "Admission queue depth",
                &[],
            ),
            active_connections: registry.gauge(
                "metaopt_server_active_connections",
                "Live HTTP connections",
                &[],
            ),
            quota_rejections: registry.counter(
                "metaopt_server_quota_rejections_total",
                "Submissions refused by per-client quotas",
                &[],
            ),
            shed_connections: registry.counter(
                "metaopt_server_shed_total",
                "Load shed by class",
                &[("class", "connection_limit")],
            ),
            shed_queue_full: registry.counter(
                "metaopt_server_shed_total",
                "Load shed by class",
                &[("class", "queue_full")],
            ),
            jobs_admitted: registry.counter(
                "metaopt_server_jobs_admitted_total",
                "Jobs durably admitted",
                &[],
            ),
            jobs_completed: registry.counter(
                "metaopt_server_jobs_completed_total",
                "Jobs completed with certified results",
                &[],
            ),
            jobs_quarantined: registry.counter(
                "metaopt_server_jobs_quarantined_total",
                "Jobs quarantined",
                &[],
            ),
            jobs_cancelled: registry.counter(
                "metaopt_server_jobs_cancelled_total",
                "Jobs cancelled",
                &[],
            ),
            jobs_retried: registry.counter(
                "metaopt_server_jobs_retried_total",
                "Failed attempts re-queued for retry",
                &[],
            ),
            workers_spawned: registry.counter(
                "metaopt_server_workers_spawned_total",
                "Sandboxed worker children spawned",
                &[],
            ),
            workers_killed_oom: registry.counter(
                "metaopt_server_workers_killed_total",
                "Worker children killed by the supervisor, by reason",
                &[("reason", "oom")],
            ),
            workers_killed_deadline: registry.counter(
                "metaopt_server_workers_killed_total",
                "Worker children killed by the supervisor, by reason",
                &[("reason", "deadline")],
            ),
            workers_killed_heartbeat: registry.counter(
                "metaopt_server_workers_killed_total",
                "Worker children killed by the supervisor, by reason",
                &[("reason", "heartbeat")],
            ),
            workers_lost: registry.counter(
                "metaopt_server_workers_lost_total",
                "Worker children that exited without a result frame",
                &[],
            ),
            workers_fenced: registry.counter(
                "metaopt_server_workers_fenced_total",
                "Stale worker results rejected by lease fencing",
                &[],
            ),
            solver: MilpMetrics::register(registry),
        }
    }

    /// Handles for `route` (no-ops if the route is unknown or metrics are
    /// disabled).
    pub fn route(&self, route: &str) -> RouteMetrics {
        self.routes.get(route).cloned().unwrap_or_default()
    }
}
