//! The single-shot adversarial gap finder (Eq. 1, §3.1).

use crate::check::{check_adversarial_model, gate, ModelCheckMode};
use crate::constraints::ConstrainedSet;
use crate::encode_dp::encode_dp;
use crate::encode_opt::encode_opt;
use crate::encode_pop::{encode_pop, PopMode};
use crate::result::GapResult;
use crate::{CoreError, CoreResult};
use metaopt_blackbox::GaussianSampler;
use metaopt_milp::{
    solve, solve_with_callback, IncumbentCallback, MilpConfig, MilpError, MilpStatus,
};
use metaopt_model::{LinExpr, Model, ModelStats, ObjSense, VarRef};
use metaopt_resilience::{Budget, DegradationLevel, SolverFault};
use metaopt_te::pop::Partition;
use metaopt_te::{opt::opt_max_flow, TeInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// How the inner OPT problem is encoded (see [`crate::encode_opt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptEncoding {
    /// Full KKT rewrite — the paper's method (§3.1).
    Kkt,
    /// Primal feasibility only — sound for the positively-signed inner max;
    /// halves the complementarity count (ablation; cf. §5 "alternative
    /// rewrites").
    PrimalOnly,
}

/// The heuristic under analysis, in encodable form.
#[derive(Debug, Clone)]
pub enum HeuristicSpec {
    /// Demand Pinning with threshold `T_d` (Eq. 4).
    DemandPinning {
        /// Pin threshold in absolute volume units.
        threshold: f64,
    },
    /// POP over fixed partition instantiations (Eq. 6).
    Pop {
        /// The (pre-drawn) random partitions.
        partitions: Vec<Partition>,
        /// Average or tail-statistic summarization (§3.2).
        mode: PopMode,
    },
}

impl HeuristicSpec {
    /// Evaluates the *real* heuristic on concrete demands, exactly as the
    /// encoding models it. Returns `None` for inputs outside the heuristic's
    /// domain (DP-infeasible pinning, §5).
    pub fn evaluate(&self, inst: &TeInstance, demands: &[f64]) -> CoreResult<Option<f64>> {
        match self {
            HeuristicSpec::DemandPinning { threshold } => {
                let out = metaopt_te::demand_pinning::demand_pinning(inst, demands, *threshold)?;
                Ok(out.feasible.then_some(out.total_flow))
            }
            HeuristicSpec::Pop { partitions, mode } => {
                let mut totals = Vec::with_capacity(partitions.len());
                for p in partitions {
                    totals.push(metaopt_te::pop::pop_max_flow(inst, demands, p)?.total_flow);
                }
                Ok(Some(match mode {
                    PopMode::Average => totals.iter().sum::<f64>() / totals.len() as f64,
                    PopMode::TailWorst { rank } => {
                        let mut s = totals.clone();
                        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        s[*rank]
                    }
                }))
            }
        }
    }

    /// Display label for experiment output.
    pub fn label(&self) -> String {
        match self {
            HeuristicSpec::DemandPinning { threshold } => format!("DP(T={threshold})"),
            HeuristicSpec::Pop { partitions, mode } => format!(
                "POP(parts={}, inst={}, {:?})",
                partitions.first().map_or(0, |p| p.n_parts),
                partitions.len(),
                mode
            ),
        }
    }
}

/// Finder configuration.
#[derive(Debug, Clone)]
pub struct FinderConfig {
    /// OPT encoding choice (default: paper-faithful KKT).
    pub opt_encoding: OptEncoding,
    /// Branch-and-bound budget/stop configuration.
    pub milp: MilpConfig,
    /// Whether to run the candidate-evaluation incumbent callback (strongly
    /// recommended; it is how good solutions appear early).
    pub use_incumbent_callback: bool,
    /// DP's threshold exclusion half-width ε (absolute units).
    pub epsilon: f64,
    /// Upper bound for KKT multipliers (∞ is always sound; finite values
    /// can speed up branching but risk cutting the true multipliers).
    pub dual_bound: f64,
    /// Budget (true-gap evaluations) of the callback's coordinate-
    /// improvement sweep at each consulted node.
    pub callback_evals_per_node: usize,
    /// End-to-end anytime budget for the whole run (white-box search plus
    /// any degraded fallbacks). Composed with `milp.time_limit` /
    /// `milp.max_nodes` — the tightest limit wins. Budgets hold *absolute*
    /// deadlines: the clock starts when the budget is created, not when
    /// the finder is called.
    pub budget: Budget,
    /// Seed for the black-box fallback rung (deterministic fallbacks).
    pub fallback_seed: u64,
    /// Static model-checker gate run on every assembled program before the
    /// solve (deny-by-default: error diagnostics abort in debug builds and
    /// are recorded as [`SolverFault::EncodingSuspect`] faults in release).
    pub modelcheck: ModelCheckMode,
    /// Worker threads for the branch-and-bound searches this finder runs.
    /// `0` (the default) defers to `milp.threads`, which itself defers to
    /// the `METAOPT_THREADS` environment variable; a nonzero value here
    /// overrides both. The engine choice stays with `milp.parallel`
    /// (default [`metaopt_milp::ParallelMode::Auto`]: serial at one
    /// thread, deterministic-parallel above).
    pub threads: usize,
    /// Basis-factorization backend override for every LP relaxation this
    /// finder solves. `None` (the default) defers to `milp.factor`, which
    /// itself resolves the `METAOPT_FACTOR` environment variable (sparse
    /// LU when unset).
    pub factor: Option<metaopt_milp::FactorBackend>,
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            opt_encoding: OptEncoding::Kkt,
            milp: MilpConfig::default(),
            use_incumbent_callback: true,
            epsilon: 1e-3,
            dual_bound: f64::INFINITY,
            callback_evals_per_node: 16,
            budget: Budget::unlimited(),
            fallback_seed: 0,
            modelcheck: ModelCheckMode::default(),
            threads: 0,
            factor: None,
        }
    }
}

impl FinderConfig {
    /// Convenience: paper-faithful encoding with a wall-clock budget and
    /// the §3.3 stall rule. The budget is *anytime*: it covers model
    /// build, the MILP search, and any degraded fallback rungs, and the
    /// clock starts now.
    pub fn budgeted(seconds: f64) -> Self {
        FinderConfig {
            milp: MilpConfig {
                time_limit: Some(std::time::Duration::from_secs_f64(seconds)),
                stall_window: Some(std::time::Duration::from_secs_f64(
                    (seconds / 3.0).max(1.0),
                )),
                ..MilpConfig::default()
            },
            budget: Budget::from_secs_f64(seconds),
            ..Default::default()
        }
    }

    /// The [`MilpConfig`] actually handed to branch-and-bound: `milp` with
    /// the finder-level [`FinderConfig::threads`] override applied.
    pub fn milp_config(&self) -> MilpConfig {
        let mut m = self.milp.clone();
        if self.threads > 0 {
            m.threads = self.threads;
        }
        if let Some(f) = self.factor {
            m.factor = f;
        }
        m
    }
}

/// The assembled single-shot model plus handles into it.
#[derive(Debug, Clone)]
pub struct AdversarialModel {
    /// The combined model (outer vars + KKT systems + objective).
    pub model: Model,
    /// Demand variable per pair.
    pub d: Vec<VarRef>,
    /// OPT's total-flow expression.
    pub opt_total: LinExpr,
    /// The heuristic's (deterministic) value expression.
    pub heu_value: LinExpr,
    /// Demand upper bound used.
    pub d_hi: f64,
}

impl AdversarialModel {
    /// Figure-6 style size statistics of the single-shot program.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            n_vars: self.model.n_vars() + self.model.n_complementarities(),
            n_linear: self.model.n_constraints() + self.model.n_complementarities(),
            n_sos: self.model.n_complementarities(),
            n_binary: (0..self.model.n_vars())
                .filter(|&i| self.model.var_kind(VarRef(i)) == metaopt_model::VarKind::Binary)
                .count(),
        }
    }
}

/// Builds the single-shot adversarial program without solving it (used by
/// the Figure-6 size study and by callers that want custom solving).
pub fn build_adversarial_model(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
) -> CoreResult<AdversarialModel> {
    let d_hi = constraints.d_max.unwrap_or_else(|| inst.demand_cap());
    if d_hi.is_nan() || d_hi <= 0.0 {
        return Err(CoreError::Config(format!("bad demand bound {d_hi}")));
    }
    let mut model = Model::new();
    let d: Vec<VarRef> = (0..inst.n_pairs())
        .map(|k| model.add_var(format!("d[{k}]"), 0.0, d_hi))
        .collect::<Result<_, _>>()?;
    constraints.apply(&mut model, &d, d_hi)?;

    let opt = encode_opt(&mut model, inst, &d, cfg.opt_encoding, cfg.dual_bound)?;
    let heu_value = match spec {
        HeuristicSpec::DemandPinning { threshold } => {
            let enc = encode_dp(
                &mut model,
                inst,
                &d,
                *threshold,
                d_hi,
                cfg.epsilon,
                cfg.dual_bound,
            )?;
            enc.total_flow
        }
        HeuristicSpec::Pop { partitions, mode } => {
            let enc = encode_pop(&mut model, inst, &d, partitions, *mode, cfg.dual_bound)?;
            enc.heuristic_value
        }
    };

    let mut objective = opt.total_flow.clone();
    objective -= heu_value.clone();
    model.set_objective(ObjSense::Max, objective)?;

    Ok(AdversarialModel {
        model,
        d,
        opt_total: opt.total_flow,
        heu_value,
        d_hi,
    })
}

/// Incumbent callback: evaluate candidate demands with the *real* OPT and
/// heuristic, yielding a certified feasible gap — the domain-specific
/// primal heuristic that makes good solutions appear early (the role
/// Gurobi's internal MIP heuristics play in the paper's setup; documented
/// in DESIGN.md).
///
/// Three candidate sources, all vetted against the constrained set and the
/// real evaluators:
///
/// 1. the relaxation's demand values (snapped out of DP's ε-window),
/// 2. structure-aware roundings of the relaxation (for DP: pin-eligible
///    demands snapped to the threshold, the rest to the box; for POP: the
///    relaxation and the all-max corner),
/// 3. a budgeted round-robin coordinate improvement over the level set
///    `{0, T, d_hi}` (resp. `{0, d_hi/2, d_hi}`), resumed across calls.
pub(crate) struct CandidateEvaluator<'a> {
    inst: &'a TeInstance,
    spec: &'a HeuristicSpec,
    constraints: &'a ConstrainedSet,
    d_indices: Vec<usize>,
    d_hi: f64,
    n_model_vars: usize,
    /// Snap-away window for DP's excluded `(T, T+ε)` slice.
    snap: Option<(f64, f64)>,
    /// Best certified candidate so far `(demands, gap)`.
    best: Option<(Vec<f64>, f64)>,
    /// Next coordinate for the round-robin improvement sweep.
    sweep_cursor: usize,
    /// Evaluation budget per `propose` call.
    evals_per_call: usize,
    calls: usize,
}

impl CandidateEvaluator<'_> {
    /// Certified gap of a candidate, or `None` if outside the constrained
    /// set / the heuristic's domain.
    fn certify(&self, demands: &[f64]) -> Option<f64> {
        if !self.constraints.contains(demands, 1e-7) {
            return None;
        }
        let heu = self.spec.evaluate(self.inst, demands).ok()??;
        let opt = opt_max_flow(self.inst, demands).ok()?.total_flow;
        Some(opt - heu)
    }

    fn snap_window(&self, demands: &mut [f64]) {
        if let Some((t, eps)) = self.snap {
            for v in demands.iter_mut() {
                if *v > t && *v < t + eps {
                    *v = t;
                }
            }
        }
    }

    /// The coordinate levels the improvement sweep explores. A quantization
    /// grid, when present, overrides the heuristic-specific defaults (all
    /// candidates must live on the grid to pass `ConstrainedSet::contains`).
    fn levels(&self) -> Vec<f64> {
        if let Some(grid) = &self.constraints.quantize_levels {
            return grid.clone();
        }
        match self.spec {
            HeuristicSpec::DemandPinning { threshold } => {
                vec![0.0, threshold.min(self.d_hi), self.d_hi]
            }
            HeuristicSpec::Pop { .. } => vec![0.0, 0.5 * self.d_hi, self.d_hi],
        }
    }

    /// Snaps a demand vector onto the quantization grid (nearest level).
    fn snap_grid(&self, demands: &mut [f64]) {
        if let Some(grid) = &self.constraints.quantize_levels {
            for v in demands.iter_mut() {
                let mut best = grid[0];
                for &l in grid {
                    if (l - *v).abs() < (best - *v).abs() {
                        best = l;
                    }
                }
                *v = best;
            }
        }
    }

    fn consider(&mut self, demands: Vec<f64>, evals: &mut usize) {
        *evals += 1;
        if let Some(g) = self.certify(&demands) {
            let better = self.best.as_ref().is_none_or(|(_, bg)| g > *bg);
            if better {
                self.best = Some((demands, g));
            }
        }
    }

    /// Last-rung black-box fallback: Gaussian hill climbing with random
    /// restarts over the demand box, every candidate snapped onto the
    /// constrained set's grid and vetted through [`Self::certify`] (unlike
    /// the raw `metaopt-blackbox` searches, which know nothing about
    /// [`ConstrainedSet`]). Improvements accumulate in `self.best`.
    /// Returns the number of gap evaluations performed.
    pub(crate) fn blackbox_fallback(&mut self, budget: Budget, seed: u64) -> usize {
        let n = self.d_indices.len();
        if n == 0 {
            return 0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gauss = GaussianSampler::new((0.10 * self.d_hi).max(f64::MIN_POSITIVE));
        let mut evals = 0usize;
        // Deterministic corner seeds first — on tiny budgets these may be
        // the only candidates that get certified.
        for cand in [
            vec![0.0; n],
            vec![self.d_hi; n],
            vec![0.5 * self.d_hi; n],
        ] {
            let mut c = cand;
            self.snap_window(&mut c);
            self.snap_grid(&mut c);
            self.consider(c, &mut evals);
            if budget.expired() {
                return evals;
            }
        }
        // Hill climb from the incumbent; restart from a uniform draw after
        // a patience window without improvement. A hard evaluation cap
        // guards against an unlimited budget ever reaching this rung.
        const PATIENCE: usize = 64;
        const MAX_EVALS: usize = 20_000;
        let mut stale = 0usize;
        while !budget.expired() && evals < MAX_EVALS {
            let base: Vec<f64> = match &self.best {
                Some((b, _)) if stale < PATIENCE => b.clone(),
                _ => {
                    stale = 0;
                    (0..n).map(|_| rng.gen_range(0.0..=self.d_hi)).collect()
                }
            };
            let mut cand: Vec<f64> = base
                .iter()
                .map(|&x| (x + gauss.sample(&mut rng)).clamp(0.0, self.d_hi))
                .collect();
            self.snap_window(&mut cand);
            self.snap_grid(&mut cand);
            let before = self.best.as_ref().map(|(_, g)| *g);
            self.consider(cand, &mut evals);
            let after = self.best.as_ref().map(|(_, g)| *g);
            if after > before {
                stale = 0;
            } else {
                stale += 1;
            }
        }
        evals
    }
}

impl IncumbentCallback for CandidateEvaluator<'_> {
    fn propose(&mut self, relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        self.calls += 1;
        let budget = if self.calls == 1 {
            // The pre-root seeding call gets a deeper improvement sweep —
            // it may be the only certified answer if the root LP eats the
            // whole wall budget on very large instances.
            self.evals_per_call * 8
        } else {
            self.evals_per_call
        };
        let mut evals = 0usize;
        let before = self.best.as_ref().map(|(_, g)| *g);

        // 1. Relaxation demands as-is.
        let mut relax_d: Vec<f64> = self
            .d_indices
            .iter()
            .map(|&i| relaxation[i].clamp(0.0, self.d_hi))
            .collect();
        self.snap_window(&mut relax_d);
        self.snap_grid(&mut relax_d);
        self.consider(relax_d.clone(), &mut evals);

        // 2. Structure-aware roundings (only worth doing early on).
        if self.calls <= 3 {
            match self.spec {
                HeuristicSpec::DemandPinning { threshold } => {
                    let t = threshold.min(self.d_hi);
                    // Pin-eligible demands snapped to the threshold (maximum
                    // pinnable volume), the rest to the box top.
                    let mut snapped: Vec<f64> = relax_d
                        .iter()
                        .map(|&v| if v <= t { t } else { self.d_hi })
                        .collect();
                    self.snap_grid(&mut snapped);
                    self.consider(snapped, &mut evals);
                    // Long-shortest-path pairs pinned, one-hop pairs maxed:
                    // pinning on long paths burns capacity on many edges.
                    // Pins are added greedily longest-path-first while the
                    // pinned load stays within capacity, so the candidate is
                    // DP-feasible even on large dense instances.
                    let mut order: Vec<usize> = (0..self.inst.n_pairs()).collect();
                    order.sort_by_key(|&k| std::cmp::Reverse(self.inst.paths[k][0].len()));
                    let mut residual: Vec<f64> = self
                        .inst
                        .topo
                        .edges()
                        .map(|e| self.inst.topo.capacity(e))
                        .collect();
                    let mut structural = vec![self.d_hi; self.inst.n_pairs()];
                    for k in order {
                        if self.inst.paths[k][0].len() < 2 || t <= 0.0 {
                            continue;
                        }
                        let fits = self.inst.paths[k][0]
                            .edges
                            .iter()
                            .all(|e| residual[e.0] >= t);
                        if fits {
                            for e in &self.inst.paths[k][0].edges {
                                residual[e.0] -= t;
                            }
                            structural[k] = t;
                        }
                    }
                    self.snap_grid(&mut structural);
                    self.consider(structural, &mut evals);
                }
                HeuristicSpec::Pop { .. } => {
                    let mut all_hi = vec![self.d_hi; self.inst.n_pairs()];
                    self.snap_grid(&mut all_hi);
                    self.consider(all_hi, &mut evals);
                    let mut all_mid = vec![0.5 * self.d_hi; self.inst.n_pairs()];
                    self.snap_grid(&mut all_mid);
                    self.consider(all_mid, &mut evals);
                }
            }
        }

        // 3. Budgeted round-robin coordinate improvement from the best
        //    candidate so far.
        if let Some((base, _)) = self.best.clone() {
            let levels = self.levels();
            let n = base.len();
            let mut cand = base;
            // At most one pass over the coordinates per call (guards
            // against spinning when no level differs from the current
            // value, e.g. a single-level quantization grid).
            let mut visited = 0usize;
            while evals < budget && visited < n {
                visited += 1;
                let k = self.sweep_cursor % n;
                self.sweep_cursor = self.sweep_cursor.wrapping_add(1);
                let original = cand[k];
                for &lv in &levels {
                    if (lv - original).abs() < 1e-12 || evals >= budget {
                        continue;
                    }
                    let mut probe = cand.clone();
                    probe[k] = lv;
                    self.consider(probe, &mut evals);
                }
                // Greedy: adopt the best-so-far as the new sweep base.
                if let Some((b, _)) = &self.best {
                    cand = b.clone();
                }
            }
        }

        let (demands, gap) = self.best.as_ref()?;
        // Only report when strictly better than what we last handed over —
        // the solver keeps the running incumbent itself.
        if before.is_some_and(|b| *gap <= b + 1e-12) {
            return None;
        }
        let mut values = vec![0.0; self.n_model_vars];
        for (k, &i) in self.d_indices.iter().enumerate() {
            values[i] = demands[k];
        }
        Some((values, *gap))
    }
}

/// Builds the domain incumbent callback for an assembled model (shared by
/// the finder and the §3.3 sweep probes).
pub(crate) fn new_candidate_evaluator<'a>(
    inst: &'a TeInstance,
    spec: &'a HeuristicSpec,
    constraints: &'a ConstrainedSet,
    am: &AdversarialModel,
    cfg: &FinderConfig,
) -> CandidateEvaluator<'a> {
    CandidateEvaluator {
        inst,
        spec,
        constraints,
        d_indices: am.d.iter().map(|v| v.0).collect(),
        d_hi: am.d_hi,
        n_model_vars: am.model.n_vars(),
        snap: match spec {
            HeuristicSpec::DemandPinning { threshold } => Some((*threshold, cfg.epsilon)),
            _ => None,
        },
        best: None,
        sweep_cursor: 0,
        evals_per_call: cfg.callback_evals_per_node,
        calls: 0,
    }
}

/// The fault behind a failed MILP solve, for [`GapResult::faults`].
fn fault_of_lp_failure(e: &MilpError) -> SolverFault {
    match e {
        MilpError::Lp(lp) => lp
            .fault()
            .cloned()
            .unwrap_or_else(|| SolverFault::NumericalBreakdown(lp.to_string())),
        MilpError::Model(s) => SolverFault::NumericalBreakdown(s.clone()),
    }
}

/// Solves Eq. 1 for the given instance, heuristic, and constrained set.
///
/// This entry point is *anytime and panic-free with respect to solver
/// faults*: if the white-box MILP search dies mid-run (numerical
/// breakdown, singular basis, expired budget deep inside a re-solve), the
/// finder degrades instead of erroring —
///
/// 1. **White-box** (the normal path): branch-and-bound ran to its
///    configured stop rule ([`DegradationLevel::None`]).
/// 2. **Certified incumbent**: the MILP failed, but the domain callback
///    had already certified a candidate against the *real* OPT and
///    heuristic; that candidate is returned with no dual bound
///    ([`DegradationLevel::CertifiedIncumbentOnly`]).
/// 3. **Black-box fallback**: no certified incumbent exists; a
///    constraint-respecting hill climb spends a slice of the remaining
///    [`FinderConfig::budget`] ([`DegradationLevel::BlackboxFallback`]).
/// 4. **No solution**: every rung failed; the result is empty with
///    [`MilpStatus::NoSolution`] ([`DegradationLevel::NoSolution`]).
///
/// Only model-construction errors (bad configuration, inconsistent
/// encodings) still return `Err` — those are caller bugs, not solver
/// faults.
pub fn find_adversarial_gap(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
) -> CoreResult<GapResult> {
    // an:allow(AN001): build/solve timing reported to the user, never
    // replayed or certified; wall-clock is the honest axis here.
    let t0 = Instant::now();
    let am = build_adversarial_model(inst, spec, constraints, cfg)?;

    // Pre-solve static-analysis gate: refuse (debug) or record (release)
    // when the assembled encoding carries error-severity diagnostics.
    let mut pre_faults: Vec<SolverFault> = Vec::new();
    if cfg.modelcheck != ModelCheckMode::Off {
        let report = check_adversarial_model(inst, &am);
        if let Some(fault) = gate(&report, cfg.modelcheck)? {
            pre_faults.push(fault);
        }
    }

    let build_time = t0.elapsed();
    let stats = am.stats();

    let mut milp_cfg = cfg.milp_config();
    milp_cfg.budget = milp_cfg.budget.min_with(cfg.budget);

    // an:allow(AN001): same reporting-only wall-clock as `t0` above.
    let solve_t = Instant::now();
    let mut cb = new_candidate_evaluator(inst, spec, constraints, &am, cfg);
    let attempt = if cfg.use_incumbent_callback {
        solve_with_callback(&am.model, &milp_cfg, &mut cb)
    } else {
        solve(&am.model, &milp_cfg)
    };

    let (sol, degradation, mut faults) = match attempt {
        Ok(sol) => {
            let faults = sol.faults.clone();
            (Some(sol), DegradationLevel::None, faults)
        }
        Err(e @ MilpError::Lp(_)) => {
            let faults = vec![fault_of_lp_failure(&e)];
            // Rung 2: a candidate the callback already certified against
            // the real OPT/heuristic survives the MILP's death.
            let had_incumbent = cb.best.is_some();
            if !had_incumbent {
                // Rung 3: nothing certified yet — spend half the remaining
                // budget (or a short fixed slice when unlimited) on the
                // constraint-respecting black-box climb.
                let bb = cfg
                    .budget
                    .fraction_of_remaining(0.5, Duration::from_millis(250));
                cb.blackbox_fallback(bb, cfg.fallback_seed);
            }
            let degradation = if had_incumbent {
                DegradationLevel::CertifiedIncumbentOnly
            } else if cb.best.is_some() {
                DegradationLevel::BlackboxFallback
            } else {
                DegradationLevel::NoSolution
            };
            (None, degradation, faults)
        }
        Err(e) => return Err(e.into()), // model compilation failure
    };
    // Encoding-suspect faults recorded by the pre-solve gate come first:
    // they taint everything computed afterwards.
    if !pre_faults.is_empty() {
        pre_faults.append(&mut faults);
        faults = pre_faults;
    }

    let (demands, model_gap, upper_bound, status, nodes, solve_time, trajectory) = match &sol {
        Some(s) => (
            if s.values.is_empty() {
                vec![0.0; inst.n_pairs()]
            } else {
                am.d
                    .iter()
                    .map(|v| s.values[v.0].clamp(0.0, am.d_hi))
                    .collect()
            },
            s.objective,
            s.best_bound,
            s.status,
            s.nodes,
            s.solve_time,
            s.trajectory.clone(),
        ),
        None => match &cb.best {
            Some((d, g)) => (
                d.clone(),
                *g,
                f64::INFINITY,
                MilpStatus::Feasible,
                0,
                solve_t.elapsed(),
                Vec::new(),
            ),
            None => (
                vec![0.0; inst.n_pairs()],
                f64::NAN,
                f64::INFINITY,
                MilpStatus::NoSolution,
                0,
                solve_t.elapsed(),
                Vec::new(),
            ),
        },
    };

    // Re-measure the gap with the real algorithms (soundness check). A
    // degraded-to-empty result skips the evaluation: NaN marks "nothing
    // was found", not "the heuristic rejected the input".
    let verified_gap = if degradation == DegradationLevel::NoSolution {
        f64::NAN
    } else {
        match spec.evaluate(inst, &demands)? {
            Some(heu) => opt_max_flow(inst, &demands)?.total_flow - heu,
            None => f64::NAN, // DP-infeasible demands should never be reported
        }
    };

    Ok(GapResult {
        demands,
        model_gap,
        verified_gap,
        normalized_gap: verified_gap / inst.topo.total_capacity(),
        upper_bound,
        status,
        stats,
        nodes,
        build_time,
        solve_time,
        trajectory,
        degradation,
        faults,
    })
}

/// §5 "diverse kinds of bad inputs": finds up to `count` adversarial inputs,
/// excluding an L∞ ball of `radius` around each discovered input before the
/// next search.
pub fn find_diverse_inputs(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    count: usize,
    radius: f64,
) -> CoreResult<Vec<GapResult>> {
    let mut cs = constraints.clone();
    let mut results = Vec::new();
    for _ in 0..count {
        let r = find_adversarial_gap(inst, spec, &cs, cfg)?;
        if !r.verified_gap.is_finite() || r.demands.is_empty() {
            break;
        }
        cs = cs.exclude(r.demands.clone(), radius);
        results.push(r);
    }
    Ok(results)
}
