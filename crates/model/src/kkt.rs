//! The KKT rewriter (§3.1 of the paper).
//!
//! An [`InnerProblem`] describes a convex optimization *embedded inside* an
//! enclosing [`Model`]: its decision variables are a designated subset of
//! the model's variables, and every other variable appearing in its
//! constraints is an **outer** variable — a constant from the inner
//! problem's point of view (the leader's move in the Stackelberg game).
//!
//! [`append_kkt`] replaces "solve the inner problem to optimality" with its
//! Karush–Kuhn–Tucker conditions, emitted as constraints on the enclosing
//! model:
//!
//! 1. *primal feasibility* — the inner constraints themselves,
//! 2. *stationarity* — `∇f + Σ λ_i ∇g_i + Σ μ_e ∇h_e = 0` over the inner
//!    variables only (outer variables have no stationarity rows: they are
//!    constants to the follower),
//! 3. *dual feasibility* — `λ_i ≥ 0` for inequality multipliers,
//! 4. *complementary slackness* — symbolic [`Complementarity`] pairs
//!    `λ_i ⟂ slack_i`, handled disjunctively by branch-and-bound.
//!
//! Any point satisfying all four is an optimal solution of the inner convex
//! problem (Slater ⇒ strong duality), which is exactly the feasibility-
//! encoding trick of the paper's Figure 2.
//!
//! [`Complementarity`]: crate::model::Complementarity

use crate::expr::LinExpr;
use crate::model::{Model, ObjSense, Sense, VarRef};
use crate::{ModelError, ModelResult};
use std::collections::BTreeMap;

/// Objective of an inner problem: linear, with optional diagonal quadratic
/// terms (`Σ q_j x_j²`) so the Figure-2 rectangle demo is expressible.
#[derive(Debug, Clone)]
pub struct InnerObjective {
    /// Maximize or minimize.
    pub sense: ObjSense,
    /// Linear part (may reference outer variables; those terms are constant
    /// for the inner problem and do not contribute stationarity rows).
    pub linear: LinExpr,
    /// Diagonal quadratic coefficients on *inner* variables.
    pub quadratic: Vec<(VarRef, f64)>,
}

/// A convex problem embedded in an enclosing model.
///
/// Inner variable bounds must be expressed as explicit constraints (use
/// [`InnerProblem::add_var`], which creates the model variable *free* and
/// records its box as inner constraints) so the KKT system accounts for
/// their multipliers.
#[derive(Debug, Clone)]
pub struct InnerProblem {
    /// Decision variables of the follower.
    inner_vars: Vec<VarRef>,
    /// Fast membership test.
    is_inner: BTreeMap<usize, ()>,
    /// Constraints, normalized `expr SENSE 0`.
    constraints: Vec<(LinExpr, Sense, Option<String>)>,
    /// Inner variables whose only bound is `x >= 0`, kept as a *native*
    /// model bound: the KKT rewriter emits a reduced-cost complementarity
    /// `x ⟂ (∂f/∂x + Σ λ ∂g/∂x)` instead of an explicit multiplier variable
    /// plus stationarity row — the standard size reduction for
    /// standard-form LPs (1 variable and 2 rows saved per entry).
    nonneg_vars: Vec<VarRef>,
    /// Objective (defaults to `max 0`).
    objective: InnerObjective,
    name: String,
}

impl InnerProblem {
    /// Creates an empty inner problem with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        InnerProblem {
            inner_vars: Vec::new(),
            is_inner: BTreeMap::new(),
            constraints: Vec::new(),
            nonneg_vars: Vec::new(),
            objective: InnerObjective {
                sense: ObjSense::Max,
                linear: LinExpr::zero(),
                quadratic: Vec::new(),
            },
            name: name.into(),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a fresh model variable owned by this inner problem.
    ///
    /// The special — and, in flow formulations, overwhelmingly common —
    /// case `[0, ∞)` keeps the bound *native* on the model variable and is
    /// handled by the KKT rewriter as a reduced-cost complementarity
    /// (see the `nonneg_vars` field). Any other box is recorded as explicit
    /// inner constraints so its multipliers appear in the KKT system; the
    /// model variable is then left unbounded.
    pub fn add_var(
        &mut self,
        model: &mut Model,
        name: impl Into<String>,
        lo: f64,
        hi: f64,
    ) -> ModelResult<VarRef> {
        if lo.is_nan() || hi.is_nan() {
            return Err(ModelError::NotFinite("inner var bounds".into()));
        }
        if lo == 0.0 && hi == f64::INFINITY {
            let v = model.add_var(name, 0.0, f64::INFINITY)?;
            self.register_var(v);
            self.nonneg_vars.push(v);
            return Ok(v);
        }
        let v = model.add_var(name, f64::NEG_INFINITY, f64::INFINITY)?;
        self.register_var(v);
        if lo.is_finite() {
            // lo − v <= 0
            self.constrain(LinExpr::constant(lo) - v, Sense::Le)?;
        }
        if hi.is_finite() {
            // v − hi <= 0
            self.constrain(LinExpr::from(v) - hi, Sense::Le)?;
        }
        Ok(v)
    }

    /// Registers an existing model variable as an inner decision variable.
    ///
    /// The variable should be free at the model level (its box, if any, is
    /// *not* converted to KKT constraints by this method).
    pub fn register_var(&mut self, v: VarRef) {
        if self.is_inner.insert(v.0, ()).is_none() {
            self.inner_vars.push(v);
        }
    }

    /// The follower's decision variables.
    pub fn vars(&self) -> &[VarRef] {
        &self.inner_vars
    }

    /// Whether `v` is one of the follower's decision variables.
    pub fn is_inner_var(&self, v: VarRef) -> bool {
        self.is_inner.contains_key(&v.0)
    }

    /// Adds a constraint `expr SENSE 0` (fold the right-hand side into the
    /// expression before calling, or use [`InnerProblem::constrain_pair`]).
    pub fn constrain(&mut self, expr: impl Into<LinExpr>, sense: Sense) -> ModelResult<()> {
        self.constrain_named("", expr, sense)
    }

    /// Adds `lhs SENSE rhs`.
    pub fn constrain_pair(
        &mut self,
        lhs: impl Into<LinExpr>,
        sense: Sense,
        rhs: impl Into<LinExpr>,
    ) -> ModelResult<()> {
        let mut e = lhs.into();
        e -= rhs.into();
        self.constrain(e, sense)
    }

    /// Named variant of [`InnerProblem::constrain`].
    pub fn constrain_named(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        sense: Sense,
    ) -> ModelResult<()> {
        let name = name.into();
        self.constraints.push((
            expr.into(),
            sense,
            if name.is_empty() { None } else { Some(name) },
        ));
        Ok(())
    }

    /// Sets the inner objective.
    pub fn set_objective(&mut self, sense: ObjSense, linear: impl Into<LinExpr>) {
        self.objective.sense = sense;
        self.objective.linear = linear.into();
        self.objective.quadratic.clear();
    }

    /// Adds a diagonal quadratic term `q·v²` to the inner objective.
    pub fn add_quadratic(&mut self, v: VarRef, q: f64) {
        self.objective.quadratic.push((v, q));
    }

    /// Number of constraints recorded.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective view.
    pub fn objective(&self) -> &InnerObjective {
        &self.objective
    }

    /// Evaluates the inner objective's linear+quadratic value at `values`.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        let mut v = self.objective.linear.eval(values);
        for &(x, q) in &self.objective.quadratic {
            v += q * values[x.0] * values[x.0];
        }
        v
    }
}

/// Appends only the *primal feasibility* constraints of `inner` onto
/// `model` (no multipliers, no complementarity).
///
/// This is sound — and much cheaper — for an inner **maximization** whose
/// objective appears with a **positive** sign in an outer maximization: the
/// outer problem then drives the inner variables to optimality on its own,
/// so no optimality certificate is needed. The paper's §5 "alternative
/// rewrites" remark points in this direction; `metaopt-core` exposes it as
/// the `PrimalOnly` encoding ablation.
pub fn append_primal(model: &mut Model, inner: &InnerProblem) -> ModelResult<()> {
    for (ci, (expr, sense, name)) in inner.constraints.iter().enumerate() {
        let cname = name.clone().unwrap_or_else(|| format!("c{ci}"));
        model.constrain_named(
            format!("{}::pf[{}]", inner.name, cname),
            expr.clone(),
            *sense,
            0.0,
        )?;
    }
    Ok(())
}

/// Dual variables created by [`append_kkt`], for diagnostics and tests.
#[derive(Debug, Clone)]
pub struct KktArtifacts {
    /// Multiplier per inner constraint, in insertion order. Inequality
    /// multipliers are nonnegative; equality multipliers are free.
    pub multipliers: Vec<VarRef>,
    /// Indices (into `multipliers`) of the inequality constraints, i.e. the
    /// complementarity pairs appended to the model.
    pub complementary: Vec<usize>,
}

/// Appends the KKT conditions of `inner` onto `model`.
///
/// A default multiplier upper bound `dual_bound` keeps branch-and-bound
/// relaxations bounded; it must be chosen large enough not to cut off the
/// true multipliers (for max-flow style problems, the largest objective
/// coefficient times the longest path length is safe — callers in
/// `metaopt-core` derive it from the formulation). Pass `f64::INFINITY` for
/// no bound.
pub fn append_kkt(
    model: &mut Model,
    inner: &InnerProblem,
    dual_bound: f64,
) -> ModelResult<KktArtifacts> {
    // Work in minimization form: min f0 = −obj if inner maximizes.
    let flip = match inner.objective.sense {
        ObjSense::Max => -1.0,
        ObjSense::Min => 1.0,
    };

    // Stationarity accumulators, one per inner variable.
    let mut stationarity: BTreeMap<usize, LinExpr> = BTreeMap::new();
    for v in &inner.inner_vars {
        let mut grad = LinExpr::constant(flip * inner.objective.linear.coef(*v));
        for &(qv, q) in &inner.objective.quadratic {
            if qv == *v {
                // d/dv (q v²) = 2 q v
                grad += LinExpr::term(*v, flip * 2.0 * q);
            }
        }
        stationarity.insert(v.0, grad);
    }

    let mut multipliers = Vec::with_capacity(inner.constraints.len());
    let mut complementary = Vec::new();

    for (ci, (expr, sense, name)) in inner.constraints.iter().enumerate() {
        // Normalize to g(x) <= 0 (for Ge, negate; Eq handled separately).
        let cname = name.clone().unwrap_or_else(|| format!("c{ci}"));
        match sense {
            Sense::Eq => {
                // Equality: free multiplier, no complementarity.
                let mu = model.add_var(
                    format!("{}::mu[{}]", inner.name, cname),
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                )?;
                multipliers.push(mu);
                // Primal feasibility.
                model.constrain_named(
                    format!("{}::pf[{}]", inner.name, cname),
                    expr.clone(),
                    Sense::Eq,
                    0.0,
                )?;
                // Gradient contribution: μ · ∇h.
                for (v, c) in expr.terms() {
                    if let Some(acc) = stationarity.get_mut(&v.0) {
                        acc.add_term(mu, c);
                    }
                }
            }
            Sense::Le | Sense::Ge => {
                let g = if *sense == Sense::Le {
                    expr.clone()
                } else {
                    expr.scaled(-1.0)
                };
                let lam = model.add_var(
                    format!("{}::lam[{}]", inner.name, cname),
                    0.0,
                    dual_bound,
                )?;
                multipliers.push(lam);
                // Primal feasibility g <= 0.
                model.constrain_named(
                    format!("{}::pf[{}]", inner.name, cname),
                    g.clone(),
                    Sense::Le,
                    0.0,
                )?;
                // Gradient contribution: λ · ∇g.
                for (v, c) in g.terms() {
                    if let Some(acc) = stationarity.get_mut(&v.0) {
                        acc.add_term(lam, c);
                    }
                }
                // Complementary slackness: λ ⟂ (−g) (slack = −g >= 0).
                model.add_complementarity(lam, g.scaled(-1.0))?;
                complementary.push(multipliers.len() - 1);
            }
        }
    }

    // Nonnegative inner variables: reduced-cost complementarity
    // `x ⟂ ν(x)` with `ν(x) = ∂f/∂x + Σ λ ∂g/∂x` — the implicit bound
    // multiplier. `ν(x) >= 0` (dual feasibility) is enforced by the
    // complementarity slack's nonnegativity at compile time.
    let nonneg: std::collections::BTreeSet<usize> =
        inner.nonneg_vars.iter().map(|v| v.0).collect();
    for v in &inner.nonneg_vars {
        let nu = stationarity.remove(&v.0).expect("accumulated above");
        model.add_complementarity(*v, nu)?;
    }

    // Remaining (free/boxed-by-rows) variables: plain stationarity rows.
    for v in &inner.inner_vars {
        if nonneg.contains(&v.0) {
            continue;
        }
        let expr = stationarity.remove(&v.0).expect("accumulated above");
        model.constrain_named(
            format!("{}::stat[{}]", inner.name, model.var_name(*v).to_owned()),
            expr,
            Sense::Eq,
            0.0,
        )?;
    }

    Ok(KktArtifacts {
        multipliers,
        complementary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// KKT of `max x s.t. x <= 3, x >= 0` (inner var x) must force x = 3.
    #[test]
    fn kkt_pins_simple_max() {
        let mut m = Model::new();
        let mut inner = InnerProblem::new("inner");
        let x = inner.add_var(&mut m, "x", 0.0, f64::INFINITY).unwrap();
        inner.constrain_pair(x, Sense::Le, 3.0).unwrap();
        inner.set_objective(ObjSense::Max, x);
        let art = append_kkt(&mut m, &inner, 100.0).unwrap();
        // x >= 0 is a native bound (reduced-cost complementarity), so only
        // the x <= 3 row carries an explicit multiplier.
        assert_eq!(art.multipliers.len(), 1);
        assert_eq!(art.complementary.len(), 1);
        // Two complementarities total: λ ⟂ (3 − x) and x ⟂ ν(x) with
        // ν(x) = −1 + λ. λ must be 1 (else ν < 0), forcing x = 3.
        assert_eq!(m.n_complementarities(), 2);
        // Hand-check a satisfying assignment: x = 3, λ = 1 (ν = 0).
        let values = vec![3.0, 1.0];
        assert!(m.violation(&values, 1e-9) <= 1e-9);
        // x = 2 cannot be completed: λ = 1 keeps ν = 0 but leaves
        // slack(x ≤ 3) = 1 with λ = 1 → product 1; λ = 0 gives ν = −1 < 0.
        assert!(m.violation(&[2.0, 1.0], 1e-9) > 0.5);
        assert!(m.violation(&[2.0, 0.0], 1e-9) > 0.5);
    }

    /// The Figure-2 rectangle: min w²+ℓ² s.t. 2(w+ℓ) ≥ P. For fixed P the
    /// KKT system admits w = ℓ = λ = P/4.
    #[test]
    fn figure2_rectangle_kkt() {
        let mut m = Model::new();
        let p_val = 8.0;
        let p = m.add_var("P", p_val, p_val).unwrap(); // outer var, fixed here
        let mut inner = InnerProblem::new("rect");
        let w = inner
            .add_var(&mut m, "w", f64::NEG_INFINITY, f64::INFINITY)
            .unwrap();
        let l = inner
            .add_var(&mut m, "l", f64::NEG_INFINITY, f64::INFINITY)
            .unwrap();
        // 2(w+ℓ) ≥ P  ⇔  P − 2w − 2ℓ ≤ 0
        inner
            .constrain(LinExpr::from(p) - 2.0 * w - 2.0 * l, Sense::Le)
            .unwrap();
        inner.set_objective(ObjSense::Min, LinExpr::zero());
        inner.add_quadratic(w, 1.0);
        inner.add_quadratic(l, 1.0);
        let art = append_kkt(&mut m, &inner, f64::INFINITY).unwrap();
        assert_eq!(art.multipliers.len(), 1);
        // Verify the analytic KKT point: w = ℓ = 2, λ: stationarity
        // 2w − 2λ = 0 ⇒ λ = 2 = P/4.
        let lam = art.multipliers[0];
        let mut values = vec![0.0; m.n_vars()];
        values[p.0] = p_val;
        values[w.0] = 2.0;
        values[l.0] = 2.0;
        values[lam.0] = 2.0;
        assert!(
            m.violation(&values, 1e-9) <= 1e-9,
            "violation {}",
            m.violation(&values, 1e-9)
        );
        // Wrong primal point w=3, ℓ=1 breaks stationarity for any λ:
        // 2·3 − 2λ = 0 and 2·1 − 2λ = 0 are inconsistent.
        values[w.0] = 3.0;
        values[l.0] = 1.0;
        values[lam.0] = 3.0;
        assert!(m.violation(&values, 1e-9) > 1.0);
    }

    /// Outer variables appearing in inner constraints contribute no
    /// stationarity rows but do appear in primal feasibility.
    #[test]
    fn outer_vars_stay_constant() {
        let mut m = Model::new();
        let theta = m.add_var("theta", 0.0, 10.0).unwrap();
        let mut inner = InnerProblem::new("i");
        let x = inner.add_var(&mut m, "x", 0.0, f64::INFINITY).unwrap();
        // x <= theta
        inner
            .constrain(LinExpr::from(x) - theta, Sense::Le)
            .unwrap();
        inner.set_objective(ObjSense::Max, x);
        let before = m.n_constraints();
        append_kkt(&mut m, &inner, 100.0).unwrap();
        // Constraints added: 1 primal feasibility row (x <= theta; x >= 0
        // is a native bound, and no stationarity row exists for theta or
        // for the reduced-cost-handled x).
        assert_eq!(m.n_constraints() - before, 1);
        assert_eq!(m.n_complementarities(), 2);
    }

    /// Equality constraints get free multipliers and no complementarity.
    #[test]
    fn equality_constraints_no_complementarity() {
        let mut m = Model::new();
        let mut inner = InnerProblem::new("eq");
        let x = inner
            .add_var(&mut m, "x", f64::NEG_INFINITY, f64::INFINITY)
            .unwrap();
        let y = inner
            .add_var(&mut m, "y", f64::NEG_INFINITY, f64::INFINITY)
            .unwrap();
        inner.constrain_pair(x + y, Sense::Eq, 4.0).unwrap();
        inner.set_objective(ObjSense::Min, LinExpr::zero());
        inner.add_quadratic(x, 1.0);
        inner.add_quadratic(y, 1.0);
        let art = append_kkt(&mut m, &inner, f64::INFINITY).unwrap();
        assert_eq!(m.n_complementarities(), 0);
        // Analytic optimum x = y = 2 with μ = −(2x)·?  Stationarity:
        // 2x + μ = 0 ⇒ μ = −4.
        let mu = art.multipliers[0];
        let mut values = vec![0.0; m.n_vars()];
        values[x.0] = 2.0;
        values[y.0] = 2.0;
        values[mu.0] = -4.0;
        assert!(m.violation(&values, 1e-9) <= 1e-9);
    }
}
