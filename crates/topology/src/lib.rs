#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-topology
//!
//! WAN topology substrate for the `metaopt` workspace: directed capacitated
//! graphs, shortest-path and k-shortest-path computation (Yen's algorithm),
//! the production topologies the paper evaluates on (B4, Abilene, and a
//! SWAN-like reconstruction), the synthetic families of Figure 4b
//! (circulant "circle" graphs), and demand-pair/gravity-demand utilities.
//!
//! All graphs are *directed*; the convenience builders add both directions
//! of a physical link with equal capacity, matching the multi-commodity
//! flow formulations of §2 of the paper (Table 1: capacitated edge set
//! `E`, paths as edge sequences).

pub mod builtin;
pub mod demand;
pub mod graph;
pub mod io;
pub mod paths;
pub mod synth;

pub use demand::{all_pairs, gravity_demands, Demand, DemandPair};
pub use graph::{EdgeId, NodeId, Topology};
pub use io::{parse_topology, write_topology};
pub use paths::{k_shortest_paths, shortest_path, Path, PathSet};

/// Errors raised by topology construction and path computation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// Node index out of range.
    BadNode(usize),
    /// Capacity must be positive and finite.
    BadCapacity(f64),
    /// Self-loops are not allowed.
    SelfLoop(usize),
    /// No path exists between the requested endpoints.
    Disconnected {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::BadNode(n) => write!(f, "node {n} out of range"),
            TopologyError::BadCapacity(c) => write!(f, "bad capacity {c}"),
            TopologyError::SelfLoop(n) => write!(f, "self loop at node {n}"),
            TopologyError::Disconnected { src, dst } => {
                write!(f, "no path from node {src} to node {dst}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Result alias for this crate.
pub type TopoResult<T> = Result<T, TopologyError>;
