//! Bounded-variable revised simplex over a pluggable basis factorization.
//!
//! Layout: the problem's `n` structural variables are followed by `m`
//! *logical* variables (one per row, holding the row activity) and, during
//! phase I only, up to `m` *artificial* variables. The internal system is
//!
//! ```text
//!   A x_struct − s + G t = 0,     lo <= x <= hi  (per-variable boxes)
//! ```
//!
//! where each logical `s_i` is boxed by its row's activity range. All right
//! hand sides are zero, so every basic solution is `x_B = −B⁻¹ A_N x_N`.
//!
//! * Phase I starts from the all-logical basis and drives artificial
//!   infeasibility to zero (see [`Simplex::solve`]).
//! * Phase II is a textbook bounded-variable primal simplex with Dantzig
//!   pricing and a Bland-rule fallback after long degenerate runs.
//! * [`Simplex::resolve`] re-optimizes after variable-bound changes with the
//!   dual simplex — the hot operation of branch-and-bound — and falls back
//!   to a cold primal solve when the warm basis is not dual feasible.
//!
//! All basis linear algebra (FTRAN, BTRAN, rank-one updates, periodic
//! refactorization) goes through [`crate::factor::Factors`], which
//! dispatches to either the dense explicit inverse or the sparse LU
//! engine per [`SimplexConfig::backend`]. The pivot loops never look at
//! the factorization representation directly.

mod basis;
mod dual;
mod primal;

pub use basis::Basis;

use crate::factor::{FactorBackend, Factors};
use crate::problem::{LpProblem, VarId};
use crate::solution::{Solution, SolveStatus};
use crate::sparse::SparseMat;
use crate::{LpError, LpResult};
use metaopt_resilience::{FaultPlan, FaultSite, SolverFault};

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Primal feasibility tolerance on variable bounds.
    pub feas_tol: f64,
    /// Dual feasibility (reduced-cost) tolerance.
    pub opt_tol: f64,
    /// Smallest acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Hard cap on total pivots per solve.
    pub max_iters: usize,
    /// Refactorize the basis every this many pivots (the sparse backend
    /// additionally refactorizes early when its eta file outgrows the
    /// base factors).
    pub refactor_every: usize,
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    pub degen_threshold: usize,
    /// Basis-factorization engine; defaults from `METAOPT_FACTOR`
    /// (sparse LU when unset).
    pub backend: FactorBackend,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            pivot_tol: 1e-9,
            max_iters: 0, // 0 = auto (scaled by problem size)
            refactor_every: 512,
            degen_threshold: 400,
            backend: FactorBackend::from_env(),
        }
    }
}

/// Where a variable currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable held nonbasic at value zero.
    FreeZero,
}

/// Bounded-variable revised simplex solver.
///
/// Owns mutable copies of the problem data so callers (branch-and-bound) can
/// tighten/relax variable bounds between warm-started re-solves.
///
/// ```
/// use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus};
///
/// // max x + y  s.t.  x + 2y <= 4,  0 <= x,y <= 3  (minimize the negation)
/// let mut p = LpProblem::new();
/// let x = p.add_var(0.0, 3.0, -1.0)?;
/// let y = p.add_var(0.0, 3.0, -1.0)?;
/// p.add_row(RowSense::Le, 4.0, [(x, 1.0), (y, 2.0)])?;
/// let sol = Simplex::new(&p).solve()?;
/// assert_eq!(sol.status, SolveStatus::Optimal);
/// assert!((sol.objective + 3.5).abs() < 1e-8); // x = 3, y = 0.5
/// # Ok::<(), metaopt_lp::LpError>(())
/// ```
pub struct Simplex {
    cfg: SimplexConfig,
    /// Structural count.
    n: usize,
    /// Row count.
    m: usize,
    /// Columns for all vars: `n` structural then `m` logical then artificials.
    cols: SparseMat,
    /// Phase-II costs (structural from problem; logical/artificial zero).
    cost: Vec<f64>,
    /// Current working costs (phase I uses artificial costs).
    work_cost: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    obj_offset: f64,

    state: Vec<VarState>,
    /// Variable index occupying each basis position.
    basis: Vec<usize>,
    /// Factorization of the current basis (dense inverse or sparse LU,
    /// per [`SimplexConfig::backend`]).
    factors: Factors,
    /// Current values of *all* variables (basic ones solved, nonbasic at bound).
    x: Vec<f64>,

    pivots_since_refactor: usize,
    degen_run: usize,
    iterations: usize,
    /// Rank-one basis updates performed (pivots that changed the basis,
    /// as opposed to bound flips) across all solves.
    updates: usize,
    /// Artificial variables exist (phase-I leftovers are pinned to zero).
    n_artificials: usize,
    /// Optional wall-clock deadline checked periodically inside the
    /// iteration loops (set by budgeted callers such as branch-and-bound).
    deadline: Option<std::time::Instant>,
    /// Deterministic fault-injection plan (chaos tests only; `None` in
    /// production).
    fault_plan: Option<FaultPlan>,
    /// Row equilibration factors once the recovery ladder rescaled the
    /// constraint rows (`None` until then). Output duals are unscaled by
    /// these factors.
    row_scale: Option<Vec<f64>>,
    /// Last clean optimal point, kept as the recovery ladder's final rung.
    /// Invalidated whenever a bound change makes it infeasible.
    best_feasible: Option<Solution>,
    /// Whether the most recent successful solve finished inside the dual
    /// simplex (a genuine warm re-solve) rather than a cold two-phase run.
    last_warm: bool,
    /// Obs counter handles (no-op by default); flushed as per-solve
    /// deltas so the pivot loops stay untouched.
    metrics: crate::LpMetrics,
}

impl Simplex {
    /// Builds a solver for `p` with default configuration.
    pub fn new(p: &LpProblem) -> Self {
        Self::with_config(p, SimplexConfig::default())
    }

    /// Builds a solver for `p` with the given configuration.
    pub fn with_config(p: &LpProblem, cfg: SimplexConfig) -> Self {
        let n = p.n_vars();
        let m = p.n_rows();
        let mut cols = p.build_matrix();
        // Logical columns: −e_i.
        for i in 0..m {
            cols.push_col([(i, -1.0)]);
        }
        let mut cost = p.obj.clone();
        cost.extend(std::iter::repeat_n(0.0, m));
        let mut lo = p.lo.clone();
        let mut hi = p.hi.clone();
        lo.extend_from_slice(&p.row_lo);
        hi.extend_from_slice(&p.row_hi);
        let total = n + m;
        let factors = Factors::empty(cfg.backend);
        Simplex {
            cfg,
            n,
            m,
            cols,
            work_cost: cost.clone(),
            cost,
            lo,
            hi,
            obj_offset: p.obj_offset,
            state: vec![VarState::AtLower; total],
            basis: Vec::new(),
            factors,
            x: vec![0.0; total],
            pivots_since_refactor: 0,
            degen_run: 0,
            iterations: 0,
            updates: 0,
            n_artificials: 0,
            deadline: None,
            fault_plan: None,
            row_scale: None,
            best_feasible: None,
            last_warm: false,
            metrics: crate::LpMetrics::disabled(),
        }
    }

    /// Structural variable count.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Row count.
    pub fn n_rows(&self) -> usize {
        self.m
    }

    /// Total pivots performed so far (across all solves).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Basis-factorization backend this solver runs on.
    pub fn backend(&self) -> FactorBackend {
        self.cfg.backend
    }

    /// Rank-one basis updates performed so far (across all solves).
    pub fn basis_updates(&self) -> usize {
        self.updates
    }

    /// Whether the most recent successful solve was a genuine warm dual
    /// re-solve (as opposed to a cold two-phase primal run, which every
    /// recovery-ladder rung and dual-infeasible fallback performs).
    pub fn last_solve_warm(&self) -> bool {
        self.last_warm
    }

    /// Sets (or clears) a wall-clock deadline; iteration loops abort with
    /// [`SolverFault::DeadlineExceeded`] shortly after it passes.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Installs (or clears) a deterministic fault-injection plan. Used by
    /// the chaos suite; production callers leave this `None`.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Installs obs counter handles; solves flush pivot/refactor/mode
    /// deltas into them. Observation never feeds back into pivoting.
    pub fn set_metrics(&mut self, metrics: crate::LpMetrics) {
        self.metrics = metrics;
    }

    fn fire_fault(&self, site: FaultSite) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.fire(site))
    }

    pub(crate) fn deadline_passed(&self) -> bool {
        if self.fire_fault(FaultSite::DeadlineNow) {
            return true;
        }
        // an:allow(AN001): the LP deadline is a liveness backstop
        // against real elapsed time; routing it through an injectable
        // clock would let a frozen test clock hang the simplex forever.
        self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Overwrites the bounds of structural variable `v` (for warm re-solves).
    pub fn set_var_bounds(&mut self, v: VarId, lo: f64, hi: f64) -> LpResult<()> {
        if v.0 >= self.n {
            return Err(LpError::BadIndex(format!("var {}", v.0)));
        }
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::NotFinite(format!("bounds [{lo}, {hi}]")));
        }
        if lo > hi {
            return Err(LpError::EmptyBounds { var: v.0, lo, hi });
        }
        self.lo[v.0] = lo;
        self.hi[v.0] = hi;
        // The cached fallback point is only useful while it stays inside
        // the current box.
        if let Some(best) = &self.best_feasible {
            let bx = best.x[v.0];
            if bx < lo - self.cfg.feas_tol || bx > hi + self.cfg.feas_tol {
                self.best_feasible = None;
            }
        }
        // Keep nonbasic variables glued to an existing bound.
        match self.state[v.0] {
            VarState::AtLower => {
                if lo.is_finite() {
                    self.x[v.0] = lo;
                } else if hi.is_finite() {
                    self.state[v.0] = VarState::AtUpper;
                    self.x[v.0] = hi;
                } else {
                    self.state[v.0] = VarState::FreeZero;
                    self.x[v.0] = 0.0;
                }
            }
            VarState::AtUpper => {
                if hi.is_finite() {
                    self.x[v.0] = hi;
                } else if lo.is_finite() {
                    self.state[v.0] = VarState::AtLower;
                    self.x[v.0] = lo;
                } else {
                    self.state[v.0] = VarState::FreeZero;
                    self.x[v.0] = 0.0;
                }
            }
            VarState::FreeZero => {
                if lo > 0.0 || hi < 0.0 {
                    // Zero no longer inside the box; snap to nearest bound.
                    if lo > 0.0 {
                        self.state[v.0] = VarState::AtLower;
                        self.x[v.0] = lo;
                    } else {
                        self.state[v.0] = VarState::AtUpper;
                        self.x[v.0] = hi;
                    }
                }
            }
            VarState::Basic(_) => {}
        }
        Ok(())
    }

    /// Current bounds of structural variable `v`.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.lo[v.0], self.hi[v.0])
    }

    fn auto_iter_limit(&self) -> usize {
        if self.cfg.max_iters > 0 {
            self.cfg.max_iters
        } else {
            50 * (self.m + self.n) + 20_000
        }
    }

    // ------------------------------------------------------------------
    // Basis-factorization maintenance
    // ------------------------------------------------------------------

    /// Refactorizes the current basis from scratch on the configured
    /// backend (dense Gauss–Jordan inverse or sparse Markowitz LU),
    /// discarding any accumulated rank-one updates.
    pub(crate) fn refactor(&mut self) -> LpResult<()> {
        if self.fire_fault(FaultSite::SingularRefactor) {
            return Err(LpError::Fault(SolverFault::BasisSingular(
                "injected singular refactorization".into(),
            )));
        }
        self.factors = Factors::factorize(self.cfg.backend, &self.cols, &self.basis)?;
        self.pivots_since_refactor = 0;
        self.metrics.refactors.inc();
        Ok(())
    }

    /// Whether the pivot loops should refactorize now: the periodic
    /// pivot-count cadence, or the factorization's own early request
    /// (sparse eta-file growth).
    pub(crate) fn refactor_due(&self) -> bool {
        self.pivots_since_refactor >= self.cfg.refactor_every || self.factors.wants_refactor()
    }

    /// Periodic refactorization plus numerical-health monitoring: after
    /// the fresh factorization the basic values are recomputed and the
    /// primal residual `‖Σ_j a_j x_j‖∞` (every internal right-hand side
    /// is zero) is compared against a scale-aware drift tolerance.
    /// Excessive drift is a numerical breakdown for the recovery ladder.
    pub(crate) fn refactor_and_check(&mut self) -> LpResult<()> {
        self.refactor()?;
        self.recompute_basics();
        let scale = self.x.iter().fold(1.0_f64, |a, v| a.max(v.abs()));
        if !scale.is_finite() {
            return Err(LpError::Fault(SolverFault::NumericalBreakdown(
                "non-finite variable value after refactorization".into(),
            )));
        }
        let drift = self.primal_residual_inf();
        let tol = 1e-6 * scale;
        // An explicit NaN check: a NaN residual must trip the ladder too.
        if drift.is_nan() || drift > tol {
            return Err(LpError::Fault(SolverFault::NumericalBreakdown(format!(
                "primal residual drift {drift:.3e} exceeds {tol:.3e} after refactorization"
            ))));
        }
        Ok(())
    }

    /// `‖Σ_j a_j x_j‖∞` over all columns — zero for an exact basic point.
    pub(crate) fn primal_residual_inf(&self) -> f64 {
        let mut r = vec![0.0; self.m];
        for j in 0..self.total_vars() {
            if self.x[j] != 0.0 {
                self.cols.col_axpy(j, self.x[j], &mut r);
            }
        }
        r.iter().fold(0.0_f64, |a, v| a.max(v.abs()))
    }

    /// `w = B⁻¹ a_j` for variable `j`'s column.
    pub(crate) fn ftran(&self, j: usize, out: &mut [f64]) {
        self.factors.ftran_col(&self.cols, j, out);
    }

    /// `y = c_Bᵀ B⁻¹` using the current working costs.
    pub(crate) fn btran_duals(&self) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&j| self.work_cost[j]).collect();
        self.factors.btran(&cb)
    }

    /// Row `pos` of `B⁻¹` (`ρ = e_posᵀ B⁻¹`): the shared pivot row used
    /// by devex weight updates, incremental dual updates, and the dual
    /// simplex ratio test. Backend-agnostic — the dense engine copies an
    /// inverse row, the sparse engine runs a unit BTRAN.
    pub(crate) fn btran_unit(&self, pos: usize) -> Vec<f64> {
        self.factors.btran_unit(pos)
    }

    /// Recomputes every basic variable's value from the nonbasic point.
    pub(crate) fn recompute_basics(&mut self) {
        let m = self.m;
        // rhs = −Σ_{nonbasic} a_j x_j
        let mut rhs = vec![0.0; m];
        let total = self.total_vars();
        for j in 0..total {
            if let VarState::Basic(_) = self.state[j] {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                self.cols.col_axpy(j, -xj, &mut rhs);
            }
        }
        // x_B = B⁻¹ rhs
        let mut xb = vec![0.0; m];
        self.factors.ftran_dense(&rhs, &mut xb);
        for (pos, v) in xb.into_iter().enumerate() {
            let j = self.basis[pos];
            self.x[j] = v;
        }
    }

    /// Replaces basis position `pos` with variable `entering`; `w` must be
    /// `B⁻¹ a_entering`. Applies the backend's rank-one update (dense
    /// elementary row ops or one product-form eta).
    pub(crate) fn update_basis(&mut self, pos: usize, entering: usize, w: &[f64]) {
        self.factors.update(pos, w);
        self.basis[pos] = entering;
        self.state[entering] = VarState::Basic(pos);
        self.pivots_since_refactor += 1;
        self.updates += 1;
    }

    pub(crate) fn total_vars(&self) -> usize {
        self.n + self.m + self.n_artificials
    }

    /// Reduced cost of variable `j` under duals `y`.
    pub(crate) fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        self.work_cost[j] - self.cols.col_dot(j, y)
    }

    /// Removes artificial columns bookkeeping after phase I (they stay in
    /// `cols` but are pinned to `[0, 0]` so they can never re-enter with a
    /// nonzero value).
    fn pin_artificials(&mut self) {
        let start = self.n + self.m;
        let end = self.total_vars();
        for j in start..end {
            self.lo[j] = 0.0;
            self.hi[j] = 0.0;
            if !matches!(self.state[j], VarState::Basic(_)) {
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Public solve entry points
    // ------------------------------------------------------------------

    /// Cold solve: phase-I artificial feasibility search followed by the
    /// phase-II primal simplex, wrapped in the recovery ladder (see
    /// [`Simplex::resolve`] for the ladder description).
    pub fn solve(&mut self) -> LpResult<Solution> {
        self.run_with_recovery(false)
    }

    /// Warm re-solve after bound changes, wrapped in the recovery ladder.
    ///
    /// Recoverable faults (numerical breakdown, singular basis) escalate
    /// through: cold restart → row equilibration → bound perturbation
    /// (bounded retries, results marked degraded) → cached best feasible
    /// point (degraded). Verdict faults (deadline, stall) and genuine
    /// iteration limits propagate immediately — retrying cannot help.
    pub fn resolve(&mut self) -> LpResult<Solution> {
        self.run_with_recovery(true)
    }

    fn run_with_recovery(&mut self, warm: bool) -> LpResult<Solution> {
        let iters_before = self.iterations;
        let updates_before = self.updates;
        let out = self.run_recovery_ladder(warm);
        if out.is_ok() {
            self.metrics.pivots.add((self.iterations - iters_before) as u64);
            self.metrics.updates.add((self.updates - updates_before) as u64);
            if self.last_warm {
                self.metrics.warm_solves.inc();
            } else {
                self.metrics.cold_solves.inc();
            }
        }
        out
    }

    fn run_recovery_ladder(&mut self, warm: bool) -> LpResult<Solution> {
        // An already-expired deadline aborts before any pivoting — the
        // in-loop checks only run every 64 iterations, which tiny problems
        // never reach.
        if self.deadline_passed() {
            return Err(LpError::Fault(SolverFault::DeadlineExceeded));
        }
        let first = if warm {
            self.resolve_raw()
        } else {
            self.solve_raw()
        };
        // The first fault is the most informative one; later rung errors
        // are usually echoes of the same breakdown.
        let first_err = match first {
            Ok(sol) => return Ok(sol),
            Err(e) if e.is_recoverable() => e,
            Err(e) => return Err(e),
        };
        // Rung 1: cold restart — fresh start basis and factorization.
        self.metrics.recovery_cold_restart.inc();
        match self.solve_raw() {
            Ok(sol) => return Ok(sol),
            Err(e) if e.is_recoverable() => {}
            Err(e) => return Err(e),
        }
        // Rung 2: row equilibration, then another cold start.
        self.metrics.recovery_equilibrate.inc();
        self.equilibrate_rows();
        match self.solve_raw() {
            Ok(sol) => return Ok(sol),
            Err(e) if e.is_recoverable() => {}
            Err(e) => return Err(e),
        }
        // Rung 3: bounded bound-perturbation retries. Boxes are expanded
        // by deterministic tiny amounts (never shrunk), so every
        // originally feasible point stays feasible; the optimum may sit
        // ε outside the true box, hence the result is marked degraded.
        let saved_lo = self.lo[..self.n].to_vec();
        let saved_hi = self.hi[..self.n].to_vec();
        for attempt in 1..=2u64 {
            self.metrics.recovery_perturb.inc();
            self.perturb_bounds(attempt);
            let outcome = self.solve_raw();
            self.lo[..self.n].copy_from_slice(&saved_lo);
            self.hi[..self.n].copy_from_slice(&saved_hi);
            self.snap_nonbasic_structurals();
            match outcome {
                Ok(mut sol) => {
                    sol.degraded = true;
                    // ε-outside the true box — never cache as feasible.
                    self.best_feasible = None;
                    return Ok(sol);
                }
                Err(e) if e.is_recoverable() => {}
                Err(e) => return Err(e),
            }
        }
        // Rung 4: the best cached feasible point, degraded (a valid
        // feasible value, not a relaxation optimum).
        if let Some(mut best) = self.best_feasible.clone() {
            self.metrics.recovery_best_feasible.inc();
            best.degraded = true;
            return Ok(best);
        }
        Err(first_err)
    }

    /// Rung-2 recovery: power-of-two row equilibration. Each constraint
    /// row is scaled so its largest structural coefficient lands near 1;
    /// power-of-two factors keep the rescaling exact in floating point.
    /// The scaled system is equivalent (logical variables still carry the
    /// original-unit row activity because their columns scale too);
    /// output duals are mapped back via `y_orig[i] = s_i · y_scaled[i]`
    /// in [`Simplex::extract`].
    fn equilibrate_rows(&mut self) {
        let m = self.m;
        let mut maxabs = vec![0.0_f64; m];
        for j in 0..self.n {
            for (r, v) in self.cols.col(j) {
                maxabs[r] = maxabs[r].max(v.abs());
            }
        }
        let mut scale = vec![1.0_f64; m];
        for (s, &mx) in scale.iter_mut().zip(&maxabs) {
            if mx > 0.0 && mx.is_finite() {
                *s = (-mx.log2()).round().exp2().clamp(1e-8, 1e8);
            }
        }
        self.cols.scale_rows(&scale);
        match &mut self.row_scale {
            Some(prev) => prev.iter_mut().zip(&scale).for_each(|(p, s)| *p *= s),
            None => self.row_scale = Some(scale),
        }
    }

    /// Rung-3 recovery: expands every finite structural bound by a tiny
    /// deterministic amount (variable- and attempt-dependent) to break
    /// the degenerate/singular geometry that defeated the clean solves.
    fn perturb_bounds(&mut self, attempt: u64) {
        for j in 0..self.n {
            let h = (j as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(attempt.wrapping_mul(0xD1B5_4A32_D192_ED03));
            let u = 1.0 + (h >> 54) as f64 / 1024.0; // deterministic in [1, 2)
            if self.lo[j].is_finite() {
                let eps = 1e-9 * (1.0 + self.lo[j].abs()) * u;
                self.lo[j] -= eps;
            }
            if self.hi[j].is_finite() {
                let eps = 1e-9 * (1.0 + self.hi[j].abs()) * u;
                self.hi[j] += eps;
            }
        }
    }

    /// Re-glues nonbasic structural variables onto their (restored)
    /// bounds after a perturbation attempt.
    fn snap_nonbasic_structurals(&mut self) {
        for j in 0..self.n {
            match self.state[j] {
                VarState::AtLower if self.lo[j].is_finite() => self.x[j] = self.lo[j],
                VarState::AtUpper if self.hi[j].is_finite() => self.x[j] = self.hi[j],
                _ => {}
            }
        }
    }

    /// Raw cold solve (no recovery).
    fn solve_raw(&mut self) -> LpResult<Solution> {
        self.last_warm = false;
        self.start_basis()?;
        // Phase I only if artificials carry weight.
        let infeas: f64 = (self.n + self.m..self.total_vars())
            .map(|j| self.x[j])
            .sum();
        if infeas > self.cfg.feas_tol {
            // Minimize the sum of artificials.
            let total = self.total_vars();
            self.work_cost = vec![0.0; total];
            for j in self.n + self.m..total {
                self.work_cost[j] = 1.0;
            }
            let st = self.primal_loop()?;
            if st == SolveStatus::Unbounded {
                return Err(LpError::Numerical(
                    "phase-I objective unbounded (internal bug)".into(),
                ));
            }
            let resid: f64 = (self.n + self.m..self.total_vars())
                .map(|j| self.x[j].max(0.0))
                .sum();
            if resid > self.cfg.feas_tol.max(1e-6) {
                return Ok(self.extract(SolveStatus::Infeasible));
            }
        }
        self.pin_artificials();
        // Phase II.
        self.work_cost = self.cost.clone();
        // Pad working costs for artificial columns.
        self.work_cost.resize(self.total_vars(), 0.0);
        let st = self.primal_loop()?;
        Ok(self.extract(st))
    }

    /// Raw warm re-solve after bound changes (no recovery): runs the dual
    /// simplex from the current basis; falls back to a raw cold solve if
    /// the basis is not dual feasible (or was never initialized).
    fn resolve_raw(&mut self) -> LpResult<Solution> {
        if self.basis.len() != self.m {
            return self.solve_raw();
        }
        self.work_cost = self.cost.clone();
        self.work_cost.resize(self.total_vars(), 0.0);
        // Snap nonbasic variables to bounds that may have moved, then refresh
        // basic values.
        self.recompute_basics();
        match self.dual_loop()? {
            Some(st) => {
                self.last_warm = true;
                Ok(self.extract(st))
            }
            None => self.solve_raw(), // not dual feasible — cold start
        }
    }

    /// Drops artificial columns left over from a previous phase-I run.
    /// (`SparseMat` cannot pop columns; rebuild bookkeeping instead.)
    pub(crate) fn drop_artificials(&mut self) {
        if self.n_artificials == 0 {
            return;
        }
        let (n, m) = (self.n, self.m);
        let mut cols = SparseMat::new(m);
        for j in 0..n + m {
            cols.push_col(self.cols.col(j));
        }
        self.cols = cols;
        self.lo.truncate(n + m);
        self.hi.truncate(n + m);
        self.cost.truncate(n + m);
        self.state.truncate(n + m);
        self.x.truncate(n + m);
        self.n_artificials = 0;
    }

    /// Initializes the all-logical basis plus artificials for violated rows.
    fn start_basis(&mut self) -> LpResult<()> {
        let n = self.n;
        let m = self.m;
        self.drop_artificials();

        // Nonbasic structurals at their preferred bound.
        for j in 0..n {
            let (l, h) = (self.lo[j], self.hi[j]);
            if l.is_finite() {
                self.state[j] = VarState::AtLower;
                self.x[j] = l;
            } else if h.is_finite() {
                self.state[j] = VarState::AtUpper;
                self.x[j] = h;
            } else {
                self.state[j] = VarState::FreeZero;
                self.x[j] = 0.0;
            }
        }
        // Row activities at that point.
        let mut act = vec![0.0; m];
        for j in 0..n {
            if self.x[j] != 0.0 {
                self.cols.col_axpy(j, self.x[j], &mut act);
            }
        }
        self.basis.clear();
        let mut artificial_cols: Vec<(usize, f64, f64)> = Vec::new(); // (row, sign, value)
        for (i, &ai) in act.iter().enumerate().take(m) {
            let s = n + i;
            let (rl, rh) = (self.lo[s], self.hi[s]);
            if ai < rl - self.cfg.feas_tol {
                // Clamp logical at lower bound; artificial covers the gap.
                self.state[s] = VarState::AtLower;
                self.x[s] = rl;
                artificial_cols.push((i, 1.0, rl - ai));
            } else if ai > rh + self.cfg.feas_tol {
                self.state[s] = VarState::AtUpper;
                self.x[s] = rh;
                artificial_cols.push((i, -1.0, ai - rh));
            } else {
                // Logical basic carrying the activity.
                self.state[s] = VarState::Basic(self.basis.len());
                self.x[s] = ai;
                self.basis.push(s);
            }
        }
        for (i, sign, value) in artificial_cols {
            let col = self.cols.push_col([(i, sign)]);
            debug_assert_eq!(col, self.lo.len());
            self.lo.push(0.0);
            self.hi.push(crate::problem::INF);
            self.cost.push(0.0);
            self.state.push(VarState::Basic(self.basis.len()));
            self.x.push(value);
            self.basis.push(col);
            self.n_artificials += 1;
        }
        // Order basis by row for a clean initial inverse, then factorize.
        // (basis currently holds one var per row already, but positions are
        // interleaved; fix the recorded positions.)
        let order: Vec<usize> = {
            let mut per_row: Vec<Option<usize>> = vec![None; m];
            for &j in &self.basis {
                // Each initial basis column has exactly one nonzero row; a
                // violation means the column store is corrupt — surface it
                // as a recoverable singular-basis fault, never a panic.
                let Some((r, _)) = self.cols.col(j).next() else {
                    return Err(LpError::Fault(SolverFault::BasisSingular(format!(
                        "initial basis column {j} is empty"
                    ))));
                };
                per_row[r] = Some(j);
            }
            let mut order = Vec::with_capacity(m);
            for (i, o) in per_row.into_iter().enumerate() {
                match o {
                    Some(j) => order.push(j),
                    None => {
                        return Err(LpError::Fault(SolverFault::BasisSingular(format!(
                            "no basis variable covers row {i} in the start basis"
                        ))))
                    }
                }
            }
            order
        };
        self.basis = order;
        for (pos, &j) in self.basis.iter().enumerate() {
            self.state[j] = VarState::Basic(pos);
        }
        self.refactor()?;
        self.recompute_basics();
        self.degen_run = 0;
        Ok(())
    }

    /// Packages the current point into a [`Solution`] for the caller.
    fn extract(&mut self, status: SolveStatus) -> Solution {
        let mut y = {
            // Duals under the *original* costs.
            let saved = std::mem::replace(&mut self.work_cost, self.cost.clone());
            self.work_cost.resize(self.total_vars(), 0.0);
            let y = self.btran_duals();
            self.work_cost = saved;
            y
        };
        // Reduced costs use the (possibly row-scaled) columns with the
        // matching scaled duals — the products are scale-invariant.
        let mut reduced = vec![0.0; self.n];
        for (j, rj) in reduced.iter_mut().enumerate() {
            *rj = self.cost[j] - self.cols.col_dot(j, &y);
        }
        // Row dual y_i is the multiplier of row i: reduced cost of the
        // logical variable is `0 − yᵀ(−e_i) = y_i`. When the recovery
        // ladder rescaled the rows, map duals back to original units.
        if let Some(s) = &self.row_scale {
            for (yi, si) in y.iter_mut().zip(s) {
                *yi *= si;
            }
        }
        let x = self.x[..self.n].to_vec();
        let objective = if status == SolveStatus::Optimal {
            self.cost[..self.n]
                .iter()
                .zip(x.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
                + self.obj_offset
        } else {
            f64::NAN
        };
        let solution = Solution {
            status,
            x,
            objective,
            duals: y,
            reduced_costs: reduced,
            iterations: self.iterations,
            degraded: false,
        };
        if status == SolveStatus::Optimal {
            // Last rung of the recovery ladder: remember the point.
            self.best_feasible = Some(solution.clone());
        }
        solution
    }
}
