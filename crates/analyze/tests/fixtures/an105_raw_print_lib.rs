//@ rel: crates/campaign/src/progress.rs
//@ expect: AN105 5:5
//@ expect: AN105 9:5
fn report(done: usize) {
    println!("done {done}");
}

fn warn(msg: &str) {
    eprintln!("campaign: {msg}");
}
