//! Synthetic topology families.
//!
//! Figure 4b of the paper studies Demand Pinning on "circles with n nodes
//! where each node connects to a varying number of its nearest neighbors" —
//! circulant graphs `C(n, k)` — because the DP optimality gap tracks the
//! average shortest-path length. This module provides that family plus the
//! standard small families (line, star, grid) used in unit tests and
//! examples.

use crate::graph::{NodeId, Topology};

/// Circulant graph `C(n, k)`: `n` nodes on a circle, each linked to its `k`
/// nearest neighbors on each side (so degree `2k`). `k = 1` is a plain
/// ring. All links bidirectional with the given capacity.
///
/// # Panics
/// Panics if `n < 3` or `k == 0` or `k >= n / 2 + 1`.
pub fn circulant(n: usize, k: usize, capacity: f64) -> Topology {
    assert!(n >= 3, "need at least 3 nodes");
    assert!(k >= 1 && 2 * k < n, "need 1 <= k < n/2");
    let mut t = Topology::new(format!("C({n},{k})"));
    let ids = t.add_nodes("v", n);
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            t.add_link(ids[i], ids[j], capacity).expect("valid link");
        }
    }
    t
}

/// Simple path graph (a chain) of `n` nodes with bidirectional links.
pub fn line(n: usize, capacity: f64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("Line({n})"));
    let ids = t.add_nodes("v", n);
    for i in 0..n - 1 {
        t.add_link(ids[i], ids[i + 1], capacity).expect("valid link");
    }
    t
}

/// Unidirectional chain of `n` nodes (edges only point "rightward"), used
/// by the Figure-1 style examples with unidirectional links.
pub fn directed_line(n: usize, capacity: f64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("DirLine({n})"));
    let ids = t.add_nodes("v", n);
    for i in 0..n - 1 {
        t.add_edge(ids[i], ids[i + 1], capacity).expect("valid edge");
    }
    t
}

/// Star with `n` leaves around a hub (node 0).
pub fn star(n_leaves: usize, capacity: f64) -> Topology {
    assert!(n_leaves >= 1);
    let mut t = Topology::new(format!("Star({n_leaves})"));
    let hub = t.add_node("hub");
    for i in 0..n_leaves {
        let leaf = t.add_node(format!("leaf{i}"));
        t.add_link(hub, leaf, capacity).expect("valid link");
    }
    t
}

/// `rows × cols` grid with bidirectional links.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> Topology {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut t = Topology::new(format!("Grid({rows}x{cols})"));
    let ids = t.add_nodes("v", rows * cols);
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                t.add_link(at(r, c), at(r, c + 1), capacity).expect("valid");
            }
            if r + 1 < rows {
                t.add_link(at(r, c), at(r + 1, c), capacity).expect("valid");
            }
        }
    }
    t
}

/// A deterministic pseudo-random connected topology: a spanning random
/// tree plus `extra_links` random chords, seeded by `seed` (internal
/// xorshift — no external RNG dependency). Every link is bidirectional
/// with the given capacity. Useful for fuzz/stress tests that need many
/// distinct connected graphs.
pub fn random_connected(n: usize, extra_links: usize, capacity: f64, seed: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("Rand({n},{extra_links},{seed})"));
    let ids = t.add_nodes("v", n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1);
        state
    };
    // Random spanning tree: attach node i to a random earlier node.
    for i in 1..n {
        let j = (next() as usize) % i;
        t.add_link(ids[i], ids[j], capacity).expect("valid link");
    }
    // Random chords (skip duplicates/self-loops best-effort).
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_links && attempts < extra_links * 20 + 20 {
        attempts += 1;
        let a = (next() as usize) % n;
        let b = (next() as usize) % n;
        if a == b {
            continue;
        }
        // Tolerate parallel links rarely; keep graphs simple by checking
        // existing out-edges.
        let dup = t
            .out_edges(ids[a])
            .any(|e| t.endpoints(e).1 == ids[b]);
        if dup {
            continue;
        }
        t.add_link(ids[a], ids[b], capacity).expect("valid link");
        added += 1;
    }
    t
}

/// Average shortest-path length (in hops) over all ordered node pairs —
/// the x-axis of Figure 4b.
pub fn average_shortest_path_length(t: &Topology) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for s in t.nodes() {
        // BFS by hops.
        let mut dist = vec![usize::MAX; t.n_nodes()];
        dist[s.0] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in t.out_edges(u) {
                let (_, v) = t.endpoints(e);
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        for d in t.nodes() {
            if d != s && dist[d.0] != usize::MAX {
                total += dist[d.0] as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// The hub-and-spoke triangle of the paper's Figure 1: three nodes with
/// *unidirectional* links `1→2` and `2→3` (so the only route `1→3` is the
/// two-hop path through node 2).
pub fn figure1_triangle(capacity: f64) -> (Topology, [NodeId; 3]) {
    let mut t = Topology::new("Figure1");
    let n1 = t.add_node("1");
    let n2 = t.add_node("2");
    let n3 = t.add_node("3");
    t.add_edge(n1, n2, capacity).expect("valid");
    t.add_edge(n2, n3, capacity).expect("valid");
    (t, [n1, n2, n3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::shortest_path;

    #[test]
    fn circulant_shapes() {
        let ring = circulant(8, 1, 100.0);
        assert_eq!(ring.n_nodes(), 8);
        assert_eq!(ring.n_edges(), 16); // 8 links × 2 directions
        let c2 = circulant(8, 2, 100.0);
        assert_eq!(c2.n_edges(), 32);
    }

    #[test]
    fn circulant_path_lengths_shrink_with_degree() {
        let l1 = average_shortest_path_length(&circulant(12, 1, 1.0));
        let l2 = average_shortest_path_length(&circulant(12, 2, 1.0));
        let l3 = average_shortest_path_length(&circulant(12, 3, 1.0));
        assert!(l1 > l2 && l2 > l3, "{l1} {l2} {l3}");
        assert!((l1 - 3.2727).abs() < 1e-3); // ring of 12: avg = 36/11
    }

    #[test]
    fn line_and_star_and_grid() {
        assert_eq!(line(5, 1.0).n_edges(), 8);
        assert_eq!(star(4, 1.0).n_edges(), 8);
        assert_eq!(grid(2, 3, 1.0).n_edges(), 14);
        let g = grid(3, 3, 1.0);
        let p = shortest_path(&g, NodeId(0), NodeId(8)).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn directed_line_is_one_way() {
        let t = directed_line(3, 1.0);
        assert!(shortest_path(&t, NodeId(0), NodeId(2)).is_ok());
        assert!(shortest_path(&t, NodeId(2), NodeId(0)).is_err());
    }

    #[test]
    fn figure1_shape() {
        let (t, [n1, _, n3]) = figure1_triangle(100.0);
        assert_eq!(t.n_edges(), 2);
        let p = shortest_path(&t, n1, n3).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic]
    fn circulant_rejects_overconnection() {
        circulant(6, 3, 1.0);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in [1u64, 7, 42, 1234] {
            let t = random_connected(9, 4, 10.0, seed);
            for s in t.nodes() {
                for d in t.nodes() {
                    if s != d {
                        assert!(
                            shortest_path(&t, s, d).is_ok(),
                            "seed {seed}: {} → {} disconnected",
                            s.0,
                            d.0
                        );
                    }
                }
            }
            // Determinism: same seed, same graph.
            let t2 = random_connected(9, 4, 10.0, seed);
            assert_eq!(t.n_edges(), t2.n_edges());
            for e in t.edges() {
                assert_eq!(t.endpoints(e), t2.endpoints(e));
            }
        }
        // Different seeds give different graphs (overwhelmingly likely).
        let a = random_connected(9, 4, 10.0, 1);
        let b = random_connected(9, 4, 10.0, 2);
        let same = a.n_edges() == b.n_edges()
            && a.edges().all(|e| a.endpoints(e) == b.endpoints(e));
        assert!(!same, "seeds 1 and 2 produced identical graphs");
    }
}
