//! Campaign cells: one cell = one (instance × heuristic × sweep range ×
//! budget) experiment, self-describing enough that a *different process*
//! can rebuild the exact same problem from its journal record.
//!
//! Rebuilding works because everything downstream is deterministic: the
//! builtin topologies are constants, path enumeration and model
//! compilation are pure functions of the instance, and POP partitions are
//! regenerated from a recorded RNG seed. The journal therefore stores
//! *specs*, never compiled models.

use crate::{wire, CampaignError};
use metaopt_core::{
    ConstrainedSet, FinderConfig, HeuristicSpec, PopMode, SweepState, SweepWitness,
};
use metaopt_milp::{Checkpoint, SweepMachine};
use metaopt_resilience::FaultPlan;
use metaopt_te::{pop::random_partitions, TeInstance};
use metaopt_topology::{builtin, synth::figure1_triangle, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which network a cell runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's Figure-1 triangle with uniform capacity.
    Fig1 {
        /// Uniform link capacity.
        cap: f64,
    },
    /// A named builtin WAN (`swan`, `b4`, `abilene`, `geant`).
    Builtin {
        /// Builtin topology name.
        name: String,
        /// Uniform link capacity.
        cap: f64,
    },
}

/// An explicit demand-pair list (by node index); `None` = all pairs.
type ExplicitPairs = Option<Vec<(usize, usize)>>;

impl TopologySpec {
    fn build_topology(&self) -> Result<(Topology, ExplicitPairs), CampaignError> {
        match self {
            TopologySpec::Fig1 { cap } => {
                let (t, [n1, n2, n3]) = figure1_triangle(*cap);
                Ok((t, Some(vec![(n1.0, n3.0), (n1.0, n2.0), (n2.0, n3.0)])))
            }
            TopologySpec::Builtin { name, cap } => {
                let t = match name.as_str() {
                    "swan" => builtin::swan(*cap),
                    "b4" => builtin::b4(*cap),
                    "abilene" => builtin::abilene(*cap),
                    "geant" => builtin::geant(*cap),
                    other => {
                        return Err(CampaignError::Config(format!(
                            "unknown builtin topology `{other}`"
                        )))
                    }
                };
                Ok((t, None))
            }
        }
    }
}

/// Which heuristic a cell attacks. POP partitions are *not* stored; they
/// are redrawn from `seed`, which keeps the journal small and the rebuild
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum CellHeuristic {
    /// Demand Pinning with the given pin threshold.
    Dp {
        /// Pin threshold (absolute volume units).
        threshold: f64,
    },
    /// POP with `n_insts` random `n_parts`-way partitions drawn from
    /// `seed`, summarized by `tail_rank` (None = average).
    Pop {
        /// Partitions per instantiation.
        n_parts: usize,
        /// Number of random instantiations.
        n_insts: usize,
        /// RNG seed the partitions are redrawn from.
        seed: u64,
        /// `Some(k)` = k-th worst instantiation; `None` = average.
        tail_rank: Option<usize>,
    },
}

/// A fully serializable description of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Human-readable label (appears in reports and CSV output).
    pub label: String,
    /// The network.
    pub topology: TopologySpec,
    /// Paths enumerated per demand pair.
    pub paths_per_pair: usize,
    /// The heuristic under attack.
    pub heuristic: CellHeuristic,
    /// Sweep range lower bound.
    pub lo: f64,
    /// Sweep range upper bound.
    pub hi: f64,
    /// Sweep resolution.
    pub resolution: f64,
    /// Per-probe branch-and-bound node cap (a probe still inconclusive at
    /// the cap is recorded as "no witness at this threshold").
    pub probe_cap_nodes: usize,
    /// Nodes per scheduler tick. Every cell *always* runs in ticks of this
    /// size with a checkpoint journaled at each boundary — interrupted and
    /// uninterrupted runs execute the identical tick sequence, which is
    /// what makes crash recovery bit-exact.
    pub slice_nodes: usize,
    /// Optional per-cell wall-clock timeout (seconds). Trades determinism
    /// for liveness; the crash-recovery CI job leaves it `None`.
    pub timeout_secs: Option<f64>,
    /// Optional deterministic fault-injection seed
    /// ([`FaultPlan::from_seed`]) so a quarantined cell's failure can be
    /// replayed exactly.
    pub fault_seed: Option<u64>,
    /// Optional quantization grid for the constrained demand set
    /// (`None` = continuous demands).
    pub quantized: Option<Vec<f64>>,
}

impl CellSpec {
    /// Encodes the spec as whitespace-separated journal tokens.
    pub fn encode(&self) -> String {
        let mut out = vec![wire::escape(&self.label)];
        match &self.topology {
            TopologySpec::Fig1 { cap } => {
                out.push("fig1".into());
                out.push(wire::fhex(*cap));
            }
            TopologySpec::Builtin { name, cap } => {
                out.push("builtin".into());
                out.push(wire::escape(name));
                out.push(wire::fhex(*cap));
            }
        }
        out.push(self.paths_per_pair.to_string());
        match &self.heuristic {
            CellHeuristic::Dp { threshold } => {
                out.push("dp".into());
                out.push(wire::fhex(*threshold));
            }
            CellHeuristic::Pop {
                n_parts,
                n_insts,
                seed,
                tail_rank,
            } => {
                out.push("pop".into());
                out.push(n_parts.to_string());
                out.push(n_insts.to_string());
                out.push(seed.to_string());
                out.push(tail_rank.map_or("avg".into(), |k| format!("tail:{k}")));
            }
        }
        out.push(wire::fhex(self.lo));
        out.push(wire::fhex(self.hi));
        out.push(wire::fhex(self.resolution));
        out.push(self.probe_cap_nodes.to_string());
        out.push(self.slice_nodes.to_string());
        out.push(self.timeout_secs.map_or("none".into(), wire::fhex));
        out.push(self.fault_seed.map_or("none".into(), |s| s.to_string()));
        match &self.quantized {
            None => out.push("none".into()),
            Some(levels) => {
                out.push(levels.len().to_string());
                out.extend(levels.iter().map(|&l| wire::fhex(l)));
            }
        }
        out.join(" ")
    }

    /// Decodes a spec from its journal tokens.
    pub fn decode(s: &str) -> Result<CellSpec, String> {
        let mut tok = s.split_whitespace();
        let mut next = |what: &str| {
            tok.next()
                .map(str::to_string)
                .ok_or_else(|| format!("cell spec missing {what}"))
        };
        let label = wire::unescape(&next("label")?)?;
        let topology = match next("topology kind")?.as_str() {
            "fig1" => TopologySpec::Fig1 {
                cap: wire::parse_fhex(&next("fig1 cap")?)?,
            },
            "builtin" => TopologySpec::Builtin {
                name: wire::unescape(&next("builtin name")?)?,
                cap: wire::parse_fhex(&next("builtin cap")?)?,
            },
            other => return Err(format!("unknown topology kind `{other}`")),
        };
        let paths_per_pair = wire::parse_usize(&next("paths_per_pair")?, "paths_per_pair")?;
        let heuristic = match next("heuristic kind")?.as_str() {
            "dp" => CellHeuristic::Dp {
                threshold: wire::parse_fhex(&next("dp threshold")?)?,
            },
            "pop" => {
                let n_parts = wire::parse_usize(&next("pop n_parts")?, "pop n_parts")?;
                let n_insts = wire::parse_usize(&next("pop n_insts")?, "pop n_insts")?;
                let seed = wire::parse_u64(&next("pop seed")?, "pop seed")?;
                let mode = next("pop mode")?;
                let tail_rank = if mode == "avg" {
                    None
                } else if let Some(k) = mode.strip_prefix("tail:") {
                    Some(wire::parse_usize(k, "pop tail rank")?)
                } else {
                    return Err(format!("unknown pop mode `{mode}`"));
                };
                CellHeuristic::Pop {
                    n_parts,
                    n_insts,
                    seed,
                    tail_rank,
                }
            }
            other => return Err(format!("unknown heuristic kind `{other}`")),
        };
        let lo = wire::parse_fhex(&next("lo")?)?;
        let hi = wire::parse_fhex(&next("hi")?)?;
        let resolution = wire::parse_fhex(&next("resolution")?)?;
        let probe_cap_nodes = wire::parse_usize(&next("probe_cap_nodes")?, "probe_cap_nodes")?;
        let slice_nodes = wire::parse_usize(&next("slice_nodes")?, "slice_nodes")?;
        let timeout = next("timeout")?;
        let timeout_secs = if timeout == "none" {
            None
        } else {
            Some(wire::parse_fhex(&timeout)?)
        };
        let fault = next("fault seed")?;
        let fault_seed = if fault == "none" {
            None
        } else {
            Some(wire::parse_u64(&fault, "fault seed")?)
        };
        let quant = next("quantization")?;
        let quantized = if quant == "none" {
            None
        } else {
            let n = wire::parse_usize(&quant, "quantization level count")?;
            let mut levels = Vec::with_capacity(n);
            for i in 0..n {
                levels.push(wire::parse_fhex(&next(&format!("quantization level {i}"))?)?);
            }
            Some(levels)
        };
        if tok.next().is_some() {
            return Err("trailing tokens after cell spec".into());
        }
        Ok(CellSpec {
            label,
            topology,
            paths_per_pair,
            heuristic,
            lo,
            hi,
            resolution,
            probe_cap_nodes,
            slice_nodes,
            timeout_secs,
            fault_seed,
            quantized,
        })
    }

    /// Rebuilds the runnable problem: instance, heuristic, constraint set,
    /// and finder config. Deterministic — two processes building the same
    /// spec get bit-identical models.
    pub fn build(
        &self,
    ) -> Result<(TeInstance, HeuristicSpec, ConstrainedSet, FinderConfig), CampaignError> {
        let (topo, pairs) = self.topology.build_topology()?;
        let inst = match pairs {
            Some(p) => {
                let p = p
                    .into_iter()
                    .map(|(s, t)| (metaopt_topology::NodeId(s), metaopt_topology::NodeId(t)))
                    .collect();
                TeInstance::with_pairs(topo, p, self.paths_per_pair)
            }
            None => TeInstance::all_pairs(topo, self.paths_per_pair),
        }
        .map_err(|e| CampaignError::Config(format!("cell `{}`: {e}", self.label)))?;

        let spec = match &self.heuristic {
            CellHeuristic::Dp { threshold } => HeuristicSpec::DemandPinning {
                threshold: *threshold,
            },
            CellHeuristic::Pop {
                n_parts,
                n_insts,
                seed,
                tail_rank,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let partitions = random_partitions(inst.n_pairs(), *n_parts, *n_insts, &mut rng);
                HeuristicSpec::Pop {
                    partitions,
                    mode: tail_rank.map_or(PopMode::Average, |rank| PopMode::TailWorst { rank }),
                }
            }
        };

        let mut cfg = FinderConfig::default();
        cfg.milp.max_nodes = self.probe_cap_nodes;
        // Node-budgeted: no wall-clock stop inside the solver, so resumed
        // ticks replay identically. Cell timeouts act at the slice layer.
        cfg.milp.time_limit = None;
        cfg.milp.stall_window = None;
        cfg.milp.fault_plan = self.fault_seed.map(FaultPlan::from_seed);
        let cs = match &self.quantized {
            None => ConstrainedSet::unconstrained(),
            Some(levels) => ConstrainedSet::unconstrained().quantized(levels.clone()),
        };
        Ok((inst, spec, cs, cfg))
    }

    /// A fresh resumable sweep state for this cell.
    pub fn fresh_state(&self) -> Result<SweepState, CampaignError> {
        SweepState::new(self.lo, self.hi, self.resolution).map_err(CampaignError::Core)
    }
}

/// The certified outcome of a completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Highest certified threshold (None: the range was infeasible).
    pub threshold: Option<f64>,
    /// The witness's re-certified gap.
    pub verified_gap: Option<f64>,
    /// The witness demands (empty when no witness).
    pub demands: Vec<f64>,
    /// Probe invocations spent.
    pub probes: usize,
    /// Branch-and-bound nodes spent across all probes and ticks.
    pub nodes: usize,
}

impl CellOutcome {
    /// Encodes the outcome as journal tokens.
    pub fn encode(&self) -> String {
        let mut out = vec![
            self.probes.to_string(),
            self.nodes.to_string(),
            self.threshold.map_or("none".into(), wire::fhex),
            self.verified_gap.map_or("none".into(), wire::fhex),
            self.demands.len().to_string(),
        ];
        out.extend(self.demands.iter().map(|&d| wire::fhex(d)));
        out.join(" ")
    }

    /// Decodes an outcome from its journal tokens.
    pub fn decode(s: &str) -> Result<CellOutcome, String> {
        let mut tok = s.split_whitespace();
        let mut next = |what: &str| {
            tok.next()
                .map(str::to_string)
                .ok_or_else(|| format!("cell outcome missing {what}"))
        };
        let probes = wire::parse_usize(&next("probes")?, "probes")?;
        let nodes = wire::parse_usize(&next("nodes")?, "nodes")?;
        let t = next("threshold")?;
        let threshold = if t == "none" {
            None
        } else {
            Some(wire::parse_fhex(&t)?)
        };
        let g = next("verified gap")?;
        let verified_gap = if g == "none" {
            None
        } else {
            Some(wire::parse_fhex(&g)?)
        };
        let n = wire::parse_usize(&next("demand count")?, "demand count")?;
        let mut demands = Vec::with_capacity(n);
        for i in 0..n {
            demands.push(wire::parse_fhex(&next(&format!("demand {i}"))?)?);
        }
        if tok.next().is_some() {
            return Err("trailing tokens after cell outcome".into());
        }
        Ok(CellOutcome {
            threshold,
            verified_gap,
            demands,
            probes,
            nodes,
        })
    }
}

/// Serializes a resumable [`SweepState`] (bisection machine, best witness,
/// node counter, and the in-flight probe's checkpointed frontier) into one
/// journal token stream.
pub fn encode_sweep_state(state: &SweepState) -> String {
    let m = &state.machine;
    let mut out = vec![
        wire::fhex(m.lo_bound),
        wire::fhex(m.hi_bound),
        wire::fhex(m.resolution),
        if m.seeded { "1" } else { "0" }.to_string(),
        if m.failed_at_lo { "1" } else { "0" }.to_string(),
        m.best.map_or("none".into(), wire::fhex),
        m.probes.to_string(),
        state.nodes.to_string(),
    ];
    match &state.best_witness {
        None => out.push("none".into()),
        Some(w) => {
            out.push(wire::fhex(w.verified_gap));
            out.push(w.demands.len().to_string());
            out.extend(w.demands.iter().map(|&d| wire::fhex(d)));
        }
    }
    match &state.pending {
        None => out.push("none".into()),
        Some(p) => {
            out.push(wire::fhex(p.g));
            out.push(wire::escape(&p.checkpoint.to_text()));
        }
    }
    out.join(" ")
}

/// Inverse of [`encode_sweep_state`]. Rejects malformed input with a
/// message (never panics — journal bytes are untrusted after a crash).
pub fn decode_sweep_state(s: &str) -> Result<SweepState, String> {
    let mut tok = s.split_whitespace();
    let mut next = |what: &str| {
        tok.next()
            .map(str::to_string)
            .ok_or_else(|| format!("sweep state missing {what}"))
    };
    let lo_bound = wire::parse_fhex(&next("lo_bound")?)?;
    let hi_bound = wire::parse_fhex(&next("hi_bound")?)?;
    let resolution = wire::parse_fhex(&next("resolution")?)?;
    let seeded = parse_flag(&next("seeded")?, "seeded")?;
    let failed_at_lo = parse_flag(&next("failed_at_lo")?, "failed_at_lo")?;
    let best_tok = next("best")?;
    let best = if best_tok == "none" {
        None
    } else {
        Some(wire::parse_fhex(&best_tok)?)
    };
    let probes = wire::parse_usize(&next("probes")?, "probes")?;
    let nodes = wire::parse_usize(&next("nodes")?, "nodes")?;
    // NaNs must fail these checks too — the journal bytes are untrusted.
    if lo_bound.is_nan() || hi_bound.is_nan() || lo_bound > hi_bound || resolution.is_nan() || resolution <= 0.0 {
        return Err(format!(
            "inconsistent sweep bounds [{lo_bound}, {hi_bound}] / resolution {resolution}"
        ));
    }
    let machine = SweepMachine {
        lo_bound,
        hi_bound,
        resolution,
        seeded,
        failed_at_lo,
        best,
        probes,
    };
    let w_tok = next("witness")?;
    let best_witness = if w_tok == "none" {
        None
    } else {
        let verified_gap = wire::parse_fhex(&w_tok)?;
        let n = wire::parse_usize(&next("witness demand count")?, "witness demand count")?;
        let mut demands = Vec::with_capacity(n);
        for i in 0..n {
            demands.push(wire::parse_fhex(&next(&format!("witness demand {i}"))?)?);
        }
        Some(SweepWitness {
            demands,
            verified_gap,
        })
    };
    let p_tok = next("pending")?;
    let pending = if p_tok == "none" {
        None
    } else {
        let g = wire::parse_fhex(&p_tok)?;
        let blob = wire::unescape(&next("pending checkpoint")?)?;
        let checkpoint = Checkpoint::from_text(&blob).map_err(|e| e.to_string())?;
        Some(metaopt_core::PendingProbe { g, checkpoint })
    };
    if tok.next().is_some() {
        return Err("trailing tokens after sweep state".into());
    }
    Ok(SweepState {
        machine,
        best_witness,
        nodes,
        pending,
    })
}

fn parse_flag(s: &str, what: &str) -> Result<bool, String> {
    match s {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(format!("bad {what} flag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp_cell() -> CellSpec {
        CellSpec {
            label: "fig1 dp T=50".into(),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold: 50.0 },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 4_000,
            slice_nodes: 16,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        }
    }

    #[test]
    fn cell_spec_round_trips() {
        let cells = [
            dp_cell(),
            CellSpec {
                label: "abilene pop 2x3 ~weird label\\".into(),
                topology: TopologySpec::Builtin {
                    name: "abilene".into(),
                    cap: 1000.0,
                },
                paths_per_pair: 3,
                heuristic: CellHeuristic::Pop {
                    n_parts: 2,
                    n_insts: 3,
                    seed: 42,
                    tail_rank: Some(1),
                },
                lo: 0.0,
                hi: 500.0,
                resolution: 10.0,
                probe_cap_nodes: 100,
                slice_nodes: 5,
                timeout_secs: Some(12.5),
                fault_seed: Some(7),
                quantized: Some(vec![0.0, 50.0, 1000.0]),
            },
        ];
        for c in cells {
            let enc = c.encode();
            assert_eq!(CellSpec::decode(&enc).unwrap(), c, "{enc}");
        }
    }

    #[test]
    fn cell_spec_decode_rejects_garbage() {
        for bad in [
            "",
            "label fig1",
            "label fig1 notahexfloat 2 dp 0000000000000000",
            "label tokamak 0000000000000000 2 dp 0 0 0 0 1 1 none none",
            &format!("{} trailing", dp_cell().encode()),
        ] {
            assert!(CellSpec::decode(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn cell_outcome_round_trips() {
        let outs = [
            CellOutcome {
                threshold: Some(50.0),
                verified_gap: Some(50.0),
                demands: vec![50.0, 100.0, 100.0],
                probes: 7,
                nodes: 123,
            },
            CellOutcome {
                threshold: None,
                verified_gap: None,
                demands: vec![],
                probes: 1,
                nodes: 9,
            },
        ];
        for o in outs {
            assert_eq!(CellOutcome::decode(&o.encode()).unwrap(), o);
        }
    }

    #[test]
    fn fresh_sweep_state_round_trips() {
        let st = dp_cell().fresh_state().unwrap();
        let enc = encode_sweep_state(&st);
        let back = decode_sweep_state(&enc).unwrap();
        assert_eq!(back.machine, st.machine);
        assert_eq!(back.nodes, st.nodes);
        assert!(back.best_witness.is_none() && back.pending.is_none());
    }

    #[test]
    fn builds_fig1_and_pop_cells() {
        let (inst, spec, _cs, cfg) = dp_cell().build().unwrap();
        assert_eq!(inst.n_pairs(), 3);
        assert!(matches!(spec, HeuristicSpec::DemandPinning { .. }));
        assert_eq!(cfg.milp.max_nodes, 4_000);
        assert!(cfg.milp.time_limit.is_none());

        let pop = CellSpec {
            label: "pop".into(),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            heuristic: CellHeuristic::Pop {
                n_parts: 2,
                n_insts: 2,
                seed: 3,
                tail_rank: None,
            },
            ..dp_cell()
        };
        let (_, spec_a, _, _) = pop.build().unwrap();
        let (_, spec_b, _, _) = pop.build().unwrap();
        // Partition regeneration is deterministic across builds.
        match (spec_a, spec_b) {
            (
                HeuristicSpec::Pop { partitions: a, .. },
                HeuristicSpec::Pop { partitions: b, .. },
            ) => {
                assert_eq!(a.len(), 2);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.assignment, y.assignment);
                }
            }
            _ => panic!("expected POP specs"),
        }
    }
}
