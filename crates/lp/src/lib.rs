#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-lp
//!
//! A self-contained linear-programming substrate for the `metaopt` workspace.
//!
//! The paper this workspace reproduces ("Minding the gap between fast
//! heuristics and their optimal counterparts", HotNets '22) relies on a
//! commercial LP/MILP solver (Gurobi). This crate provides the LP layer of
//! that substrate from scratch:
//!
//! * [`LpProblem`] — a builder for linear programs with bounded variables and
//!   `<=` / `==` / `>=` rows,
//! * [`Simplex`] — a bounded-variable revised simplex solver with a
//!   two-phase primal method (artificial-variable phase I) and a dual simplex
//!   method used for warm-started re-solves after bound changes (the
//!   operation branch-and-bound performs at every node),
//! * [`Solution`] — primal values, dual values (row multipliers) and reduced
//!   costs, which the KKT machinery of `metaopt-model` is validated against.
//!
//! The solver factorizes the simplex basis through one of two
//! interchangeable backends (see [`FactorBackend`]): a sparse LU core with
//! Markowitz-threshold pivoting and product-form eta updates (the default),
//! or the original explicit dense inverse kept alive as the
//! differential-test oracle. Either backend refactorizes periodically for
//! numerical hygiene. Degeneracy — ubiquitous in traffic-engineering LPs —
//! is handled with a Bland-rule fallback after a run of degenerate pivots.
//! A bounded [`presolve`](Presolve) shrinks problems before the simplex
//! sees them and restores full primal/dual solutions afterwards.

mod factor;
mod metrics;
mod presolve;
mod problem;
mod solution;
mod solver;
mod sparse;

pub use factor::FactorBackend;
pub use metrics::LpMetrics;
pub use presolve::{Presolve, PresolveOutcome};
pub use problem::{LpProblem, RowId, RowSense, VarId, INF, NEG_INF};
pub use solution::{Solution, SolveStatus};
pub use solver::{Basis, Simplex, SimplexConfig};
pub use sparse::SparseMat;

pub use metaopt_resilience::{Budget, FaultPlan, FaultSite, SolverFault};

/// Errors surfaced by the LP layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable/row index did not belong to the problem it was used with.
    BadIndex(String),
    /// Lower bound exceeds upper bound (beyond tolerance), empty box.
    EmptyBounds {
        /// Variable index (or `usize::MAX` for row ranges).
        var: usize,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// Row activity range with `rlo > rhi`, an unsatisfiable row.
    EmptyRowRange {
        /// Row index.
        row: usize,
        /// Offending range lower bound.
        lo: f64,
        /// Offending range upper bound.
        hi: f64,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite where a
    /// finite value is required.
    NotFinite(String),
    /// The iteration limit was exceeded before reaching a conclusion.
    IterationLimit,
    /// Internal numerical failure that survived refactorization retries.
    Numerical(String),
    /// A structured solver fault (see [`SolverFault`]): numerical
    /// breakdown, singular basis, expired deadline, contained callback
    /// panic, or stall. Recoverable faults are retried by the simplex
    /// recovery ladder before surfacing here.
    Fault(SolverFault),
}

impl LpError {
    /// Whether the in-solver recovery ladder (cold restart, row rescale,
    /// bound perturbation) may clear this error on a retry.
    pub fn is_recoverable(&self) -> bool {
        match self {
            LpError::Numerical(_) => true,
            LpError::Fault(f) => f.is_recoverable(),
            _ => false,
        }
    }

    /// The structured fault, if this error carries one.
    pub fn fault(&self) -> Option<&SolverFault> {
        match self {
            LpError::Fault(f) => Some(f),
            _ => None,
        }
    }
}

impl From<SolverFault> for LpError {
    fn from(f: SolverFault) -> Self {
        LpError::Fault(f)
    }
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::BadIndex(s) => write!(f, "bad index: {s}"),
            LpError::EmptyBounds { var, lo, hi } => {
                write!(f, "variable {var} has empty bounds [{lo}, {hi}]")
            }
            LpError::EmptyRowRange { row, lo, hi } => {
                write!(f, "row {row} has empty activity range [{lo}, {hi}]")
            }
            LpError::NotFinite(s) => write!(f, "non-finite data: {s}"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::Numerical(s) => write!(f, "numerical failure: {s}"),
            LpError::Fault(fault) => write!(f, "solver fault: {fault}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Convenience alias used across the crate.
pub type LpResult<T> = Result<T, LpError>;
