//! Zero-mean Gaussian sampling via the Box–Muller transform.
//!
//! The `rand` crate's core distribution set has no normal distribution
//! (that lives in `rand_distr`); the two-line Box–Muller transform keeps
//! the dependency surface minimal (see DESIGN.md).

use rand::Rng;

/// Samples `N(0, σ²)` deviates, caching the second Box–Muller output.
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    sigma: f64,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with standard deviation `sigma`.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0);
        GaussianSampler { sigma, spare: None }
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one `N(0, σ²)` sample.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(s) = self.spare.take() {
            return s * self.sigma;
        }
        // Box–Muller: u1 ∈ (0, 1], u2 ∈ [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = GaussianSampler::new(2.0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn zero_sigma_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = GaussianSampler::new(0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 0.0);
        }
    }
}
