#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-te
//!
//! The WAN traffic-engineering domain of the paper (§2): multi-commodity
//! flow over pre-chosen paths, the optimal scheme, and the two production
//! heuristics whose optimality gaps the paper studies.
//!
//! * [`TeInstance`] — a topology plus demand pairs plus k-shortest path
//!   sets (Table 1's `V, E, D, P`),
//! * [`flow`] — builders that emit the `FeasibleFlow` polytope (Eq. 2) into
//!   a model or an [`InnerProblem`] with *symbolic* demand volumes (the
//!   leader's variables of Eq. 1),
//! * [`opt`] — `OptMaxFlow` (Eq. 3): the optimal total-flow LP and a fast
//!   direct evaluator,
//! * [`demand_pinning`] — the production Demand Pinning heuristic
//!   (Eqs. 4–5): combinatorial evaluator (pin-below-threshold on shortest
//!   paths, then optimize the rest) and the big-M optimization form,
//! * [`pop`] — POP (Eq. 6): random demand partitions with capacity
//!   splitting, plus the Appendix-A *client splitting* extension,
//! * [`eval`] — gap evaluation `OPT(d) − Heuristic(d)` used by the
//!   black-box baselines and the branch-and-bound incumbent callback.

pub mod demand_pinning;
pub mod eval;
pub mod fairness;
pub mod flow;
pub mod instance;
pub mod opt;
pub mod pop;
pub mod utility;

pub use demand_pinning::{pin_set, DpOutcome};
pub use fairness::{max_min_fair, MaxMinOutcome};
pub use eval::{gap, normalized_gap, Heuristic};
pub use instance::TeInstance;
pub use opt::OptOutcome;
pub use pop::{client_split, random_partitions, Partition, PopOutcome};
pub use utility::{max_utility, UtilityCurve, UtilityOutcome};

use metaopt_model::InnerProblem;

/// Errors raised by the TE layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TeError {
    /// Path computation failed (disconnected pair).
    Topology(metaopt_topology::TopologyError),
    /// Model construction failed.
    Model(String),
    /// LP solve failed.
    Lp(metaopt_lp::LpError),
    /// Demand vector length does not match the instance's pair count.
    DemandMismatch {
        /// Pair count of the instance.
        expected: usize,
        /// Length of the supplied demand vector.
        got: usize,
    },
}

impl std::fmt::Display for TeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeError::Topology(e) => write!(f, "topology error: {e}"),
            TeError::Model(s) => write!(f, "model error: {s}"),
            TeError::Lp(e) => write!(f, "lp error: {e}"),
            TeError::DemandMismatch { expected, got } => {
                write!(f, "demand vector has {got} entries, instance has {expected} pairs")
            }
        }
    }
}

impl std::error::Error for TeError {}

impl From<metaopt_topology::TopologyError> for TeError {
    fn from(e: metaopt_topology::TopologyError) -> Self {
        TeError::Topology(e)
    }
}

impl From<metaopt_model::ModelError> for TeError {
    fn from(e: metaopt_model::ModelError) -> Self {
        TeError::Model(e.to_string())
    }
}

impl From<metaopt_lp::LpError> for TeError {
    fn from(e: metaopt_lp::LpError) -> Self {
        TeError::Lp(e)
    }
}

/// Result alias for this crate.
pub type TeResult<T> = Result<T, TeError>;

/// Flow variables created by a [`flow`] builder: `per_pair[k][p]` is the
/// model variable for flow of demand `k` on its `p`-th path.
#[derive(Debug, Clone)]
pub struct FlowVars {
    /// Flow variable per (pair, path).
    pub per_pair: Vec<Vec<metaopt_model::VarRef>>,
}

impl FlowVars {
    /// `Σ_k Σ_p f_k^p` — the total-flow objective of Eq. 3.
    pub fn total_flow(&self) -> metaopt_model::LinExpr {
        let mut e = metaopt_model::LinExpr::zero();
        for paths in &self.per_pair {
            for &v in paths {
                e.add_term(v, 1.0);
            }
        }
        e
    }

    /// `Σ_p f_k^p` — the flow granted to pair `k`.
    pub fn pair_flow(&self, k: usize) -> metaopt_model::LinExpr {
        let mut e = metaopt_model::LinExpr::zero();
        for &v in &self.per_pair[k] {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Registers every flow variable with an inner problem (when the flow
    /// polytope was built directly into a model rather than through
    /// [`flow::feasible_flow_inner`]).
    pub fn register_all(&self, inner: &mut InnerProblem) {
        for paths in &self.per_pair {
            for &v in paths {
                inner.register_var(v);
            }
        }
    }
}
