//! Parsing of the stable naming convention the KKT rewriter and the TE
//! encoders emit.
//!
//! * variables: `{prefix}::lam[{c}]` (inequality multiplier),
//!   `{prefix}::mu[{c}]` (equality multiplier), `{prefix}::f[{k}][{p}]`
//!   (flow variable), anything else with a `{prefix}::` head is an inner
//!   decision variable of `prefix`,
//! * constraints: `{prefix}::pf[{c}]` (primal feasibility),
//!   `{prefix}::stat[{var}]` (stationarity), `{prefix}::dem[{k}]` /
//!   `{prefix}::cap[{e}]` (TE demand/capacity rows, usually nested inside a
//!   `pf[..]` wrapper).
//!
//! Keys may themselves contain `::` and brackets (constraint names nest:
//! `opt::pf[opt::dem[3]]`), so bracketed keys are always taken up to the
//! *last* closing bracket.

/// Splits `name` at its first `::`, returning the inner-problem prefix.
pub(crate) fn prefix(name: &str) -> Option<&str> {
    name.split_once("::").map(|(p, _)| p)
}

/// If `name` is `{prefix}::{tag}[{key}]`, returns the bracketed key.
pub(crate) fn tagged_key<'a>(name: &'a str, pfx: &str, tag: &str) -> Option<&'a str> {
    let rest = name.strip_prefix(pfx)?.strip_prefix("::")?;
    let inner = rest.strip_prefix(tag)?.strip_prefix('[')?;
    inner.strip_suffix(']')
}

/// If `name` is `{anything}::{tag}[{key}]`, returns `(prefix, key)`.
pub(crate) fn any_tagged_key<'a>(name: &'a str, tag: &str) -> Option<(&'a str, &'a str)> {
    let pfx = prefix(name)?;
    Some((pfx, tagged_key(name, pfx, tag)?))
}

/// Parses a flow-variable name `{prefix}::f[{k}][{p}]` into `(k, p)`.
pub(crate) fn flow_indices(name: &str, pfx: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix(pfx)?.strip_prefix("::f[")?;
    let (k, rest) = rest.split_once(']')?;
    let p = rest.strip_prefix('[')?.strip_suffix(']')?;
    Some((k.parse().ok()?, p.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_keys_take_last_bracket() {
        assert_eq!(
            tagged_key("opt::pf[opt::dem[3]]", "opt", "pf"),
            Some("opt::dem[3]")
        );
        assert_eq!(
            any_tagged_key("pop[0][1]::lam[pop[0][1]::cap[7]]", "lam"),
            Some(("pop[0][1]", "pop[0][1]::cap[7]"))
        );
    }

    #[test]
    fn flow_names_parse() {
        assert_eq!(flow_indices("opt::f[12][3]", "opt"), Some((12, 3)));
        assert_eq!(flow_indices("opt::lam[c0]", "opt"), None);
        assert_eq!(flow_indices("dp::f[2][0]", "opt"), None);
    }
}
