//! Property tests for the journal and record codecs: corrupted or
//! truncated bytes are rejected (or dropped, when torn at the tail) —
//! never a panic, never a silently different replay.

use metaopt_campaign::{encode_line, parse_journal_bytes, CellSpec};
use proptest::prelude::*;

fn sample_payloads() -> Vec<String> {
    let spec = CellSpec {
        label: "prop cell ~ with \\ escapes".into(),
        topology: metaopt_campaign::TopologySpec::Fig1 { cap: 100.0 },
        paths_per_pair: 2,
        heuristic: metaopt_campaign::CellHeuristic::Dp { threshold: 50.0 },
        lo: 0.0,
        hi: 100.0,
        resolution: 4.0,
        probe_cap_nodes: 4_000,
        slice_nodes: 9,
        timeout_secs: None,
        fault_seed: Some(7),
        quantized: Some(vec![0.0, 50.0]),
    };
    vec![
        "campaign v1 prop 2".into(),
        format!("cell 0 {}", spec.encode()),
        "run 0 1".into(),
        "fail 0 1 timeout ~".into(),
        "quarantine 0 repeated_timeout 3".into(),
        "shutdown drained".into(),
    ]
}

fn journal_bytes() -> Vec<u8> {
    sample_payloads()
        .iter()
        .flat_map(|p| encode_line(p).into_bytes())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating a journal anywhere yields a verified prefix of the
    /// original records (the cut record is dropped as a torn tail), and
    /// never panics.
    #[test]
    fn truncation_yields_a_clean_prefix(cut in 0usize..2048) {
        let bytes = journal_bytes();
        let cut = cut.min(bytes.len());
        let out = parse_journal_bytes(&bytes[..cut]).unwrap();
        let originals = sample_payloads();
        prop_assert!(out.records.len() <= originals.len());
        for (got, want) in out.records.iter().zip(&originals) {
            prop_assert_eq!(got, want);
        }
        // Anything but a clean record boundary must be flagged as torn.
        let clean: Vec<usize> = std::iter::once(0)
            .chain(originals.iter().scan(0usize, |acc, p| {
                *acc += encode_line(p).len();
                Some(*acc)
            }))
            .collect();
        prop_assert_eq!(out.torn_tail, !clean.contains(&cut));
    }

    /// A single flipped byte is always caught: replay errors out
    /// (mid-file) or drops exactly the damaged record (at the tail).
    #[test]
    fn single_byte_flip_never_passes_silently(pos in 0usize..2048, bit in 0u8..8) {
        let mut bytes = journal_bytes();
        let len = bytes.len();
        let pos = pos.min(len - 1);
        bytes[pos] ^= 1 << bit;
        if bytes == journal_bytes() {
            return Ok(()); // no-op flip (can't happen with xor, but be safe)
        }
        match parse_journal_bytes(&bytes) {
            Err(_) => {}
            Ok(out) => {
                // Every surviving record must be one of the originals,
                // in order — corruption may only *drop* tail records,
                // never alter one.
                let originals = sample_payloads();
                prop_assert!(out.records.len() <= originals.len());
                for (got, want) in out.records.iter().zip(&originals) {
                    prop_assert_eq!(got, want);
                }
                prop_assert!(
                    out.torn_tail || out.records.len() == originals.len(),
                    "silent record loss without a torn-tail flag"
                );
            }
        }
    }

    /// Cell-spec decoding never panics on mutated token streams.
    #[test]
    fn cell_spec_decode_never_panics(
        drop_tok in 0usize..20,
        garbage_chars in proptest::collection::vec('!'..'\u{7f}', 0..12),
        insert_at in 0usize..20,
    ) {
        let spec_line = sample_payloads()[1].clone();
        let body = spec_line.strip_prefix("cell 0 ").unwrap();
        let mut toks: Vec<String> = body.split(' ').map(str::to_string).collect();
        if drop_tok < toks.len() {
            toks.remove(drop_tok);
        }
        let garbage: String = garbage_chars.into_iter().collect();
        if !garbage.is_empty() {
            toks.insert(insert_at.min(toks.len()), garbage);
        }
        let mutated = toks.join(" ");
        if let Ok(spec) = CellSpec::decode(&mutated) {
            // Anything that decodes must re-encode to a decodable spec.
            prop_assert!(CellSpec::decode(&spec.encode()).is_ok());
        }
    }

    /// Sweep-state decoding never panics on arbitrary text.
    #[test]
    fn sweep_state_decode_never_panics(
        chars in proptest::collection::vec(' '..'\u{7f}', 0..200),
    ) {
        let s: String = chars.into_iter().collect();
        let _ = metaopt_campaign::decode_sweep_state(&s);
    }
}
