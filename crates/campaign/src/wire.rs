//! The journal's wire vocabulary: whitespace-free token escaping, exact
//! `f64` bit encoding, and a CRC-32 used as the per-record checksum.
//!
//! Everything is hand-rolled text — the build environment has no registry
//! access, so there is no serde; a versioned line format with explicit
//! checksums is also easier to eyeball in a post-mortem than any binary
//! encoding.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Bitwise implementation — journal records are written per state
/// transition, not per node, so throughput is irrelevant; detection
/// strength is what matters (any burst error of ≤ 32 bits is caught,
/// which covers every single-byte corruption).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Escapes `s` into a single token containing no whitespace. The empty
/// string maps to `~` so field positions never collapse.
pub fn escape(s: &str) -> String {
    if s.is_empty() {
        return "~".into();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '~' => out.push_str("\\-"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]. Fails on dangling or unknown escapes.
pub fn unescape(s: &str) -> Result<String, String> {
    if s == "~" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('_') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('-') => out.push('~'),
            other => {
                return Err(format!(
                    "bad escape `\\{}`",
                    other.map_or(String::from("<eof>"), String::from)
                ))
            }
        }
    }
    Ok(out)
}

/// Exact text form of an `f64`: 16 hex digits of its bit pattern. Chosen
/// so that a resumed campaign compares and reports *bit-identical* values
/// to the uninterrupted run (decimal shortest-round-trip would also work,
/// but bit patterns make the exactness contract self-evident).
pub fn fhex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`fhex`].
pub fn parse_fhex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("float field `{s}` is not 16 hex digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad float bits `{s}`"))
}

/// Parses a `usize` field with context in the error.
pub fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

/// Parses a `u64` field with context in the error.
pub fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "",
            "plain",
            "with space",
            "multi\nline\ttabs\r",
            "back\\slash",
            "~tilde~",
            "mix \\ of ~ every\nthing",
        ] {
            let e = escape(s);
            assert!(
                !e.contains(' ') && !e.contains('\n') && !e.is_empty(),
                "escaped `{e}` not a clean token"
            );
            assert_eq!(unescape(&e).unwrap(), s);
        }
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn fhex_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -273.125,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1e300,
        ] {
            assert_eq!(parse_fhex(&fhex(v)).unwrap().to_bits(), v.to_bits());
        }
        let nan = parse_fhex(&fhex(f64::NAN)).unwrap();
        assert!(nan.is_nan());
        assert!(parse_fhex("123").is_err());
        assert!(parse_fhex("zzzzzzzzzzzzzzzz").is_err());
    }
}
