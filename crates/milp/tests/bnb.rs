//! Branch-and-bound integration tests: binaries, complementarity pairs,
//! KKT systems, sorting networks, and callbacks.

use metaopt_milp::{solve, solve_with_callback, IncumbentCallback, MilpConfig, MilpStatus};
use metaopt_model::{bigm, kkt, sortnet, InnerProblem, LinExpr, Model, ObjSense, Sense};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "expected {b}, got {a}");
}

#[test]
fn pure_lp_model() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 3.0).unwrap();
    let y = m.add_var("y", 0.0, 3.0).unwrap();
    m.constrain(x + y, Sense::Le, 4.0).unwrap();
    m.set_objective(ObjSense::Max, LinExpr::from(x) + 2.0 * y)
        .unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_close(sol.objective, 7.0, 1e-7);
    assert_eq!(sol.nodes, 1);
}

#[test]
fn knapsack_exact() {
    // Items (value, weight): optimum picks {0, 2, 3} → value 11, weight 9.
    let values = [6.0, 5.0, 3.0, 2.0];
    let weights = [4.0, 4.0, 3.0, 2.0];
    let cap = 9.0;
    let mut m = Model::new();
    let zs: Vec<_> = (0..4)
        .map(|i| m.add_binary(format!("z{i}")).unwrap())
        .collect();
    let mut wsum = LinExpr::zero();
    let mut vsum = LinExpr::zero();
    for i in 0..4 {
        wsum.add_term(zs[i], weights[i]);
        vsum.add_term(zs[i], values[i]);
    }
    m.constrain(wsum, Sense::Le, cap).unwrap();
    m.set_objective(ObjSense::Max, vsum).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    // Two optima tie at 11 ({0,1} and {0,2,3}); check value + feasibility.
    assert_close(sol.objective, 11.0, 1e-7);
    let wt: f64 = (0..4).map(|i| weights[i] * sol.values[zs[i].0]).sum();
    assert!(wt <= cap + 1e-6, "weight {wt} exceeds capacity");
    for (i, zv) in zs.iter().enumerate() {
        let z = sol.values[zv.0];
        assert!((z - z.round()).abs() < 1e-6, "z{i}={z} not integral");
    }
}

#[test]
fn infeasible_binaries() {
    let mut m = Model::new();
    let a = m.add_binary("a").unwrap();
    let b = m.add_binary("b").unwrap();
    m.constrain(LinExpr::from(a) + b, Sense::Ge, 1.5).unwrap();
    m.constrain(LinExpr::from(a) + b, Sense::Le, 1.4).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Infeasible);
}

/// The Figure-2 rectangle KKT system solved end-to-end: for P = 8 the
/// solver must produce w = ℓ = 2 and λ = 2 out of pure feasibility.
#[test]
fn figure2_rectangle_via_bnb() {
    let mut m = Model::new();
    let p = m.add_var("P", 8.0, 8.0).unwrap();
    let mut inner = InnerProblem::new("rect");
    let w = inner
        .add_var(&mut m, "w", f64::NEG_INFINITY, f64::INFINITY)
        .unwrap();
    let l = inner
        .add_var(&mut m, "l", f64::NEG_INFINITY, f64::INFINITY)
        .unwrap();
    inner
        .constrain(LinExpr::from(p) - 2.0 * w - 2.0 * l, Sense::Le)
        .unwrap();
    inner.set_objective(ObjSense::Min, LinExpr::zero());
    inner.add_quadratic(w, 1.0);
    inner.add_quadratic(l, 1.0);
    let art = kkt::append_kkt(&mut m, &inner, 1e3).unwrap();
    // Pure feasibility: no objective.
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_close(sol.values[w.0], 2.0, 1e-6);
    assert_close(sol.values[l.0], 2.0, 1e-6);
    assert_close(sol.values[art.multipliers[0].0], 2.0, 1e-6);
}

/// Inner-optimality certification: minimize x subject to "x solves
/// max x s.t. x <= θ, x <= 5" with θ fixed to 3. Without KKT the minimum
/// would be 0; with KKT the only feasible x is 3.
#[test]
fn kkt_certifies_inner_optimality() {
    let mut m = Model::new();
    let theta = m.add_var("theta", 3.0, 3.0).unwrap();
    let mut inner = InnerProblem::new("follow");
    let x = inner.add_var(&mut m, "x", 0.0, f64::INFINITY).unwrap();
    inner
        .constrain(LinExpr::from(x) - theta, Sense::Le)
        .unwrap();
    inner.constrain_pair(x, Sense::Le, 5.0).unwrap();
    inner.set_objective(ObjSense::Max, x);
    kkt::append_kkt(&mut m, &inner, 1e3).unwrap();
    m.set_objective(ObjSense::Min, x).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_close(sol.objective, 3.0, 1e-6);
    assert_close(sol.values[x.0], 3.0, 1e-6);
}

/// A two-follower gap problem in miniature: the leader picks θ ∈ [0, 4] to
/// maximize OPT(θ) − HEU(θ) where OPT(θ) = max {x : x ≤ θ, x ≤ 3} and
/// HEU(θ) = max {x : x ≤ θ/2, x ≤ 3}. The gap is min(θ,3) − min(θ/2,3),
/// maximized at θ = 3 with value 1.5.
#[test]
fn toy_adversarial_gap() {
    let mut m = Model::new();
    let theta = m.add_var("theta", 0.0, 4.0).unwrap();

    let mut opt = InnerProblem::new("opt");
    let xo = opt.add_var(&mut m, "xo", 0.0, f64::INFINITY).unwrap();
    opt.constrain(LinExpr::from(xo) - theta, Sense::Le).unwrap();
    opt.constrain_pair(xo, Sense::Le, 3.0).unwrap();
    opt.set_objective(ObjSense::Max, xo);
    kkt::append_kkt(&mut m, &opt, 1e3).unwrap();

    let mut heu = InnerProblem::new("heu");
    let xh = heu.add_var(&mut m, "xh", 0.0, f64::INFINITY).unwrap();
    heu.constrain(LinExpr::from(xh) - LinExpr::term(theta, 0.5), Sense::Le)
        .unwrap();
    heu.constrain_pair(xh, Sense::Le, 3.0).unwrap();
    heu.set_objective(ObjSense::Max, xh);
    kkt::append_kkt(&mut m, &heu, 1e3).unwrap();

    m.set_objective(ObjSense::Max, LinExpr::from(xo) - xh).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_close(sol.objective, 1.5, 1e-6);
    assert_close(sol.values[theta.0], 3.0, 1e-5);
}

/// Sorting network under the solver: fixed inputs come out sorted.
#[test]
fn sorting_network_solved() {
    let mut m = Model::new();
    let inputs = [5.0, 1.0, 4.0, 2.0, 3.0];
    let vars: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| m.add_var(format!("x{i}"), v, v).unwrap())
        .collect();
    let outs = sortnet::sort_ascending(
        &mut m,
        "net",
        vars.iter().map(|&v| LinExpr::from(v)).collect(),
        0.0,
        10.0,
    )
    .unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    let got: Vec<f64> = outs.iter().map(|e| e.eval(&sol.values)).collect();
    for (i, expect) in [1.0, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
        assert_close(got[i], *expect, 1e-6);
    }
}

/// max(expr, 0) gadget under the solver: minimize y = max(x − 2, 0) with
/// x >= 3.5 forces y = 1.5.
#[test]
fn max_of_zero_solved() {
    let mut m = Model::new();
    let x = m.add_var("x", 3.5, 10.0).unwrap();
    let (y, _z) = bigm::max_of_zero(&mut m, "g", LinExpr::from(x) - 2.0, -2.0, 8.0).unwrap();
    m.set_objective(ObjSense::Min, LinExpr::from(y) + LinExpr::term(x, 1e-3))
        .unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_close(sol.values[y.0], 1.5, 1e-5);
}

struct OracleCallback {
    proposal: Option<(Vec<f64>, f64)>,
}

impl IncumbentCallback for OracleCallback {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        self.proposal.take()
    }
}

/// The incumbent callback's solution is adopted and appears in the
/// trajectory.
#[test]
fn callback_incumbent_adopted() {
    let mut m = Model::new();
    let zs: Vec<_> = (0..6)
        .map(|i| m.add_binary(format!("z{i}")).unwrap())
        .collect();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    let weights = [3.0, 5.0, 7.0, 4.0, 2.0, 6.0];
    let values = [4.0, 6.0, 9.0, 5.0, 2.0, 7.0];
    for i in 0..6 {
        w.add_term(zs[i], weights[i]);
        v.add_term(zs[i], values[i]);
    }
    m.constrain(w, Sense::Le, 12.0).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();

    // Propose the (feasible, not necessarily optimal) set {0, 1, 4}.
    let mut vals = vec![0.0; m.n_vars()];
    vals[zs[0].0] = 1.0;
    vals[zs[1].0] = 1.0;
    vals[zs[4].0] = 1.0;
    let mut cb = OracleCallback {
        proposal: Some((vals, 12.0)),
    };
    let sol = solve_with_callback(&m, &MilpConfig::default(), &mut cb).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    // Trajectory must contain the callback value 12 before the optimum.
    assert!(
        sol.trajectory.iter().any(|&(_, o)| (o - 12.0).abs() < 1e-9)
            || (sol.objective - 12.0).abs() < 1e-9,
        "trajectory {:?}",
        sol.trajectory
    );
    // And the final answer is the true optimum (16: items 2 & 0/... check).
    assert!(sol.objective >= 12.0);
}

/// Node budget produces a Feasible/NoSolution status instead of hanging.
#[test]
fn node_budget_respected() {
    let mut m = Model::new();
    let zs: Vec<_> = (0..12)
        .map(|i| m.add_binary(format!("z{i}")).unwrap())
        .collect();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    for (i, z) in zs.iter().enumerate() {
        w.add_term(*z, 2.0 + (i as f64 % 5.0));
        v.add_term(*z, 1.0 + (i as f64 * 7.0) % 11.0);
    }
    m.constrain(w, Sense::Le, 17.0).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();
    let cfg = MilpConfig {
        max_nodes: 3,
        ..Default::default()
    };
    let sol = solve(&m, &cfg).unwrap();
    assert!(sol.nodes <= 3 + 1);
    assert!(matches!(
        sol.status,
        MilpStatus::Feasible | MilpStatus::Optimal | MilpStatus::NoSolution
    ));
}

/// Complementarity pairs alone (no objective): the solver must find a point
/// with λ·s = 0 even though the relaxation prefers both positive.
#[test]
fn complementarity_feasibility() {
    let mut m = Model::new();
    let a = m.add_var("a", 0.0, 5.0).unwrap();
    let b = m.add_var("b", 0.0, 5.0).unwrap();
    // a + b >= 4, a ⟂ b: either a = 0 (b >= 4) or b = 0 (a >= 4).
    m.constrain(LinExpr::from(a) + b, Sense::Ge, 4.0).unwrap();
    m.add_complementarity(a, LinExpr::from(b)).unwrap();
    m.set_objective(ObjSense::Min, LinExpr::from(a) + b).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    let (av, bv) = (sol.values[a.0], sol.values[b.0]);
    assert!(av.min(bv) <= 1e-6, "a={av} b={bv}");
    assert_close(av + bv, 4.0, 1e-6);
}
