#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared helpers for the figure-regeneration harnesses (`src/bin/fig*.rs`)
//! and the criterion benches.
//!
//! Every harness prints its series to stdout in a small aligned table *and*
//! writes a CSV next to it (under `target/figures/`), so EXPERIMENTS.md can
//! quote numbers directly. Budgets scale with the `METAOPT_BUDGET_SECS`
//! environment variable (default 30 s per search) so the full suite can be
//! run quickly (`METAOPT_BUDGET_SECS=5`) or at paper fidelity
//! (`METAOPT_BUDGET_SECS=600`).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Per-search time budget in seconds (`METAOPT_BUDGET_SECS`, default 30).
pub fn budget_secs() -> f64 {
    std::env::var("METAOPT_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30.0)
}

/// Whether to run reduced-size "quick" sweeps (`METAOPT_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("METAOPT_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

/// Campaign-backed mode: when `METAOPT_CAMPAIGN_DIR` is set, harnesses
/// route their grid through the crash-safe campaign runner under this
/// directory instead of running searches directly.
pub fn campaign_dir() -> Option<PathBuf> {
    std::env::var("METAOPT_CAMPAIGN_DIR").ok().map(PathBuf::from)
}

/// Runs `cells` crash-safely under `dir`: starts a fresh journaled
/// campaign, or — when `dir` already holds a journal from an interrupted
/// run — resumes it, skipping completed cells and continuing in-flight
/// branch-and-bound searches from their checkpoints.
pub fn run_or_resume_campaign(
    dir: &std::path::Path,
    name: &str,
    cells: Vec<metaopt_campaign::CellSpec>,
) -> Result<metaopt_campaign::CampaignReport, metaopt_campaign::CampaignError> {
    let cfg = metaopt_campaign::CampaignConfig {
        workers: 2,
        retry: metaopt_resilience::RetryPolicy::default(),
        ..metaopt_campaign::CampaignConfig::default()
    };
    let shutdown = metaopt_campaign::ShutdownFlag::new();
    if dir.join(metaopt_campaign::JOURNAL_FILE).exists() {
        // an:allow(AN105): the resumption notice is part of the figure
        // harnesses' stdout contract (EXPERIMENTS.md quotes it verbatim).
        println!("resuming campaign from {}", dir.display());
        metaopt_campaign::resume(dir, &cfg, &shutdown)
    } else {
        metaopt_campaign::run(dir, name, cells, &cfg, &shutdown)
    }
}

/// A simple CSV writer for experiment series.
pub struct CsvOut {
    rows: Vec<Vec<String>>,
    path: PathBuf,
}

impl CsvOut {
    /// Creates a CSV that will be written to `target/figures/<name>.csv`.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let mut rows = Vec::new();
        rows.push(header.iter().map(ToString::to_string).collect());
        CsvOut {
            rows,
            path: PathBuf::from("target/figures").join(format!("{name}.csv")),
        }
    }

    /// Appends a row.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().collect());
    }

    /// Writes the CSV to disk and returns its path.
    pub fn flush(&self) -> std::io::Result<PathBuf> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(&self.path)?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(self.path.clone())
    }

    /// Pretty-prints the table to stdout.
    pub fn print(&self) {
        if self.rows.is_empty() {
            return;
        }
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        for (ri, r) in self.rows.iter().enumerate() {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            // an:allow(AN105): the aligned table *is* the harness output,
            // not logging — stdout is the product here.
            println!("  {}", line.join("  "));
            if ri == 0 {
                // an:allow(AN105): same stdout-table contract as above.
                println!(
                    "  {}",
                    widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("  ")
                );
            }
        }
    }
}

/// Formats a float with 4 decimals for tables.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut c = CsvOut::new("unit_test_csv", &["a", "b"]);
        c.row(["1".into(), "2".into()]);
        let p = c.flush().unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        c.print();
    }

    #[test]
    fn env_budget_default() {
        // Do not mutate the environment (tests run in parallel); just check
        // the default path yields a positive number.
        assert!(budget_secs() > 0.0);
    }
}
