//! Multi-tenant admission machinery: per-client token buckets and the
//! priority queue with aging that orders admitted jobs.
//!
//! Both structures compute with caller-supplied instants instead of
//! reading the clock, which keeps them trivially testable and keeps all
//! time policy in one place (the server core).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A classic token bucket: `capacity` tokens of burst, refilled at
/// `refill_per_sec`. One token per job submission.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(capacity: f64, refill_per_sec: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            capacity: capacity.max(1.0),
            refill_per_sec: refill_per_sec.max(0.0),
            tokens: capacity.max(1.0),
            last: now,
        }
    }

    /// Takes one token, or reports how many seconds until one is
    /// available.
    pub fn try_take(&mut self, now: Instant) -> Result<(), f64> {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.refill_per_sec > 0.0 {
            Err(((1.0 - self.tokens) / self.refill_per_sec).max(0.001))
        } else {
            Err(f64::INFINITY)
        }
    }
}

/// Per-client token buckets, created lazily with a shared shape.
#[derive(Debug)]
pub struct QuotaBook {
    burst: f64,
    per_sec: f64,
    buckets: BTreeMap<String, TokenBucket>,
}

impl QuotaBook {
    /// A book whose every client gets `burst` tokens refilled at
    /// `per_sec`.
    pub fn new(burst: f64, per_sec: f64) -> QuotaBook {
        QuotaBook {
            burst,
            per_sec,
            buckets: BTreeMap::new(),
        }
    }

    /// Charges one submission to `client`; `Err(secs)` advises the retry
    /// delay.
    pub fn charge(&mut self, client: &str, now: Instant) -> Result<(), f64> {
        self.buckets
            .entry(client.to_string())
            .or_insert_with(|| TokenBucket::new(self.burst, self.per_sec, now))
            .try_take(now)
    }
}

/// One queued, admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Job id.
    pub id: u64,
    /// Priority class (`0` = most urgent).
    pub priority: u8,
    /// When the job entered the queue (aging reference point).
    pub enqueued: Instant,
}

/// A small priority queue with aging: the effective priority of a waiting
/// job improves by one class per `aging` interval, so low-priority work
/// cannot starve behind a steady stream of urgent jobs. The queue is
/// bounded by its caller (bounded admission is enforced *before* pushing),
/// so the O(n) scan in [`AgingQueue::pop_best`] runs over at most the
/// admission cap.
#[derive(Debug)]
pub struct AgingQueue {
    items: Vec<QueuedJob>,
    aging: Duration,
}

impl AgingQueue {
    /// A queue whose waiting jobs gain one priority class per `aging`.
    pub fn new(aging: Duration) -> AgingQueue {
        AgingQueue {
            items: Vec::new(),
            aging: aging.max(Duration::from_millis(1)),
        }
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues a job.
    pub fn push(&mut self, job: QueuedJob) {
        self.items.push(job);
    }

    /// Removes a job by id (cancellation while still queued). Returns
    /// whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|j| j.id != id);
        self.items.len() != before
    }

    /// Pops the job with the best effective priority at `now` (lowest
    /// value wins; ties broken by id, i.e. admission order).
    pub fn pop_best(&mut self, now: Instant) -> Option<QueuedJob> {
        let aging = self.aging.as_secs_f64();
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ea = effective(a, now, aging);
                let eb = effective(b, now, aging);
                ea.partial_cmp(&eb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)?;
        Some(self.items.swap_remove(best))
    }

    /// Ids currently waiting, in no particular order.
    pub fn ids(&self) -> Vec<u64> {
        self.items.iter().map(|j| j.id).collect()
    }
}

fn effective(job: &QueuedJob, now: Instant, aging_secs: f64) -> f64 {
    let waited = now.saturating_duration_since(job.enqueued).as_secs_f64();
    f64::from(job.priority) - waited / aging_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_throttles_then_refills() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2.0, 1.0, t0);
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_ok());
        let wait = b.try_take(t0).unwrap_err();
        assert!(wait > 0.0 && wait <= 1.1, "{wait}");
        // One second later a token is back.
        assert!(b.try_take(t0 + Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn zero_refill_bucket_never_recovers() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1.0, 0.0, t0);
        assert!(b.try_take(t0).is_ok());
        assert_eq!(b.try_take(t0 + Duration::from_secs(3600)), Err(f64::INFINITY));
    }

    #[test]
    fn quota_book_isolates_clients() {
        let t0 = Instant::now();
        let mut q = QuotaBook::new(1.0, 0.0);
        assert!(q.charge("alice", t0).is_ok());
        assert!(q.charge("alice", t0).is_err());
        assert!(q.charge("bob", t0).is_ok());
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let t0 = Instant::now();
        let mut q = AgingQueue::new(Duration::from_secs(60));
        for (id, priority) in [(1, 5), (2, 1), (3, 1), (4, 9)] {
            q.push(QueuedJob {
                id,
                priority,
                enqueued: t0,
            });
        }
        assert_eq!(q.pop_best(t0).unwrap().id, 2);
        assert_eq!(q.pop_best(t0).unwrap().id, 3);
        assert_eq!(q.pop_best(t0).unwrap().id, 1);
        assert_eq!(q.pop_best(t0).unwrap().id, 4);
        assert!(q.pop_best(t0).is_none());
    }

    #[test]
    fn aging_prevents_starvation() {
        let t0 = Instant::now();
        let mut q = AgingQueue::new(Duration::from_secs(1));
        // A background job enqueued long ago...
        q.push(QueuedJob {
            id: 1,
            priority: 9,
            enqueued: t0,
        });
        // ...beats a fresh urgent job once it has aged past the priority
        // distance (9 classes x 1s/class).
        q.push(QueuedJob {
            id: 2,
            priority: 0,
            enqueued: t0 + Duration::from_secs(20),
        });
        assert_eq!(q.pop_best(t0 + Duration::from_secs(20)).unwrap().id, 1);
    }

    #[test]
    fn remove_cancels_queued_jobs() {
        let t0 = Instant::now();
        let mut q = AgingQueue::new(Duration::from_secs(60));
        q.push(QueuedJob {
            id: 7,
            priority: 3,
            enqueued: t0,
        });
        assert!(q.remove(7));
        assert!(!q.remove(7));
        assert!(q.is_empty());
    }
}
