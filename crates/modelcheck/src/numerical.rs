//! MC2xx — numerical-hygiene checks.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | MC201 | warning  | mixed magnitudes in one row (`max/min > threshold`) |
//! | MC202 | warning  | near-zero coefficient that should have been dropped |
//! | MC203 | warning  | huge coefficient or constant (conditioning risk)    |
//! | MC204 | warning  | model-wide coefficient dynamic range too large      |
//!
//! These are advisory: ill-scaled rows make the simplex recovery ladder
//! (refactorize → rescale → perturb) work much harder and are the usual
//! precursor of `SolverFault::NumericalBreakdown`.

use crate::{NumericThresholds, Report, Severity, Span};
use metaopt_model::{LinExpr, Model};

struct RowStats {
    min_abs: f64,
    max_abs: f64,
    tiny: usize,
}

fn stats(e: &LinExpr, th: &NumericThresholds) -> RowStats {
    let mut s = RowStats {
        min_abs: f64::INFINITY,
        max_abs: 0.0,
        tiny: 0,
    };
    for (_, c) in e.terms() {
        let a = c.abs();
        s.min_abs = s.min_abs.min(a);
        s.max_abs = s.max_abs.max(a);
        if a < th.tiny {
            s.tiny += 1;
        }
    }
    s
}

fn check_expr(report: &mut Report, e: &LinExpr, th: &NumericThresholds, span: &Span) {
    let s = stats(e, th);
    if s.tiny > 0 {
        report.push(
            "MC202",
            Severity::Warning,
            span.clone(),
            format!(
                "{} coefficient(s) below {:.0e} in magnitude; drop them or rescale",
                s.tiny, th.tiny
            ),
        );
    }
    if s.max_abs > th.huge || e.constant_part().abs() > th.huge {
        report.push(
            "MC203",
            Severity::Warning,
            span.clone(),
            format!(
                "coefficient magnitude up to {:.3e} (constant {:.3e}) risks conditioning trouble",
                s.max_abs,
                e.constant_part()
            ),
        );
    }
    if e.n_terms() >= 2 && s.max_abs / s.min_abs > th.row_range_ratio {
        report.push(
            "MC201",
            Severity::Warning,
            span.clone(),
            format!(
                "mixed magnitudes in one row: |coef| spans [{:.3e}, {:.3e}] \
                 (ratio {:.1e} > {:.0e})",
                s.min_abs,
                s.max_abs,
                s.max_abs / s.min_abs,
                th.row_range_ratio
            ),
        );
    }
}

/// Runs the numerical family over `model`.
pub fn check(model: &Model, th: &NumericThresholds) -> Report {
    let mut report = Report::new();
    let mut global_min = f64::INFINITY;
    let mut global_max: f64 = 0.0;

    for (i, c) in model.constraints().iter().enumerate() {
        let span = Span::Constraint {
            index: i,
            name: c.name.clone().unwrap_or_default(),
        };
        check_expr(&mut report, &c.expr, th, &span);
        let s = stats(&c.expr, th);
        global_min = global_min.min(s.min_abs);
        global_max = global_max.max(s.max_abs);
    }
    check_expr(&mut report, model.objective(), th, &Span::Objective);
    for (i, compl) in model.complementarities().iter().enumerate() {
        let span = Span::Complementarity {
            index: i,
            multiplier: model.var_name(compl.multiplier).to_string(),
        };
        check_expr(&mut report, &compl.slack, th, &span);
    }

    if global_max > 0.0 && global_min.is_finite() && global_max / global_min > th.model_range_ratio
    {
        report.push(
            "MC204",
            Severity::Warning,
            Span::Model,
            format!(
                "model-wide coefficient range [{global_min:.3e}, {global_max:.3e}] \
                 (ratio {:.1e}) is a conditioning hazard; rescale the formulation",
                global_max / global_min
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::{LinExpr, Model, ObjSense, Sense};

    #[test]
    fn mixed_magnitudes_and_tiny_coefs() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        let y = m.add_var("y", 0.0, 1.0).unwrap();
        m.constrain(1e9 * x + 1e-1 * y, Sense::Le, 1.0).unwrap();
        m.constrain(LinExpr::term(x, 1e-12) + y, Sense::Le, 1.0)
            .unwrap();
        m.set_objective(ObjSense::Max, x + y).unwrap();
        let r = check(&m, &NumericThresholds::default());
        assert!(r.has_code("MC201"), "{r}");
        assert!(r.has_code("MC202"), "{r}");
        assert!(!r.has_errors());
    }

    #[test]
    fn huge_and_model_wide_range() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        let y = m.add_var("y", 0.0, 1.0).unwrap();
        m.constrain(LinExpr::term(x, 1e11), Sense::Le, 1.0).unwrap();
        m.constrain(LinExpr::term(y, 1e-4), Sense::Ge, 0.0).unwrap();
        let r = check(&m, &NumericThresholds::default());
        assert!(r.has_code("MC203"), "{r}");
        assert!(r.has_code("MC204"), "{r}");
    }

    #[test]
    fn well_scaled_model_is_silent() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 100.0).unwrap();
        m.constrain(2.5 * x, Sense::Le, 100.0).unwrap();
        m.set_objective(ObjSense::Max, x).unwrap();
        assert!(check(&m, &NumericThresholds::default()).is_clean());
    }
}
