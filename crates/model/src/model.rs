//! The [`Model`] container: variables, constraints, objective, and symbolic
//! complementarity pairs.

use crate::expr::LinExpr;
use crate::{ModelError, ModelResult};

/// Handle to a model variable. The `usize` is the dense index used by
/// [`LinExpr::eval`] and solver value vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarRef(pub usize);

/// Continuous or binary variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Ordinary continuous variable.
    Continuous,
    /// Binary `{0, 1}` variable, branched on by `metaopt-milp`.
    Binary,
}

/// Constraint sense, applied as `expr SENSE 0` after normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= 0`
    Le,
    /// `expr == 0`
    Eq,
    /// `expr >= 0`
    Ge,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjSense {
    /// Minimize.
    Min,
    /// Maximize.
    Max,
}

/// A normalized constraint `expr SENSE 0`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side (right-hand side folded into the constant).
    pub expr: LinExpr,
    /// Relational sense versus zero.
    pub sense: Sense,
    /// Optional diagnostic label.
    pub name: Option<String>,
}

/// A symbolic complementary-slackness pair: `multiplier ⟂ slack`, i.e.
/// `multiplier · slack == 0` with both sides nonnegative (the model must
/// separately guarantee `multiplier >= 0` and `slack >= 0`; the KKT rewriter
/// does).
///
/// These are the "SOS constraints" of the paper's Figure 6: the only
/// non-convex artifacts of the KKT rewrite, branched on disjunctively by the
/// MILP solver.
#[derive(Debug, Clone)]
pub struct Complementarity {
    /// The dual multiplier variable (nonnegative).
    pub multiplier: VarRef,
    /// The primal slack expression (nonnegative at any feasible point).
    pub slack: LinExpr,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub lo: f64,
    pub hi: f64,
    pub kind: VarKind,
    pub name: Option<String>,
}

/// An optimization model: boxed variables, linear constraints, an optional
/// diagonal-quadratic objective, and complementarity pairs.
///
/// ```
/// use metaopt_model::{Model, ObjSense, Sense, LinExpr};
///
/// let mut m = Model::new();
/// let x = m.add_var("x", 0.0, 10.0)?;
/// let y = m.add_binary("y")?;
/// m.constrain(x + 4.0 * y, Sense::Le, 8.0)?;
/// m.set_objective(ObjSense::Max, LinExpr::from(x) + 3.0 * y)?;
/// assert_eq!(m.n_vars(), 2);
/// assert_eq!(m.n_constraints(), 1);
/// # Ok::<(), metaopt_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) compls: Vec<Complementarity>,
    pub(crate) obj_sense: Option<ObjSense>,
    pub(crate) obj: LinExpr,
    /// Diagonal quadratic objective terms `q_j · x_j²` (only consumed by the
    /// KKT rewriter; the LP compiler rejects models that still carry them).
    pub(crate) obj_quad: Vec<(VarRef, f64)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a continuous variable boxed to `[lo, hi]`.
    pub fn add_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> ModelResult<VarRef> {
        self.add_var_kind(name, lo, hi, VarKind::Continuous)
    }

    /// Adds a binary `{0,1}` variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> ModelResult<VarRef> {
        self.add_var_kind(name, 0.0, 1.0, VarKind::Binary)
    }

    /// Adds a variable of the given kind.
    pub fn add_var_kind(
        &mut self,
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        kind: VarKind,
    ) -> ModelResult<VarRef> {
        if lo.is_nan() || hi.is_nan() {
            return Err(ModelError::NotFinite(format!("bounds [{lo}, {hi}]")));
        }
        if lo > hi {
            return Err(ModelError::EmptyBounds {
                var: self.vars.len(),
                lo,
                hi,
            });
        }
        self.vars.push(VarData {
            lo,
            hi,
            kind,
            name: Some(name.into()),
        });
        Ok(VarRef(self.vars.len() - 1))
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of linear constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of complementarity (SOS) pairs.
    pub fn n_complementarities(&self) -> usize {
        self.compls.len()
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, v: VarRef) -> (f64, f64) {
        (self.vars[v.0].lo, self.vars[v.0].hi)
    }

    /// Kind of a variable.
    pub fn var_kind(&self, v: VarRef) -> VarKind {
        self.vars[v.0].kind
    }

    /// Diagnostic name of a variable.
    pub fn var_name(&self, v: VarRef) -> &str {
        self.vars[v.0].name.as_deref().unwrap_or("")
    }

    /// Tightens (replaces) a variable's bounds.
    pub fn set_var_bounds(&mut self, v: VarRef, lo: f64, hi: f64) -> ModelResult<()> {
        if v.0 >= self.vars.len() {
            return Err(ModelError::ForeignVar(v.0));
        }
        if lo.is_nan() || hi.is_nan() {
            return Err(ModelError::NotFinite(format!("bounds [{lo}, {hi}]")));
        }
        if lo > hi {
            return Err(ModelError::EmptyBounds { var: v.0, lo, hi });
        }
        self.vars[v.0].lo = lo;
        self.vars[v.0].hi = hi;
        Ok(())
    }

    /// Adds the constraint `lhs SENSE rhs` (both sides arbitrary linear
    /// expressions or values convertible into them).
    pub fn constrain(
        &mut self,
        lhs: impl Into<LinExpr>,
        sense: Sense,
        rhs: impl Into<LinExpr>,
    ) -> ModelResult<()> {
        self.constrain_named("", lhs, sense, rhs)
    }

    /// [`Model::constrain`] with a diagnostic name.
    pub fn constrain_named(
        &mut self,
        name: impl Into<String>,
        lhs: impl Into<LinExpr>,
        sense: Sense,
        rhs: impl Into<LinExpr>,
    ) -> ModelResult<()> {
        let mut expr = lhs.into();
        expr -= rhs.into();
        self.check_expr(&expr)?;
        let name = name.into();
        self.constraints.push(Constraint {
            expr,
            sense,
            name: if name.is_empty() { None } else { Some(name) },
        });
        Ok(())
    }

    /// Registers a complementarity pair `multiplier ⟂ slack`.
    ///
    /// Callers must guarantee both sides are nonnegative at every feasible
    /// point (the KKT rewriter constructs pairs that satisfy this).
    pub fn add_complementarity(
        &mut self,
        multiplier: VarRef,
        slack: impl Into<LinExpr>,
    ) -> ModelResult<()> {
        if multiplier.0 >= self.vars.len() {
            return Err(ModelError::ForeignVar(multiplier.0));
        }
        let slack = slack.into();
        self.check_expr(&slack)?;
        self.compls.push(Complementarity { multiplier, slack });
        Ok(())
    }

    /// Sets a linear objective.
    pub fn set_objective(&mut self, sense: ObjSense, expr: impl Into<LinExpr>) -> ModelResult<()> {
        let expr = expr.into();
        self.check_expr(&expr)?;
        self.obj_sense = Some(sense);
        self.obj = expr;
        self.obj_quad.clear();
        Ok(())
    }

    /// Adds a diagonal quadratic term `q · v²` to the objective. Only the
    /// KKT rewriter understands these; the LP compiler rejects them.
    pub fn add_quadratic_objective_term(&mut self, v: VarRef, q: f64) -> ModelResult<()> {
        if v.0 >= self.vars.len() {
            return Err(ModelError::ForeignVar(v.0));
        }
        if !q.is_finite() {
            return Err(ModelError::NotFinite(format!("quad coef {q}")));
        }
        self.obj_quad.push((v, q));
        Ok(())
    }

    /// The current objective sense (None for pure feasibility problems).
    pub fn objective_sense(&self) -> Option<ObjSense> {
        self.obj_sense
    }

    /// The linear part of the objective.
    pub fn objective(&self) -> &LinExpr {
        &self.obj
    }

    /// Read-only view of the constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Read-only view of the complementarity pairs.
    pub fn complementarities(&self) -> &[Complementarity] {
        &self.compls
    }

    /// Checks that an assignment satisfies every constraint, bound, binary
    /// restriction, and complementarity pair to within `tol`. Returns the
    /// maximum violation found.
    pub fn violation(&self, values: &[f64], tol: f64) -> f64 {
        let mut worst: f64 = 0.0;
        for (j, vd) in self.vars.iter().enumerate() {
            let x = values[j];
            worst = worst.max(vd.lo - x).max(x - vd.hi);
            if vd.kind == VarKind::Binary {
                let frac = (x - x.round()).abs();
                worst = worst.max(frac);
            }
        }
        for c in &self.constraints {
            let v = c.expr.eval(values);
            let viol = match c.sense {
                Sense::Le => v,
                Sense::Ge => -v,
                Sense::Eq => v.abs(),
            };
            worst = worst.max(viol);
        }
        for c in &self.compls {
            let m = values[c.multiplier.0];
            let s = c.slack.eval(values);
            // Both sides must be nonnegative (dual/primal feasibility)…
            worst = worst.max(-m).max(-s);
            // …and their product zero.
            let prod = m * s;
            if prod.abs() > tol * (1.0 + m.abs().max(s.abs())) {
                worst = worst.max(prod.abs());
            }
        }
        worst.max(0.0)
    }

    fn check_expr(&self, e: &LinExpr) -> ModelResult<()> {
        for (v, c) in e.terms() {
            if v.0 >= self.vars.len() {
                return Err(ModelError::ForeignVar(v.0));
            }
            if !c.is_finite() {
                return Err(ModelError::NotFinite(format!("coefficient {c}")));
            }
        }
        if !e.constant_part().is_finite() {
            return Err(ModelError::NotFinite(format!(
                "constant {}",
                e.constant_part()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0).unwrap();
        let y = m.add_binary("y").unwrap();
        m.constrain(x + y, Sense::Le, 4.0).unwrap();
        m.set_objective(ObjSense::Max, x + 2.0 * y).unwrap();
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.n_constraints(), 1);
        assert_eq!(m.var_kind(y), VarKind::Binary);
        assert_eq!(m.var_name(x), "x");
    }

    #[test]
    fn foreign_var_rejected() {
        let mut m = Model::new();
        let _x = m.add_var("x", 0.0, 1.0).unwrap();
        let bad = VarRef(7);
        assert!(m.constrain(bad, Sense::Le, 1.0).is_err());
        assert!(m.add_complementarity(bad, 0.0).is_err());
    }

    #[test]
    fn violation_checks_everything() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        let lam = m.add_var("lam", 0.0, 10.0).unwrap();
        m.constrain(x, Sense::Le, 0.5).unwrap();
        m.add_complementarity(lam, LinExpr::from(x)).unwrap();
        // Feasible, complementary point.
        assert!(m.violation(&[0.0, 3.0], 1e-9) <= 1e-9);
        // Constraint violated.
        assert!(m.violation(&[0.9, 0.0], 1e-9) > 0.3);
        // Complementarity violated.
        assert!(m.violation(&[0.4, 2.0], 1e-9) > 0.5);
    }

    #[test]
    fn binary_fractional_flagged() {
        let mut m = Model::new();
        let z = m.add_binary("z").unwrap();
        let _ = z;
        assert!(m.violation(&[0.5], 1e-9) >= 0.5 - 1e-9);
        assert!(m.violation(&[1.0], 1e-9) <= 1e-9);
    }
}
