//! Resilience tests: contained callback panics, first-class budgets, and
//! checkpoint/resume of the branch-and-bound frontier.

use metaopt_milp::{
    solve, solve_resumable, solve_with_callback, Budget, FaultPlan, FaultSite, IncumbentCallback,
    MilpConfig, MilpStatus, SolverFault,
};
use metaopt_model::{LinExpr, Model, ObjSense, Sense};

/// A knapsack with many items (slow to prove optimal, quick to find
/// feasible points for).
fn big_knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    for i in 0..n {
        let z = m.add_binary(format!("z{i}")).unwrap();
        w.add_term(z, 1.0 + ((i * 37) % 17) as f64);
        v.add_term(z, 1.0 + ((i * 53) % 23) as f64);
    }
    m.constrain(w, Sense::Le, 4.0 * n as f64).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();
    m
}

/// A strongly-correlated knapsack at a tight capacity — needs a deep
/// branch-and-bound tree (≈1200 nodes at `n = 24`), so node budgets
/// genuinely interrupt it mid-search.
fn hard_knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    let mut total_w = 0.0;
    for i in 0..n {
        let z = m.add_binary(format!("z{i}")).unwrap();
        let wi = 3.0 + ((i * 37) % 17) as f64;
        let vi = wi + 2.0 + ((i * 53) % 5) as f64;
        w.add_term(z, wi);
        v.add_term(z, vi);
        total_w += wi;
    }
    m.constrain(w, Sense::Le, 0.37 * total_w).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();
    m
}

struct AlwaysPanics;

impl IncumbentCallback for AlwaysPanics {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        panic!("deliberate test panic");
    }
}

/// A callback that panics on every call must not take the search down:
/// the panics are contained, recorded as faults, the callback is disabled
/// after a bounded number of strikes, and the answer matches a clean run.
#[test]
fn panicking_callback_is_contained() {
    let m = big_knapsack(16);
    let clean = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(clean.status, MilpStatus::Optimal);

    let sol = solve_with_callback(&m, &MilpConfig::default(), &mut AlwaysPanics).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!(
        (sol.objective - clean.objective).abs() <= 1e-9 * (1.0 + clean.objective.abs()),
        "panicking callback changed the answer: {} vs {}",
        sol.objective,
        clean.objective
    );
    let panics = sol
        .faults
        .iter()
        .filter(|f| matches!(f, SolverFault::CallbackPanic(_)))
        .count();
    assert!(panics >= 1, "no CallbackPanic fault recorded");
    assert!(panics <= 3, "callback not disabled after cap: {panics} panics");
}

struct Quiet;

impl IncumbentCallback for Quiet {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

/// An injected callback panic (chaos hook) fires exactly once, is recorded,
/// and leaves the search result intact.
#[test]
fn injected_callback_panic_is_recorded() {
    let m = big_knapsack(16);
    let plan = FaultPlan::new().inject(FaultSite::CallbackPanic);
    let cfg = MilpConfig {
        fault_plan: Some(plan.clone()),
        ..Default::default()
    };
    let sol = solve_with_callback(&m, &cfg, &mut Quiet).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_eq!(plan.fired(FaultSite::CallbackPanic), 1);
    assert!(sol
        .faults
        .iter()
        .any(|f| matches!(f, SolverFault::CallbackPanic(_))));
}

/// An already-expired wall-clock budget returns a clean (inconclusive or
/// feasible) status promptly instead of hanging or erroring.
#[test]
fn expired_budget_returns_clean_status() {
    let m = big_knapsack(24);
    let cfg = MilpConfig::with_budget(Budget::from_secs_f64(0.0));
    let start = std::time::Instant::now();
    let sol = solve(&m, &cfg).unwrap();
    assert!(start.elapsed() < std::time::Duration::from_secs(5));
    assert!(matches!(
        sol.status,
        MilpStatus::Feasible | MilpStatus::NoSolution
    ));
}

/// Interrupting the search at a node budget and resuming from the
/// checkpoint must reach an incumbent at least as good as an uninterrupted
/// run with the same *total* node budget (node counters carry across the
/// checkpoint, so both runs process the same number of nodes).
#[test]
fn checkpoint_resume_matches_uninterrupted() {
    let m = hard_knapsack(24);
    let total_nodes = 400usize;

    let uninterrupted = solve(
        &m,
        &MilpConfig {
            max_nodes: total_nodes,
            ..Default::default()
        },
    )
    .unwrap();

    // Same search, interrupted halfway.
    let (half, cp) = solve_resumable(
        &m,
        &MilpConfig {
            max_nodes: total_nodes / 2,
            ..Default::default()
        },
        &mut Quiet,
        None,
    )
    .unwrap();
    let cp = cp.expect("interrupted run must produce a checkpoint");
    assert!(cp.open_nodes() > 0);
    assert_eq!(cp.nodes_processed(), half.nodes);

    let (resumed, _) = solve_resumable(
        &m,
        &MilpConfig {
            max_nodes: total_nodes,
            ..Default::default()
        },
        &mut Quiet,
        Some(cp),
    )
    .unwrap();
    assert!(
        resumed.objective >= uninterrupted.objective - 1e-9,
        "resumed incumbent {} worse than uninterrupted {}",
        resumed.objective,
        uninterrupted.objective
    );
}

/// Resuming with the budget lifted finishes the proof and matches the
/// from-scratch optimum exactly.
#[test]
fn resume_to_optimality_matches_full_solve() {
    let m = hard_knapsack(20);
    let full = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(full.status, MilpStatus::Optimal);

    let (_, cp) = solve_resumable(
        &m,
        &MilpConfig {
            max_nodes: 50,
            ..Default::default()
        },
        &mut Quiet,
        None,
    )
    .unwrap();
    let Some(cp) = cp else {
        // The toy tree may already be exhausted in 8 nodes — nothing to
        // resume, and the budgeted answer must then already be optimal.
        return;
    };
    let (resumed, cp2) = solve_resumable(&m, &MilpConfig::default(), &mut Quiet, Some(cp)).unwrap();
    assert!(cp2.is_none(), "finished run must not emit a checkpoint");
    assert_eq!(resumed.status, MilpStatus::Optimal);
    assert!(
        (resumed.objective - full.objective).abs() <= 1e-9 * (1.0 + full.objective.abs()),
        "resumed optimum {} vs full {}",
        resumed.objective,
        full.objective
    );
}

/// A panic inside a work-stealing worker's node evaluation is contained:
/// every sibling worker exits promptly (no lost wakeup, no leaked inflight
/// slot wedging the gap rule) and the search surfaces a fatal error
/// instead of unwinding or hanging.
#[test]
fn ws_worker_panic_is_contained_and_stops_the_search() {
    let m = big_knapsack(20);
    let plan = FaultPlan::new().inject(FaultSite::EvalPanic);
    let cfg = MilpConfig {
        threads: 4,
        parallel: metaopt_milp::ParallelMode::WorkStealing,
        fault_plan: Some(plan.clone()),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let err = solve(&m, &cfg).expect_err("an evaluation panic must abort the search");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "panic containment must not wedge the worker pool"
    );
    assert_eq!(plan.fired(FaultSite::EvalPanic), 1);
    assert!(
        err.to_string().contains("panicked"),
        "error must attribute the abort to the contained panic: {err}"
    );
}
