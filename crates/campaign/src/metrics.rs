//! Pre-registered obs handles for the campaign layer.
//!
//! One `CampaignMetrics` travels inside [`crate::CampaignConfig`] and is
//! installed on the write-ahead [`crate::Journal`], so every durable
//! append/fsync is counted at the single choke point all records pass
//! through. Retry and quarantine decisions are counted where the
//! supervisor makes them, and journal replays (resume, status, post-run
//! verification) record their wall-clock duration. All handles default
//! to no-ops: a campaign run with metrics disabled makes identical
//! scheduling decisions and writes byte-identical journals.

use metaopt_milp::MilpMetrics;
use metaopt_obs::metrics::DURATION_BUCKETS_SECS;
use metaopt_obs::{Counter, Histogram, Registry};

/// Counter/histogram handles for the campaign runner and journal.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Records appended to the write-ahead journal.
    pub journal_appends: Counter,
    /// `sync_data` calls completed by the journal (one per durable
    /// append under the current write-ahead discipline).
    pub journal_fsyncs: Counter,
    /// Journal handles poisoned by a failed append/`sync_data` (the
    /// fsync-poisoning rule: no further appends until reopen+tail-verify).
    pub journal_poisonings: Counter,
    /// Successful journal reopen+tail-verify recoveries after poisoning.
    pub journal_reopens: Counter,
    /// Cell attempts re-queued by the retry policy.
    pub retries: Counter,
    /// Cells quarantined (fatal error or exhausted retries).
    pub quarantines: Counter,
    /// Wall-clock seconds spent replaying a journal into a
    /// [`crate::CampaignState`].
    pub replay_seconds: Histogram,
    /// Solver-stack counters (branch-and-bound nodes/waves/steals plus
    /// node-LP pivots), installed on every cell attempt's `MilpConfig`
    /// by [`crate::drive_cell`] — the same embedding pattern as
    /// `MilpMetrics` carrying `LpMetrics`.
    pub solver: MilpMetrics,
}

impl CampaignMetrics {
    /// No-op handles.
    pub fn disabled() -> CampaignMetrics {
        CampaignMetrics::default()
    }

    /// Registers the `metaopt_campaign_*` families on `registry`.
    pub fn register(registry: &Registry) -> CampaignMetrics {
        CampaignMetrics {
            journal_appends: registry.counter(
                "metaopt_campaign_journal_appends_total",
                "Records appended to the write-ahead journal",
                &[],
            ),
            journal_fsyncs: registry.counter(
                "metaopt_campaign_journal_fsyncs_total",
                "Journal sync_data calls completed",
                &[],
            ),
            journal_poisonings: registry.counter(
                "metaopt_campaign_journal_poisonings_total",
                "Journal handles poisoned by a failed append or sync_data",
                &[],
            ),
            journal_reopens: registry.counter(
                "metaopt_campaign_journal_reopens_total",
                "Journal reopen+tail-verify recoveries after poisoning",
                &[],
            ),
            retries: registry.counter(
                "metaopt_campaign_retries_total",
                "Cell attempts re-queued by the retry policy",
                &[],
            ),
            quarantines: registry.counter(
                "metaopt_campaign_quarantines_total",
                "Cells quarantined after fatal errors or exhausted retries",
                &[],
            ),
            replay_seconds: registry.histogram(
                "metaopt_campaign_replay_seconds",
                "Journal replay wall-clock duration",
                &[],
                DURATION_BUCKETS_SECS,
            ),
            solver: MilpMetrics::register(registry),
        }
    }
}
