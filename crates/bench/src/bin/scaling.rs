//! §5 "scaling to larger problem sizes": model growth and in-budget gap
//! quality from SWAN (10 nodes) up to GEANT (22 nodes), with and without
//! the quantization speedup.

use metaopt_bench::{budget_secs, f, CsvOut};
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_te::TeInstance;
use metaopt_topology::builtin;

fn main() {
    let budget = budget_secs();
    println!("§5 scaling study (DP, T = 5% cap), budget {budget}s per point\n");
    let mut csv = CsvOut::new(
        "scaling",
        &["topology", "pairs", "sos", "variant", "norm_gap", "nodes"],
    );
    let topos = vec![
        builtin::swan(1000.0),
        builtin::b4(1000.0),
        builtin::abilene(1000.0),
        builtin::geant(1000.0),
    ];
    for topo in topos {
        let name = topo.name().to_string();
        let norm = topo.total_capacity();
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        for (variant, cs) in [
            ("continuous", ConstrainedSet::unconstrained()),
            (
                "quantized",
                ConstrainedSet::unconstrained().quantized(vec![0.0, 50.0, 1000.0]),
            ),
        ] {
            let cfg = FinderConfig::budgeted(budget);
            let am = build_adversarial_model(&inst, &spec, &cs, &cfg).unwrap();
            let sos = am.stats().n_sos;
            let r = find_adversarial_gap(&inst, &spec, &cs, &cfg).unwrap();
            println!(
                "  {name:<8} ({} pairs, {} SOS) {variant:<10}: gap {:.4} ({} nodes, {:?})",
                inst.n_pairs(),
                sos,
                r.verified_gap / norm,
                r.nodes,
                r.status
            );
            csv.row([
                name.clone(),
                inst.n_pairs().to_string(),
                sos.to_string(),
                variant.into(),
                f(r.verified_gap / norm),
                r.nodes.to_string(),
            ]);
        }
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
