//! The blast-radius contract, exercised three ways: a SIGKILLed worker
//! child is retried to bit-identical results; an RSS-limit breach is
//! contained (killed, retried, quarantined — the server never crashes);
//! and a zombie attempt's late write is rejected by lease fencing so a
//! kill-then-retry can never be overwritten by the corpse it replaced.

use metaopt_campaign::{read_journal, CellDriveEnd, CellHeuristic, CellSpec, TopologySpec};
use metaopt_obs::Registry;
use metaopt_server::client::request;
use metaopt_server::json::Json;
use metaopt_server::spec::SubmitRequest;
use metaopt_server::{GapServer, RecordVerdict, ServerConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("metaopt-workerchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts the real `gapserver` binary (sandbox defaults on) and resolves
/// the OS-assigned port from the `ADDR` file it writes once listening.
fn spawn_server(dir: &Path, extra: &[&str]) -> (Child, String) {
    let _ = std::fs::remove_file(dir.join("ADDR"));
    let mut args = vec![
        "serve".to_string(),
        "--dir".into(),
        dir.to_str().unwrap().into(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--workers".into(),
        "2".into(),
    ];
    args.extend(extra.iter().map(std::string::ToString::to_string));
    let child = Command::new(env!("CARGO_BIN_EXE_gapserver"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gapserver");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("ADDR")) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote ADDR");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

fn job_body(label: &str, threshold: f64) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"chaos\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"fig1\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":{}}},",
            "\"sweep\":{{\"lo\":0.0,\"hi\":100.0,\"resolution\":2.0}},",
            "\"budget\":{{\"probe_cap_nodes\":4000,\"slice_nodes\":8}}}}"
        ),
        label, threshold
    )
    .into_bytes()
}

const THRESHOLDS: [f64; 3] = [30.0, 50.0, 70.0];

fn submit_all(addr: &str) -> Vec<u64> {
    THRESHOLDS
        .iter()
        .map(|t| {
            let resp = request(
                addr,
                "POST",
                "/jobs",
                Some(&job_body(&format!("chaos-{t}"), *t)),
                Duration::from_secs(60),
            )
            .unwrap();
            assert_eq!(resp.status, 202, "{}", resp.text());
            Json::parse(&resp.text())
                .unwrap()
                .get("id")
                .and_then(Json::as_u64)
                .unwrap()
        })
        .collect()
}

/// Polls until every job is terminal; returns `label → outcome_wire`.
fn collect_results(addr: &str, ids: &[u64]) -> BTreeMap<String, String> {
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut results = BTreeMap::new();
    for id in ids {
        loop {
            let resp =
                request(addr, "GET", &format!("/jobs/{id}"), None, Duration::from_secs(60))
                    .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
            let job = Json::parse(&resp.text()).unwrap();
            match job.get("status").and_then(Json::as_str).unwrap() {
                "done" => {
                    let label = job.get("label").and_then(Json::as_str).unwrap().to_string();
                    let wire = job
                        .get("result")
                        .and_then(|r| r.get("outcome_wire"))
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    results.insert(label, wire);
                    break;
                }
                "quarantined" | "cancelled" => panic!("job {id} ended {}", resp.text()),
                _ => {}
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    results
}

/// PIDs of live children of `parent` running in `--worker` mode, via
/// `/proc` (field 4 of `stat`, after the parenthesised comm).
fn worker_children(parent: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let Some(after_comm) = stat.rsplit_once(')').map(|(_, rest)| rest) else {
            continue;
        };
        let fields: Vec<&str> = after_comm.split_whitespace().collect();
        if fields.get(1).and_then(|p| p.parse::<u32>().ok()) != Some(parent) {
            continue;
        }
        let cmdline =
            std::fs::read_to_string(format!("/proc/{pid}/cmdline")).unwrap_or_default();
        if cmdline.split('\0').any(|a| a == "--worker") {
            out.push(pid);
        }
    }
    out
}

/// Scrapes one un-labelled counter value from `/metrics` text.
fn scrape(metrics: &str, family_and_labels: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(family_and_labels))
        .and_then(|rest| rest.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

#[test]
fn sigkilled_worker_is_retried_to_bit_identical_results() {
    // Baseline: an uninterrupted sandboxed run.
    let base_dir = tmp_dir("baseline");
    let (mut base, base_addr) = spawn_server(&base_dir, &[]);
    let base_ids = submit_all(&base_addr);
    let baseline = collect_results(&base_addr, &base_ids);
    base.kill().unwrap();
    let _ = base.wait();
    assert_eq!(baseline.len(), THRESHOLDS.len());

    // Chaos run: SIGKILL a live worker child mid-cell. The supervisor
    // must see the child die without a result frame, journal a
    // retryable `worker_exit` failure, and the retry must converge to
    // the same certified bits.
    let chaos_dir = tmp_dir("kill");
    let (mut server, addr) = spawn_server(&chaos_dir, &[]);
    let ids = submit_all(&addr);
    let hunt_deadline = Instant::now() + Duration::from_secs(60);
    let victim = loop {
        let kids = worker_children(server.id());
        if let Some(&pid) = kids.first() {
            break pid;
        }
        assert!(
            Instant::now() < hunt_deadline,
            "no sandboxed worker child ever appeared under pid {}",
            server.id()
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim} failed");

    let recovered = collect_results(&addr, &ids);
    assert_eq!(
        recovered, baseline,
        "results after a worker SIGKILL must be bit-identical"
    );

    // The server itself never wobbled, and it accounted for the loss.
    let health = request(&addr, "GET", "/healthz", None, Duration::from_secs(60)).unwrap();
    assert_eq!(health.status, 200);
    let metrics = request(&addr, "GET", "/metrics", None, Duration::from_secs(60))
        .unwrap()
        .text();
    let spawned = scrape(&metrics, "metaopt_server_workers_spawned_total ");
    assert!(
        spawned >= THRESHOLDS.len() as u64,
        "every attempt must run in a child (spawned={spawned})"
    );
    // The victim may have delivered its result in the instant before the
    // kill landed; when it did not, the loss must be counted.
    let lost = scrape(&metrics, "metaopt_server_workers_lost_total ");
    assert!(
        lost >= 1 || spawned == THRESHOLDS.len() as u64,
        "a mid-cell kill must surface as workers_lost (lost={lost}, spawned={spawned})"
    );
    server.kill().unwrap();
    let _ = server.wait();
}

#[cfg(target_os = "linux")]
#[test]
fn rss_breach_is_killed_and_quarantined_not_crashed() {
    // A 1 MiB ceiling is below any real worker's footprint: every
    // attempt breaches immediately, the supervisor kills it, the retry
    // policy runs out, and the job quarantines — while the server stays
    // up and keeps answering.
    let dir = tmp_dir("oom");
    let (mut server, addr) = spawn_server(&dir, &["--sandbox-rss-mb", "1"]);
    let resp = request(
        &addr,
        "POST",
        "/jobs",
        Some(&job_body("oom-victim", 50.0)),
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = Json::parse(&resp.text())
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = request(&addr, "GET", &format!("/jobs/{id}"), None, Duration::from_secs(60))
            .unwrap();
        let job = Json::parse(&resp.text()).unwrap();
        let status = job.get("status").and_then(Json::as_str).unwrap().to_string();
        if status == "quarantined" {
            break;
        }
        assert_ne!(status, "done", "a 1 MiB worker cannot have finished honestly");
        assert!(
            Instant::now() < deadline,
            "job {id} stuck at `{status}` under the RSS ceiling"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let health = request(&addr, "GET", "/healthz", None, Duration::from_secs(60)).unwrap();
    assert_eq!(health.status, 200, "server must survive its workers' OOM kills");
    let metrics = request(&addr, "GET", "/metrics", None, Duration::from_secs(60))
        .unwrap()
        .text();
    let oom = scrape(&metrics, "metaopt_server_workers_killed_total{reason=\"oom\"} ");
    assert!(oom >= 1, "RSS kills must be counted (got {oom})\n{metrics}");
    server.kill().unwrap();
    let _ = server.wait();
}

#[test]
fn zombie_write_after_lease_retirement_is_fenced() {
    // In-process server so the test can play the zombie itself: run a
    // job to completion, then replay a stale attempt's "result" through
    // the public record funnel under the fence token the lease no longer
    // holds. Nothing may reach the journal or the job state.
    let dir = tmp_dir("fence");
    let registry = Registry::new();
    let server = GapServer::open(ServerConfig {
        dir: dir.clone(),
        workers: 1,
        registry: registry.clone(),
        ..ServerConfig::default()
    })
    .unwrap();
    let workers = server.start_workers();

    let spec = CellSpec {
        label: "fence-job".into(),
        topology: TopologySpec::Fig1 { cap: 100.0 },
        paths_per_pair: 2,
        heuristic: CellHeuristic::Dp { threshold: 50.0 },
        lo: 0.0,
        hi: 100.0,
        resolution: 10.0,
        probe_cap_nodes: 4_000,
        slice_nodes: 16,
        timeout_secs: None,
        fault_seed: None,
        quantized: None,
    };
    let (id, _) = server
        .submit(SubmitRequest {
            client: "fence".into(),
            priority: 5,
            threads: 1,
            spec,
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let job = server.job_json(id).unwrap();
        if job.get("status").and_then(Json::as_str) == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "fence job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    let records_before = read_journal(&dir).unwrap().records;

    // The zombie speaks: a late failure result under a stale fence. The
    // lease died when the real attempt retired, so *no* fence can match.
    let verdict = server.record_attempt(
        id,
        7,
        u64::MAX,
        CellDriveEnd::Failed {
            kind: "worker_exit".into(),
            detail: "zombie attempt reporting long after its lease expired".into(),
        },
    );
    assert!(matches!(verdict, RecordVerdict::FencedOut), "{verdict:?}");

    let records_after = read_journal(&dir).unwrap().records;
    assert_eq!(
        records_before, records_after,
        "a fenced write must journal nothing"
    );
    let job = server.job_json(id).unwrap();
    assert_eq!(
        job.get("status").and_then(Json::as_str),
        Some("done"),
        "the certified result must be untouched"
    );
    assert_eq!(
        server.metrics().workers_fenced.get(),
        1,
        "the rejection must be counted"
    );

    server.drain("test over");
    for w in workers {
        w.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
