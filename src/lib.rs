#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt
//!
//! Facade crate for the `metaopt` workspace: a Rust reproduction of
//! *"Minding the gap between fast heuristics and their optimal
//! counterparts"* (HotNets '22). It re-exports the public API of every
//! workspace crate so applications can depend on a single crate:
//!
//! * [`lp`] — bounded-variable revised simplex (primal + dual) substrate,
//! * [`milp`] — branch-and-bound over binaries and complementarity pairs,
//! * [`model`] — modeling layer with the KKT rewriter,
//! * [`topology`] — WAN topologies, paths, and demand generation,
//! * [`te`] — traffic-engineering formulations (OPT, DP, POP) and
//!   reference evaluators,
//! * [`core`] — the paper's contribution: the single-shot adversarial gap
//!   finder,
//! * [`blackbox`] — hill-climbing / simulated-annealing baselines,
//! * [`resilience`] — fault taxonomy, budgets, degradation levels, and the
//!   deterministic fault-injection harness behind the chaos test suite,
//! * [`campaign`] — crash-safe campaign runner: journaled, supervised,
//!   resumable grids of gap-finding cells.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.
//!
//! # Example: prove a heuristic's worst case
//!
//! ```
//! use metaopt::core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
//! use metaopt::milp::MilpStatus;
//! use metaopt::te::TeInstance;
//! use metaopt::topology::synth::figure1_triangle;
//!
//! let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
//! let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2)?;
//!
//! let result = find_adversarial_gap(
//!     &inst,
//!     &HeuristicSpec::DemandPinning { threshold: 50.0 },
//!     &ConstrainedSet::unconstrained(),
//!     &FinderConfig::default(),
//! )?;
//!
//! // The provably worst input: pin the two-hop demand at the threshold,
//! // saturate the one-hop demands. Gap = 50 flow units, certified by
//! // re-running the real algorithms.
//! assert_eq!(result.status, MilpStatus::Optimal);
//! assert!((result.verified_gap - 50.0).abs() < 1e-4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use metaopt_blackbox as blackbox;
pub use metaopt_campaign as campaign;
pub use metaopt_core as core;
pub use metaopt_lp as lp;
pub use metaopt_milp as milp;
pub use metaopt_model as model;
pub use metaopt_resilience as resilience;
pub use metaopt_te as te;
pub use metaopt_topology as topology;
