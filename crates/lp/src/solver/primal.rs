//! Phase-I/II bounded-variable primal simplex iterations.

use super::{Simplex, VarState};
use crate::solution::SolveStatus;
use crate::{LpError, LpResult};
use metaopt_resilience::{FaultSite, SolverFault};

/// Outcome of one pricing pass.
enum Entering {
    /// Variable index and movement direction (+1 increase, −1 decrease).
    Var(usize, f64),
    OptimalReached,
}

impl Simplex {
    /// Runs primal iterations until optimality/unboundedness.
    ///
    /// Returns `Optimal` when no eligible entering variable remains, or
    /// `Unbounded` when an improving ray exists.
    pub(crate) fn primal_loop(&mut self) -> LpResult<SolveStatus> {
        let limit = self.auto_iter_limit();
        let mut w = vec![0.0; self.m];
        // Columns rejected this round for tiny pivots; cleared on refactor.
        let mut rejected: Vec<bool> = vec![false; self.total_vars()];
        // Devex reference weights (approximate steepest edge): reset to the
        // unit framework at loop entry and whenever they overflow.
        let mut devex: Vec<f64> = vec![1.0; self.total_vars()];
        // Duals maintained incrementally (y += θ·ρ per pivot); recomputed
        // from scratch at every refactorization.
        let mut y = self.btran_duals();
        let mut local_iters = 0usize;
        loop {
            if local_iters > limit {
                return Err(LpError::IterationLimit);
            }
            local_iters += 1;
            if local_iters.is_multiple_of(64) && self.deadline_passed() {
                return Err(LpError::Fault(SolverFault::DeadlineExceeded));
            }

            if self.refactor_due() {
                self.refactor_and_check()?;
                y = self.btran_duals();
                rejected.iter_mut().for_each(|r| *r = false);
            }

            let bland = self.degen_run >= self.cfg.degen_threshold;
            let entering = self.price(&y, bland, &rejected, &devex);
            let (q, dir) = match entering {
                Entering::OptimalReached => return Ok(SolveStatus::Optimal),
                Entering::Var(q, dir) => (q, dir),
            };

            self.ftran(q, &mut w);
            if self.fire_fault(FaultSite::NanPivot) {
                if let Some(w0) = w.first_mut() {
                    *w0 = f64::NAN;
                }
            }
            if w.iter().any(|v| !v.is_finite()) {
                return Err(LpError::Fault(SolverFault::NumericalBreakdown(format!(
                    "non-finite entering column {q} after FTRAN"
                ))));
            }

            // Ratio test: entering moves by t·dir; basic j at position i
            // changes by −dir·w[i]·t. Start from the bound-flip distance.
            let mut t_max = self.hi[q] - self.lo[q];
            let mut leave: Option<(usize, bool, f64)> = None; // (pos, to_upper, |pivot|)
            let ft = self.cfg.feas_tol;
            let tie = 1e-9;
            for (i, &w_raw) in w.iter().enumerate().take(self.m) {
                let wi = w_raw * dir;
                if wi.abs() <= self.cfg.pivot_tol {
                    continue;
                }
                let j = self.basis[i];
                let xj = self.x[j];
                // x_j(t) = xj − wi·t; it hits `limit_val` at t below.
                let (limit_val, to_upper) = if wi > 0.0 {
                    (self.lo[j], false)
                } else {
                    (self.hi[j], true)
                };
                if !limit_val.is_finite() {
                    continue;
                }
                // Slightly negative ratios (bound drift) clamp to zero.
                let t = ((xj - limit_val) / wi).max(0.0);
                let take = if t < t_max - tie {
                    true
                } else if t <= t_max + tie {
                    // Tie: Bland picks the smallest leaving index (anti-
                    // cycling); otherwise prefer the numerically largest
                    // pivot for stability.
                    match leave {
                        None => t <= t_max,
                        Some((p, _, piv)) => {
                            if bland {
                                self.basis[i] < self.basis[p]
                            } else {
                                wi.abs() > piv
                            }
                        }
                    }
                } else {
                    false
                };
                if take {
                    t_max = t.min(t_max);
                    leave = Some((i, to_upper, wi.abs()));
                }
            }

            if !t_max.is_finite() {
                return Ok(SolveStatus::Unbounded);
            }

            match leave {
                None => {
                    // Bound flip: entering jumps to its opposite bound.
                    let t = t_max;
                    debug_assert!(t.is_finite());
                    for (i, &wi) in w.iter().enumerate().take(self.m) {
                        let j = self.basis[i];
                        self.x[j] -= dir * wi * t;
                    }
                    self.x[q] += dir * t;
                    self.state[q] = if dir > 0.0 {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    self.iterations += 1;
                    self.degen_run = if t <= ft { self.degen_run + 1 } else { 0 };
                }
                Some((pos, to_upper, _)) => {
                    let t = t_max;
                    let piv = w[pos];
                    if piv.abs() <= self.cfg.pivot_tol {
                        // Numerically unusable pivot; reject this column once.
                        rejected[q] = true;
                        continue;
                    }
                    // Update values.
                    for (i, &wi) in w.iter().enumerate().take(self.m) {
                        let j = self.basis[i];
                        self.x[j] -= dir * wi * t;
                    }
                    let leaving = self.basis[pos];
                    // Clamp the leaving variable exactly onto its bound.
                    self.x[leaving] = if to_upper {
                        self.hi[leaving]
                    } else {
                        self.lo[leaving]
                    };
                    self.state[leaving] = if to_upper {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    self.x[q] += dir * t;
                    // Shared pivot row ρ = e_posᵀB⁻¹ drives both the dual
                    // update (y += θ·ρ) and the Devex weight update.
                    let d_q = self.reduced_cost(q, &y);
                    let theta = d_q / piv;
                    let rho = self.btran_unit(pos);
                    for (yi, ri) in y.iter_mut().zip(&rho) {
                        *yi += theta * ri;
                    }
                    self.update_devex(&mut devex, &rho, q, piv, leaving);
                    self.update_basis(pos, q, &w);
                    self.iterations += 1;
                    self.degen_run = if t <= ft { self.degen_run + 1 } else { 0 };
                    rejected.iter_mut().for_each(|r| *r = false);
                }
            }
        }
    }

    /// Devex (or Bland, when `bland`) pricing over nonbasic variables.
    fn price(&self, y: &[f64], bland: bool, rejected: &[bool], devex: &[f64]) -> Entering {
        let tol = self.cfg.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (var, dir, score)
        for j in 0..self.total_vars() {
            if rejected[j] {
                continue;
            }
            let dir = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => {
                    if self.lo[j] >= self.hi[j] {
                        continue; // fixed
                    }
                    1.0
                }
                VarState::AtUpper => {
                    if self.lo[j] >= self.hi[j] {
                        continue;
                    }
                    -1.0
                }
                VarState::FreeZero => 0.0,
            };
            let d = self.reduced_cost(j, y);
            let (dir, score) = if dir == 0.0 {
                // Free variable: move against the gradient.
                if d < -tol {
                    (1.0, -d)
                } else if d > tol {
                    (-1.0, d)
                } else {
                    continue;
                }
            } else if dir > 0.0 {
                if d < -tol {
                    (1.0, -d)
                } else {
                    continue;
                }
            } else if d > tol {
                (-1.0, d)
            } else {
                continue;
            };
            if bland {
                return Entering::Var(j, dir);
            }
            // Devex: rank by d² / reference weight.
            let score = score * score / devex[j];
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        match best {
            Some((j, dir, _)) => Entering::Var(j, dir),
            None => Entering::OptimalReached,
        }
    }
}

impl Simplex {
    /// Devex weight update (Forrest–Goldfarb) after a basis change: with
    /// pivot row α (row `pos` of `B⁻¹A`) and pivot element `alpha_q`,
    ///
    /// ```text
    ///   w_j       := max(w_j, (α_j/α_q)² · w_q)   for nonbasic j
    ///   w_leaving := max(w_q / α_q², 1)
    /// ```
    ///
    /// Weights overflowing the framework trigger a reset to 1.
    fn update_devex(
        &self,
        devex: &mut [f64],
        rho: &[f64],
        q: usize,
        alpha_q: f64,
        leaving: usize,
    ) {
        let wq = devex[q].max(1.0);
        let ratio = wq / (alpha_q * alpha_q);
        let total = self.total_vars();
        let mut overflow = false;
        for (j, dj) in devex.iter_mut().enumerate().take(total) {
            if j == q {
                continue;
            }
            if let super::VarState::Basic(_) = self.state[j] {
                continue;
            }
            let alpha_j = self.cols.col_dot(j, rho);
            if alpha_j != 0.0 {
                let cand = alpha_j * alpha_j * ratio;
                if cand > *dj {
                    *dj = cand;
                    if cand > 1e8 {
                        overflow = true;
                    }
                }
            }
        }
        devex[leaving] = ratio.max(1.0);
        if overflow {
            devex.iter_mut().for_each(|v| *v = 1.0);
        }
    }
}
