//! Static-analysis audit of every encoding family the finder produces.
//!
//! Builds the fig-1 DP, POP, and primal-only OPT single-shot models plus a
//! B4-scale DP model, runs the `metaopt-modelcheck` pass over each (model
//! IR + lowered LP), and prints the diagnostic reports. Exits nonzero if
//! any encoding draws an error-severity diagnostic — suitable as a CI
//! gate.

use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{check_adversarial_model, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_model::compile::compile;
use metaopt_modelcheck::{check_lp, NumericThresholds, Report};
use metaopt_te::{pop::random_partitions, TeInstance};
use metaopt_topology::{builtin, synth};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn audit(label: &str, inst: &TeInstance, spec: &HeuristicSpec, cfg: &FinderConfig) -> Report {
    let am = build_adversarial_model(inst, spec, &ConstrainedSet::unconstrained(), cfg)
        .unwrap_or_else(|e| panic!("{label}: model build failed: {e}"));
    let mut report = check_adversarial_model(inst, &am);
    match compile(&am.model) {
        Ok(c) => report.merge(check_lp(&c.lp, &NumericThresholds::default())),
        Err(e) => panic!("{label}: LP lowering failed: {e}"),
    }
    let stats = am.stats();
    println!(
        "== {label}: {} vars, {} rows, {} sos — {}",
        stats.n_vars,
        stats.n_linear,
        stats.n_sos,
        report.summary()
    );
    for d in report.diagnostics() {
        println!("   {d}");
    }
    report
}

fn main() {
    let (t, [n1, n2, n3]) = synth::figure1_triangle(100.0);
    let fig1 = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let line = TeInstance::all_pairs(synth::line(3, 10.0), 1).unwrap();
    let b4 = TeInstance::all_pairs(builtin::b4(1000.0), 2).unwrap();
    let mut rng = StdRng::seed_from_u64(1);

    let dp = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let pop = HeuristicSpec::Pop {
        partitions: random_partitions(line.n_pairs(), 2, 2, &mut rng),
        mode: PopMode::Average,
    };
    let primal_cfg = FinderConfig {
        opt_encoding: metaopt_core::OptEncoding::PrimalOnly,
        ..FinderConfig::default()
    };

    let reports = [
        audit("fig1 DP + KKT OPT", &fig1, &dp, &FinderConfig::default()),
        audit("line POP + KKT OPT", &line, &pop, &FinderConfig::default()),
        audit("fig1 DP + primal-only OPT", &fig1, &dp, &primal_cfg),
        audit(
            "B4 DP + KKT OPT",
            &b4,
            &HeuristicSpec::DemandPinning { threshold: 500.0 },
            &FinderConfig::default(),
        ),
    ];

    let errors: usize = reports.iter().map(|r| r.errors().count()).sum();
    let warnings: usize = reports
        .iter()
        .map(|r| r.diagnostics().len() - r.errors().count())
        .sum();
    println!("== total: {errors} errors, {warnings} warnings");
    if errors > 0 {
        std::process::exit(1);
    }
}
