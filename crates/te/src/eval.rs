//! Gap evaluation `OPT(d) − Heuristic(d)` (Eq. 1's objective for concrete
//! inputs) — the oracle the black-box baselines query and the incumbent
//! callback of the white-box search uses to certify candidates.

use crate::demand_pinning::demand_pinning;
use crate::instance::TeInstance;
use crate::opt::opt_max_flow;
use crate::pop::{pop_average, Partition};
use crate::TeResult;

/// The heuristic under adversarial analysis.
#[derive(Debug, Clone)]
pub enum Heuristic {
    /// Demand Pinning with pin threshold `t_d` (Eq. 4).
    DemandPinning {
        /// Pin threshold (absolute volume units).
        threshold: f64,
    },
    /// POP averaged over fixed partition instantiations (Eq. 6 / §3.2).
    Pop {
        /// The partition instantiations to average over.
        partitions: Vec<Partition>,
    },
}

impl Heuristic {
    /// Short display label for experiment output.
    pub fn label(&self) -> String {
        match self {
            Heuristic::DemandPinning { threshold } => format!("DP(T={threshold})"),
            Heuristic::Pop { partitions } => format!(
                "POP(parts={}, inst={})",
                partitions.first().map_or(0, |p| p.n_parts),
                partitions.len()
            ),
        }
    }

    /// Evaluates the heuristic's total flow on concrete demands. DP's
    /// infeasible inputs (§5) evaluate to flow 0 — the worst possible
    /// outcome, which keeps the black-box search away from them (the
    /// white-box search excludes them by construction).
    pub fn total_flow(&self, inst: &TeInstance, demands: &[f64]) -> TeResult<f64> {
        match self {
            Heuristic::DemandPinning { threshold } => {
                let out = demand_pinning(inst, demands, *threshold)?;
                Ok(if out.feasible { out.total_flow } else { 0.0 })
            }
            Heuristic::Pop { partitions } => pop_average(inst, demands, partitions),
        }
    }
}

/// `OPT(d) − Heuristic(d)` in absolute flow units.
pub fn gap(inst: &TeInstance, heuristic: &Heuristic, demands: &[f64]) -> TeResult<f64> {
    let opt = opt_max_flow(inst, demands)?.total_flow;
    let heu = heuristic.total_flow(inst, demands)?;
    Ok(opt - heu)
}

/// Figure 3's comparable metric: gap divided by the sum of edge capacities.
pub fn normalized_gap(inst: &TeInstance, heuristic: &Heuristic, demands: &[f64]) -> TeResult<f64> {
    Ok(gap(inst, heuristic, demands)? / inst.topo.total_capacity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop::random_partitions;
    use metaopt_topology::synth::figure1_triangle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1_instance() -> TeInstance {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
    }

    #[test]
    fn dp_gap_on_figure1() {
        let inst = fig1_instance();
        let h = Heuristic::DemandPinning { threshold: 50.0 };
        let g = gap(&inst, &h, &[50.0, 100.0, 100.0]).unwrap();
        assert!((g - 50.0).abs() < 1e-6, "gap {g}");
        let ng = normalized_gap(&inst, &h, &[50.0, 100.0, 100.0]).unwrap();
        assert!((ng - 50.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn gap_is_nonnegative_for_feasible_dp() {
        let inst = fig1_instance();
        let h = Heuristic::DemandPinning { threshold: 20.0 };
        for demands in [
            [0.0, 0.0, 0.0],
            [10.0, 10.0, 10.0],
            [19.0, 90.0, 90.0],
            [100.0, 100.0, 100.0],
        ] {
            let g = gap(&inst, &h, &demands).unwrap();
            assert!(g >= -1e-9, "negative gap {g} at {demands:?}");
        }
    }

    #[test]
    fn pop_gap_nonnegative() {
        let inst = fig1_instance();
        let mut rng = StdRng::seed_from_u64(1);
        let parts = random_partitions(inst.n_pairs(), 2, 3, &mut rng);
        let h = Heuristic::Pop { partitions: parts };
        let g = gap(&inst, &h, &[40.0, 70.0, 30.0]).unwrap();
        assert!(g >= -1e-9, "gap {g}");
    }

    #[test]
    fn labels_are_informative() {
        let h = Heuristic::DemandPinning { threshold: 50.0 };
        assert_eq!(h.label(), "DP(T=50)");
        let mut rng = StdRng::seed_from_u64(1);
        let parts = random_partitions(6, 2, 5, &mut rng);
        let h = Heuristic::Pop { partitions: parts };
        assert_eq!(h.label(), "POP(parts=2, inst=5)");
    }
}
