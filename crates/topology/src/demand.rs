//! Demand pairs and demand matrices.
//!
//! In the adversarial-gap problem (Eq. 1 of the paper) the demand *volumes*
//! are the leader's variables; only the set of `(src, dst)` pairs is fixed.
//! For black-box baselines and goalpost constraints, concrete volumes are
//! needed — [`gravity_demands`] produces the standard synthetic traffic
//! matrix used as a "historically observed" goalpost.

use crate::graph::{NodeId, Topology};

/// An ordered node pair that may carry traffic.
pub type DemandPair = (NodeId, NodeId);

/// A concrete demand: pair plus volume (`(s_k, t_k, d_k)` of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic volume (nonnegative).
    pub volume: f64,
}

impl Demand {
    /// Creates a demand.
    pub fn new(src: NodeId, dst: NodeId, volume: f64) -> Self {
        Demand { src, dst, volume }
    }
}

/// Every ordered pair of distinct nodes — the paper's "|D| is typically
/// quadratic in |V|" demand set.
pub fn all_pairs(topo: &Topology) -> Vec<DemandPair> {
    let mut pairs = Vec::with_capacity(topo.n_nodes() * (topo.n_nodes() - 1));
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s != d {
                pairs.push((s, d));
            }
        }
    }
    pairs
}

/// Deterministic gravity-model volumes for a pair list: node masses follow
/// a mild power law, volume `∝ mass(src) · mass(dst)`, normalized so the
/// *largest* volume equals `peak`.
pub fn gravity_demands(topo: &Topology, pairs: &[DemandPair], peak: f64) -> Vec<Demand> {
    assert!(peak > 0.0);
    let n = topo.n_nodes().max(1);
    let mass = |i: usize| 1.0 + (i % 5) as f64 + ((i * 7) % n) as f64 / n as f64;
    let raw: Vec<f64> = pairs
        .iter()
        .map(|&(s, d)| mass(s.0) * mass(d.0))
        .collect();
    let m = raw.iter().copied().fold(0.0, f64::max).max(1e-12);
    pairs
        .iter()
        .zip(raw)
        .map(|(&(s, d), r)| Demand::new(s, d, peak * r / m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::line;

    #[test]
    fn all_pairs_count() {
        let t = line(4, 1.0);
        let pairs = all_pairs(&t);
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn gravity_is_deterministic_and_bounded() {
        let t = line(5, 1.0);
        let pairs = all_pairs(&t);
        let a = gravity_demands(&t, &pairs, 100.0);
        let b = gravity_demands(&t, &pairs, 100.0);
        assert_eq!(a, b);
        let max = a.iter().map(|d| d.volume).fold(0.0, f64::max);
        assert!((max - 100.0).abs() < 1e-9);
        assert!(a.iter().all(|d| d.volume > 0.0 && d.volume <= 100.0));
    }
}
