//! Figure 6 — Problem sizes (#linear constraints, #SOS constraints,
//! #variables) and single-thread latency on B4: the metaoptimizations
//! (DP + OPT, POP + OPT) versus the plain heuristic/optimal problems.
//!
//! Paper's qualitative claims to check: the metaoptimization is a constant
//! factor larger in size but *disproportionately* slower — the latency is
//! driven by the SOS (complementarity) constraints the KKT rewrite adds,
//! not by the raw size.

use metaopt_bench::{budget_secs, f, CsvOut};
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_lp::Simplex;
use metaopt_model::compile::compile;
use metaopt_te::{flow::opt_max_flow_lp, pop::random_partitions, TeInstance};
use metaopt_topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let budget = budget_secs();
    let topo = builtin::b4(1000.0);
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    println!(
        "Figure 6: problem sizes and single-thread latency on B4 ({} pairs, 2 paths), metaopt budget {budget}s",
        inst.n_pairs()
    );
    let mut csv = CsvOut::new(
        "fig6_sizes",
        &["problem", "vars", "linear", "sos", "binaries", "latency_s"],
    );

    // Plain OPT: one LP solve on representative demands.
    let demands = vec![500.0; inst.n_pairs()];
    let (lp, _) = opt_max_flow_lp(&inst, &demands).unwrap();
    let t = Instant::now();
    Simplex::new(&lp).solve().unwrap();
    csv.row([
        "OPT (LP)".into(),
        lp.n_vars().to_string(),
        lp.n_rows().to_string(),
        "0".into(),
        "0".into(),
        f(t.elapsed().as_secs_f64()),
    ]);

    // Plain DP: pin + residual LP (evaluator).
    let t = Instant::now();
    metaopt_te::demand_pinning::demand_pinning(&inst, &demands, 50.0).unwrap();
    csv.row([
        "DP (heuristic)".into(),
        lp.n_vars().to_string(),
        lp.n_rows().to_string(),
        "0".into(),
        "0".into(),
        f(t.elapsed().as_secs_f64()),
    ]);

    // Plain POP: per-partition LPs.
    let mut rng = StdRng::seed_from_u64(3);
    let parts = random_partitions(inst.n_pairs(), 2, 1, &mut rng);
    let t = Instant::now();
    metaopt_te::pop::pop_max_flow(&inst, &demands, &parts[0]).unwrap();
    csv.row([
        "POP (heuristic)".into(),
        lp.n_vars().to_string(),
        lp.n_rows().to_string(),
        "0".into(),
        "0".into(),
        f(t.elapsed().as_secs_f64()),
    ]);

    // Metaopt DP + OPT.
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::budgeted(budget);
    let am = build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    let cm = compile(&am.model).unwrap();
    let t = Instant::now();
    let r = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    csv.row([
        "metaopt DP+OPT".into(),
        cm.stats.n_vars.to_string(),
        cm.stats.n_linear.to_string(),
        cm.stats.n_sos.to_string(),
        cm.stats.n_binary.to_string(),
        f(t.elapsed().as_secs_f64()),
    ]);
    println!("  metaopt DP+OPT: gap {:.1} ({:?})", r.verified_gap, r.status);

    // Metaopt POP + OPT (2 partitions, 3 instantiations).
    let mut rng = StdRng::seed_from_u64(9);
    let partitions = random_partitions(inst.n_pairs(), 2, 3, &mut rng);
    let spec = HeuristicSpec::Pop {
        partitions,
        mode: PopMode::Average,
    };
    let am = build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    let cm = compile(&am.model).unwrap();
    let t = Instant::now();
    let r = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    csv.row([
        "metaopt POP+OPT".into(),
        cm.stats.n_vars.to_string(),
        cm.stats.n_linear.to_string(),
        cm.stats.n_sos.to_string(),
        cm.stats.n_binary.to_string(),
        f(t.elapsed().as_secs_f64()),
    ]);
    println!("  metaopt POP+OPT: gap {:.1} ({:?})", r.verified_gap, r.status);

    println!();
    csv.print();
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
