//! Binary-sweep feasibility driver (§3.3 of the paper).
//!
//! For solvers that expose no incremental progress (the paper's Z3 path),
//! the method "iteratively asks for any input with a gap that is at least as
//! large as a specified value and binary-sweeps the value with a fixed
//! timeout". This module implements that strategy generically, twice over:
//!
//! * [`binary_sweep`] — the closure-driven loop: the caller supplies a
//!   probe that tries to find a witness with value ≥ g,
//! * [`SweepMachine`] — the same bisection logic as an *explicit state
//!   machine*, for callers that must suspend between probes (the campaign
//!   runner checkpoints the machine into its journal and resumes it after
//!   a crash).

/// Result of a [`binary_sweep`].
#[derive(Debug, Clone)]
pub enum SweepOutcome<W> {
    /// The largest threshold for which a witness was found, the witness, and
    /// the number of probes spent.
    Found {
        /// Highest threshold with a witness.
        threshold: f64,
        /// The witness returned by the probe at `threshold`.
        witness: W,
        /// Number of probe invocations.
        probes: usize,
    },
    /// No threshold in `[lo, hi]` produced a witness.
    NotFound {
        /// Number of probe invocations.
        probes: usize,
    },
}

/// The §3.3 bisection as an explicit, suspendable state machine.
///
/// Drive it with [`SweepMachine::next_threshold`] / [`SweepMachine::record`]
/// until `next_threshold` returns `None`. All fields are public and plain
/// data so supervisors can serialize the machine mid-sweep (the campaign
/// journal does) and reconstruct it verbatim; the only invariant is that
/// `record(g, _)` is called with the `g` that `next_threshold` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepMachine {
    /// Highest threshold proven feasible so far (search lower bound).
    pub lo_bound: f64,
    /// Lowest threshold observed infeasible so far (search upper bound).
    pub hi_bound: f64,
    /// Terminate when `hi_bound − lo_bound <= resolution`.
    pub resolution: f64,
    /// Whether the seeding probe at the bottom of the range has reported.
    pub seeded: bool,
    /// Whether the seeding probe failed (the whole range is infeasible).
    pub failed_at_lo: bool,
    /// Highest threshold at which a probe found a witness.
    pub best: Option<f64>,
    /// Probe invocations recorded so far.
    pub probes: usize,
}

impl SweepMachine {
    /// A fresh machine over `[lo, hi]` with the given resolution.
    ///
    /// # Panics
    /// If `lo > hi`, the bounds are NaN, or `resolution` is not positive
    /// (callers validate ranges; see `core::sweep_max_gap`).
    pub fn new(lo: f64, hi: f64, resolution: f64) -> Self {
        assert!(lo <= hi && resolution > 0.0, "bad sweep range");
        SweepMachine {
            lo_bound: lo,
            hi_bound: hi,
            resolution,
            seeded: false,
            failed_at_lo: false,
            best: None,
            probes: 0,
        }
    }

    /// The threshold to probe next, or `None` when the sweep has converged
    /// (or the seeding probe failed).
    pub fn next_threshold(&self) -> Option<f64> {
        if self.failed_at_lo {
            return None;
        }
        if !self.seeded {
            return Some(self.lo_bound);
        }
        if self.hi_bound - self.lo_bound > self.resolution {
            Some(0.5 * (self.lo_bound + self.hi_bound))
        } else {
            None
        }
    }

    /// Records the outcome of the probe at `g` (the value the preceding
    /// [`SweepMachine::next_threshold`] returned).
    pub fn record(&mut self, g: f64, found: bool) {
        self.probes += 1;
        if !self.seeded {
            self.seeded = true;
            if found {
                self.best = Some(g);
            } else {
                self.failed_at_lo = true;
            }
            return;
        }
        if found {
            self.best = Some(g);
            self.lo_bound = g;
        } else {
            self.hi_bound = g;
        }
    }

    /// Whether the sweep has converged (no further probes needed).
    pub fn is_done(&self) -> bool {
        self.next_threshold().is_none()
    }
}

/// Binary-searches the largest `g ∈ [lo, hi]` for which `probe(g)` returns a
/// witness, to within absolute resolution `resolution`.
///
/// `probe` is typically "solve the feasibility problem `gap >= g` under a
/// fixed time budget"; a `None` result is treated as *no witness at this
/// threshold* (which, under a timeout, is a heuristic answer — the sweep is
/// a search strategy, not a proof, exactly as in the paper).
///
/// Generic over the probe's error type so domain layers keep their typed
/// errors: a `core` probe failing its model-check gate surfaces as
/// `CoreError::ModelCheck`, not a stringified wrapper.
pub fn binary_sweep<W, E>(
    lo: f64,
    hi: f64,
    resolution: f64,
    mut probe: impl FnMut(f64) -> Result<Option<W>, E>,
) -> Result<SweepOutcome<W>, E> {
    let mut machine = SweepMachine::new(lo, hi, resolution);
    let mut witness: Option<W> = None;
    while let Some(g) = machine.next_threshold() {
        match probe(g)? {
            Some(w) => {
                witness = Some(w);
                machine.record(g, true);
            }
            None => machine.record(g, false),
        }
    }
    // The last successful probe is always the one at `best` (successes only
    // ever raise the search's lower bound).
    Ok(match (machine.best, witness) {
        (Some(threshold), Some(witness)) => SweepOutcome::Found {
            threshold,
            witness,
            probes: machine.probes,
        },
        _ => SweepOutcome::NotFound {
            probes: machine.probes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_converges_to_boundary() {
        // Witness exists iff g <= 7.3.
        let out = binary_sweep(0.0, 10.0, 1e-3, |g| {
            Ok::<_, ()>(if g <= 7.3 { Some(g) } else { None })
        })
        .unwrap();
        match out {
            SweepOutcome::Found { threshold, .. } => {
                assert!((threshold - 7.3).abs() < 1e-2, "threshold {threshold}");
            }
            SweepOutcome::NotFound { .. } => panic!("should find"),
        }
    }

    #[test]
    fn sweep_reports_not_found() {
        let out = binary_sweep(1.0, 2.0, 1e-3, |_g| Ok::<_, ()>(None::<f64>)).unwrap();
        assert!(matches!(out, SweepOutcome::NotFound { probes: 1 }));
    }

    #[test]
    fn sweep_handles_everywhere_feasible() {
        let out = binary_sweep(0.0, 4.0, 1e-3, |g| Ok::<_, ()>(Some(g))).unwrap();
        match out {
            SweepOutcome::Found { threshold, .. } => {
                assert!((threshold - 4.0).abs() < 1e-2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sweep_propagates_typed_errors() {
        #[derive(Debug, PartialEq)]
        struct Boom(u32);
        let err = binary_sweep(0.0, 1.0, 1e-3, |_g| Err::<Option<f64>, _>(Boom(7)));
        assert_eq!(err.unwrap_err(), Boom(7));
    }

    #[test]
    fn machine_matches_closure_driver() {
        // Drive the machine by hand and check it visits exactly the same
        // thresholds the closure-driven sweep does.
        let mut visited_machine = Vec::new();
        let mut m = SweepMachine::new(0.0, 10.0, 1e-2);
        while let Some(g) = m.next_threshold() {
            visited_machine.push(g);
            m.record(g, g <= 7.3);
        }
        let mut visited_closure = Vec::new();
        let _ = binary_sweep(0.0, 10.0, 1e-2, |g| {
            visited_closure.push(g);
            Ok::<_, ()>(if g <= 7.3 { Some(()) } else { None })
        });
        assert_eq!(visited_machine, visited_closure);
        assert!(m.is_done());
        assert_eq!(m.probes, visited_machine.len());
        let best = m.best.unwrap();
        assert!((best - 7.3).abs() < 1e-2, "best {best}");
    }

    #[test]
    fn machine_suspends_and_resumes_verbatim() {
        // Serialize-by-copy mid-sweep: a clone taken between probes must
        // continue to the identical answer.
        let mut m = SweepMachine::new(0.0, 10.0, 1e-3);
        for _ in 0..3 {
            let g = m.next_threshold().unwrap();
            m.record(g, g <= 6.1);
        }
        let mut resumed = m.clone();
        while let Some(g) = m.next_threshold() {
            m.record(g, g <= 6.1);
        }
        while let Some(g) = resumed.next_threshold() {
            resumed.record(g, g <= 6.1);
        }
        assert_eq!(m, resumed);
    }
}
