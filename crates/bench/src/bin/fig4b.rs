//! Figure 4b — DP's optimality gap on synthetic circle topologies
//! (circulant graphs `C(n, k)`): n nodes, each connected to its k nearest
//! neighbors per side.
//!
//! Paper's qualitative claim to check: the gap *grows with the average
//! shortest-path length* — pinning demands on longer paths consumes
//! capacity on more edges.

use metaopt_bench::{budget_secs, f, quick_mode, CsvOut};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_te::TeInstance;
use metaopt_topology::synth::{average_shortest_path_length, circulant};

fn main() {
    let budget = budget_secs();
    let n = if quick_mode() { 8 } else { 12 };
    let ks: Vec<usize> = if quick_mode() {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4]
    };
    let cap = 1000.0;
    let threshold = 0.05 * cap;
    println!(
        "Figure 4b: DP gap on circles C({n}, k), threshold 5% of capacity, budget {budget}s"
    );
    let mut csv = CsvOut::new(
        "fig4b_dp_circles",
        &["n", "k_neighbors", "avg_path_len", "norm_gap", "status"],
    );
    for &k in &ks {
        let topo = circulant(n, k, cap);
        let norm = topo.total_capacity();
        let apl = average_shortest_path_length(&topo);
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let r = find_adversarial_gap(
            &inst,
            &HeuristicSpec::DemandPinning { threshold },
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();
        println!(
            "  C({n},{k}): avg path {apl:.2} hops → normalized gap {:.4} ({:?})",
            r.verified_gap / norm,
            r.status
        );
        csv.row([
            n.to_string(),
            k.to_string(),
            f(apl),
            f(r.verified_gap / norm),
            format!("{:?}", r.status),
        ]);
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
