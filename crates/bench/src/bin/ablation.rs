//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * `OptEncoding::Kkt` (paper-faithful) vs `PrimalOnly` (half the SOS
//!   pairs — sound because the inner OPT enters with a positive sign),
//! * the incumbent callback on vs off,
//! * the POP tail-percentile objective (sorting network) vs the average.

use metaopt_bench::{budget_secs, f, CsvOut};
use metaopt_core::{
    find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, OptEncoding, PopMode,
};
use metaopt_te::{pop::random_partitions, TeInstance};
use metaopt_topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = budget_secs();
    let topo = builtin::swan(1000.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    println!("Ablations on SWAN (DP, T=50), budget {budget}s per variant");
    let mut csv = CsvOut::new(
        "ablation",
        &["variant", "norm_gap", "upper_bound_norm", "sos", "nodes"],
    );

    let variants: Vec<(&str, FinderConfig)> = vec![
        ("kkt+callback", FinderConfig::budgeted(budget)),
        (
            "primal-only+callback",
            FinderConfig {
                opt_encoding: OptEncoding::PrimalOnly,
                ..FinderConfig::budgeted(budget)
            },
        ),
        (
            "kkt, no callback",
            FinderConfig {
                use_incumbent_callback: false,
                ..FinderConfig::budgeted(budget)
            },
        ),
    ];
    for (label, cfg) in variants {
        let r =
            find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
        println!(
            "  {label:<22} gap {:.4}  bound {:.4}  SOS {}  nodes {}",
            r.verified_gap.max(0.0) / norm,
            r.upper_bound / norm,
            r.stats.n_sos,
            r.nodes
        );
        csv.row([
            label.to_string(),
            f(r.verified_gap.max(0.0) / norm),
            f(r.upper_bound / norm),
            r.stats.n_sos.to_string(),
            r.nodes.to_string(),
        ]);
    }

    // POP: tail-percentile (worst of R) vs average objective.
    let mut rng = StdRng::seed_from_u64(21);
    let partitions = random_partitions(inst.n_pairs(), 2, 3, &mut rng);
    for (label, mode) in [
        ("pop-average", PopMode::Average),
        ("pop-tail-worst", PopMode::TailWorst { rank: 0 }),
    ] {
        let spec = HeuristicSpec::Pop {
            partitions: partitions.clone(),
            mode,
        };
        let r = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();
        println!(
            "  {label:<22} gap {:.4}  bound {:.4}  SOS {}  nodes {}",
            r.verified_gap.max(0.0) / norm,
            r.upper_bound / norm,
            r.stats.n_sos,
            r.nodes
        );
        csv.row([
            label.to_string(),
            f(r.verified_gap.max(0.0) / norm),
            f(r.upper_bound / norm),
            r.stats.n_sos.to_string(),
            r.nodes.to_string(),
        ]);
    }

    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
