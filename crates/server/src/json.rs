//! A minimal, dependency-free JSON value with a strict recursive-descent
//! parser and a canonical renderer. The server's wire format needs exactly
//! this much: objects, arrays, strings, finite numbers, booleans, null.
//!
//! Numbers are `f64` (JSON's own model). Non-finite floats render as
//! `null` — the certified results that must survive bit-exactly travel as
//! hex-float wire strings ([`metaopt_campaign::wire::fhex`]) inside JSON
//! strings, never as JSON numbers.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (stable output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractional
    /// and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // f64 represents integers exactly up to 2^53; beyond that a u64
        // read from JSON was already lossy, so refuse it.
        // an:allow(AN003): exact integer detection is the point — any
        // nonzero fraction, however small, means the JSON carried a
        // non-integer and must be refused, not rounded.
        (n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Ryu-free shortest-ish rendering: Rust's Display for
                    // f64 round-trips.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting cap: deep enough for any legitimate job spec, shallow enough
/// that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 32;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match b.get(*pos) {
                    Some(b'"') => parse_string(b, pos)?,
                    _ => return Err(format!("expected object key at offset {pos}", pos = *pos)),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at offset {}", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF8 number".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number `{text}` at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}`"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    let mut pending_high: Option<u16> = None;
    loop {
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' && b[*pos] >= 0x20 {
            *pos += 1;
        }
        if *pos > start {
            let chunk =
                std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF8 string".to_string())?;
            if pending_high.is_some() {
                return Err("unpaired surrogate escape".into());
            }
            out.push_str(chunk);
        }
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                if pending_high.is_some() {
                    return Err("unpaired surrogate escape".into());
                }
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                let simple = match esc {
                    b'"' => Some('"'),
                    b'\\' => Some('\\'),
                    b'/' => Some('/'),
                    b'b' => Some('\u{8}'),
                    b'f' => Some('\u{c}'),
                    b'n' => Some('\n'),
                    b'r' => Some('\r'),
                    b't' => Some('\t'),
                    b'u' => None,
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                };
                if let Some(c) = simple {
                    if pending_high.is_some() {
                        return Err("unpaired surrogate escape".into());
                    }
                    out.push(c);
                    continue;
                }
                let hex = b
                    .get(*pos..*pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or("truncated \\u escape")?;
                let code = u16::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                *pos += 4;
                match (pending_high.take(), code) {
                    (None, 0xD800..=0xDBFF) => pending_high = Some(code),
                    (None, 0xDC00..=0xDFFF) => return Err("unpaired surrogate escape".into()),
                    (None, c) => out.push(char::from_u32(c as u32).ok_or("bad codepoint")?),
                    (Some(hi), 0xDC00..=0xDFFF) => {
                        let c = 0x10000 + ((hi as u32 - 0xD800) << 10) + (code as u32 - 0xDC00);
                        out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                    }
                    (Some(_), _) => return Err("unpaired surrogate escape".into()),
                }
            }
            Some(_) => return Err("control byte in string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let text = r#"{"a":1,"b":[true,false,null,"x\n\"y\\z"],"c":{"d":-2.5e3},"u":"\u00e9\ud83d\ude00"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64), Some(-2500.0));
        assert_eq!(v.get("u").and_then(Json::as_str), Some("é😀"));
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud800\"",
            "nan",
            "1e999",
            &format!("{}1", "[".repeat(40)),
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn control_chars_escape_on_render() {
        let s = Json::Str("a\u{1}b".into()).render();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\u{1}b".into()));
    }
}
