#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-model
//!
//! The optimization modeling layer of the `metaopt` workspace: a small,
//! self-contained algebraic modeling library (in the spirit of JuMP/CVXPY)
//! plus the machinery the paper's method needs:
//!
//! * [`Model`] / [`LinExpr`] / [`VarRef`] — variables, linear expressions
//!   with operator overloading, `<=`/`==`/`>=` constraints, min/max
//!   objectives (linear, plus *diagonal* quadratic terms so the paper's
//!   Figure-2 rectangle example is expressible),
//! * [`InnerProblem`] and [`kkt::append_kkt`] — the **KKT rewriter** that
//!   turns an inner convex problem into primal feasibility + stationarity +
//!   complementary-slackness constraints on the enclosing model (§3.1 of the
//!   paper). Complementary slackness products are kept *symbolic* as
//!   [`Complementarity`] pairs; the `metaopt-milp` branch-and-bound handles
//!   them disjunctively, exactly like Gurobi's SOS1 feature,
//! * [`bigm`] — exact `max(·,0)`, indicator, and McCormick-product encodings
//!   used to express conditional heuristics (§3.2),
//! * [`sortnet`] — a Batcher odd–even sorting network encoder used for the
//!   POP tail-percentile objective (§3.2),
//! * [`compile`] — lowering of a model to the `metaopt-lp` problem form,
//!   reporting the size statistics (variables, linear constraints, SOS
//!   constraints) that Figure 6 of the paper plots.

pub mod bigm;
pub mod compile;
pub mod display;
pub mod expr;
pub mod kkt;
pub mod model;
pub mod mutate;
pub mod sortnet;

pub use compile::{CompiledModel, ModelStats};
pub use display::to_lp_format;
pub use expr::LinExpr;
pub use kkt::{InnerObjective, InnerProblem};
pub use model::{Complementarity, Constraint, Model, ObjSense, Sense, VarKind, VarRef};

/// Errors raised by the modeling layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A variable reference belonged to a different model.
    ForeignVar(usize),
    /// Bounds or coefficients were NaN/infinite where finite data is needed.
    NotFinite(String),
    /// Inconsistent bounds.
    EmptyBounds {
        /// Variable index (or `usize::MAX` for row ranges).
        var: usize,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// The requested construct needs a finite big-M bound the caller did not
    /// provide (e.g. `max(expr, 0)` on an unbounded expression).
    MissingBound(String),
    /// Lowering failed inside the LP layer.
    Lp(metaopt_lp::LpError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ForeignVar(v) => write!(f, "variable {v} is not part of this model"),
            ModelError::NotFinite(s) => write!(f, "non-finite data: {s}"),
            ModelError::EmptyBounds { var, lo, hi } => {
                write!(f, "variable {var} has empty bounds [{lo}, {hi}]")
            }
            ModelError::MissingBound(s) => write!(f, "missing finite bound: {s}"),
            ModelError::Lp(e) => write!(f, "lp error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<metaopt_lp::LpError> for ModelError {
    fn from(e: metaopt_lp::LpError) -> Self {
        ModelError::Lp(e)
    }
}

/// Result alias for the modeling layer.
pub type ModelResult<T> = Result<T, ModelError>;
