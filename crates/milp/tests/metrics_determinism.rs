//! Counter determinism: observation must not perturb computation, and the
//! computation must not perturb observation. Two identical solves with two
//! fresh registries have to render **byte-identical** Prometheus text —
//! every `metaopt_milp_*` and `metaopt_lp_*` counter is driven purely by
//! the deterministic search (no wall-clock family exists at this layer),
//! so any divergence is a scheduling leak into the counters.
//!
//! Also pins the non-triviality side: the counters actually move (nodes,
//! waves, pivots, solves all positive after a real branch-and-bound run),
//! so the byte-equality assertion is not vacuously comparing zeros.

use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_milp::{solve, MilpConfig, MilpMetrics, MilpStatus, ParallelMode};
use metaopt_model::Model;
use metaopt_obs::Registry;
use metaopt_te::TeInstance;
use metaopt_topology::synth::figure1_triangle;

fn dp_model() -> Model {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::default();
    build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
        .unwrap()
        .model
}

/// One instrumented solve on a fresh registry; returns the rendered
/// exposition text and the solved node count.
fn instrumented_solve(model: &Model, threads: usize) -> (String, usize) {
    let registry = Registry::new();
    let cfg = MilpConfig {
        threads,
        parallel: ParallelMode::Deterministic,
        metrics: MilpMetrics::register(&registry),
        ..MilpConfig::default()
    };
    let sol = solve(model, &cfg).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal, "solve did not certify");
    (registry.render(), sol.nodes)
}

/// Extracts the value of an unlabelled sample line from rendered text.
fn sample(render: &str, name: &str) -> f64 {
    let line = render
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("family `{name}` missing from exposition"));
    line[name.len() + 1..].trim().parse().unwrap()
}

/// Two identical deterministic solves render byte-identical counter text,
/// at 1 thread and in the multi-worker deterministic engine.
#[test]
fn identical_solves_render_identical_counters() {
    let model = dp_model();
    for threads in [1, 4] {
        let (first, nodes_a) = instrumented_solve(&model, threads);
        let (second, nodes_b) = instrumented_solve(&model, threads);
        assert_eq!(nodes_a, nodes_b, "node counts diverged at {threads} threads");
        assert_eq!(
            first, second,
            "counter exposition diverged between identical solves at {threads} threads"
        );
    }
}

/// The instrumented counters actually observe the search: nodes match the
/// solution's certified node count exactly, and the simplex families are
/// all live.
#[test]
fn counters_reflect_the_certified_search() {
    let model = dp_model();
    let (render, nodes) = instrumented_solve(&model, 1);
    assert_eq!(
        sample(&render, "metaopt_milp_nodes_total") as usize,
        nodes,
        "nodes counter must equal the certified node count"
    );
    assert!(sample(&render, "metaopt_milp_waves_total") > 0.0);
    assert!(sample(&render, "metaopt_lp_pivots_total") > 0.0);
    assert!(sample(&render, "metaopt_lp_solves_total{mode=\"warm\"}") > 0.0);
}
