//@ rel: crates/server/src/server.rs
//@ expect: AN203 4:18
fn first(xs: &[u64]) -> u64 {
    let head = xs[0];
    head
}
