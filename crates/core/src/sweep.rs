//! The §3.3 binary-sweep search strategy.
//!
//! "For solvers which do not show progress (e.g., Z3), we iteratively ask
//! for any input with a gap that is at least as large as a specified value
//! and binary sweep the value with a fixed timeout."
//!
//! Each probe adds the constraint `OPT(d) − Heuristic(d) >= g` to the
//! single-shot model, runs a budgeted branch-and-bound that stops at the
//! *first* incumbent reaching `g` (feasibility, not optimization), and
//! *vets the witness* by re-running the real algorithms — a probe only
//! counts if the certified gap reaches the threshold.

use crate::constraints::ConstrainedSet;
use crate::finder::{build_adversarial_model, FinderConfig, HeuristicSpec};
use crate::{CoreError, CoreResult};
use metaopt_milp::{binary_sweep, solve, MilpConfig, SweepOutcome};
use metaopt_model::Sense;
use metaopt_te::{opt::opt_max_flow, TeInstance};

/// A vetted sweep witness.
#[derive(Debug, Clone)]
pub struct SweepWitness {
    /// The demands realizing the gap.
    pub demands: Vec<f64>,
    /// The certified gap (re-measured with the real algorithms).
    pub verified_gap: f64,
}

/// Result of [`sweep_max_gap`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The best witness found (None when even the lowest threshold failed).
    pub witness: Option<SweepWitness>,
    /// The highest threshold at which a witness was certified.
    pub threshold: f64,
    /// Probe invocations spent.
    pub probes: usize,
}

/// Probes whether any input achieves `gap >= g` within `probe_cfg`'s
/// budget. Returns a vetted witness or `None` (which, under a timeout, is
/// inconclusive — the sweep is a search strategy, not a proof).
pub fn find_gap_at_least(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    g: f64,
) -> CoreResult<Option<SweepWitness>> {
    let mut am = build_adversarial_model(inst, spec, constraints, cfg)?;
    // gap >= g as a model constraint.
    let mut gap_expr = am.opt_total.clone();
    gap_expr -= am.heu_value.clone();
    am.model
        .constrain_named("sweep::gap_floor", gap_expr, Sense::Ge, g)?;

    // Pre-solve static-analysis gate (debug Deny aborts here). A recorded
    // release-mode fault is dropped: every sweep witness is re-certified
    // against the real algorithms below, so a suspect encoding can only
    // cost probes, never produce a false witness.
    if cfg.modelcheck != crate::check::ModelCheckMode::Off {
        let report = crate::check::check_adversarial_model(inst, &am);
        let _ = crate::check::gate(&report, cfg.modelcheck)?;
    }

    let milp_cfg = MilpConfig {
        target_objective: Some(g),
        ..cfg.milp.clone()
    };
    // Reuse the finder's callback machinery through find_adversarial_gap's
    // building blocks: a plain solve is enough here because the incumbent
    // seeding happens through the callback; without it we still accept
    // branch-and-bound leaves.
    let sol = if cfg.use_incumbent_callback {
        let mut cb = crate::finder::new_candidate_evaluator(inst, spec, constraints, &am, cfg);
        metaopt_milp::solve_with_callback(&am.model, &milp_cfg, &mut cb)?
    } else {
        solve(&am.model, &milp_cfg)?
    };
    if sol.values.is_empty() {
        return Ok(None);
    }
    let demands: Vec<f64> = am
        .d
        .iter()
        .map(|v| sol.values[v.0].clamp(0.0, am.d_hi))
        .collect();
    let heu = match spec.evaluate(inst, &demands)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let verified = opt_max_flow(inst, &demands)?.total_flow - heu;
    if verified + 1e-6 >= g {
        Ok(Some(SweepWitness {
            demands,
            verified_gap: verified,
        }))
    } else {
        Ok(None)
    }
}

/// Binary-sweeps the largest certifiable gap in `[lo, hi]` to within
/// `resolution`, spending `cfg.milp`'s budget per probe.
pub fn sweep_max_gap(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    lo: f64,
    hi: f64,
    resolution: f64,
) -> CoreResult<SweepResult> {
    if lo.is_nan() || hi.is_nan() || lo > hi || resolution.is_nan() || resolution <= 0.0 {
        return Err(CoreError::Config(format!(
            "bad sweep range [{lo}, {hi}] / resolution {resolution}"
        )));
    }
    let outcome = binary_sweep(lo, hi, resolution, |g| {
        find_gap_at_least(inst, spec, constraints, cfg, g)
            .map_err(|e| metaopt_milp::MilpError::Model(e.to_string()))
    })?;
    Ok(match outcome {
        SweepOutcome::Found {
            threshold,
            witness,
            probes,
        } => SweepResult {
            witness: Some(witness),
            threshold,
            probes,
        },
        SweepOutcome::NotFound { probes } => SweepResult {
            witness: None,
            threshold: lo,
            probes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::figure1_triangle;

    fn fig1() -> TeInstance {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
    }

    #[test]
    fn probe_accepts_achievable_threshold() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let w = find_gap_at_least(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
            30.0,
        )
        .unwrap();
        let w = w.expect("gap 30 is achievable (max is 50)");
        assert!(w.verified_gap >= 30.0 - 1e-6);
    }

    #[test]
    fn probe_rejects_impossible_threshold() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        // The provable maximum is 50; 80 must be infeasible.
        let w = find_gap_at_least(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
            80.0,
        )
        .unwrap();
        assert!(w.is_none());
    }

    #[test]
    fn sweep_converges_to_the_optimum() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let r = sweep_max_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(5.0),
            0.0,
            100.0,
            1.0,
        )
        .unwrap();
        let w = r.witness.expect("some gap must be found");
        // The sweep should get within its resolution of the true optimum 50.
        assert!(
            r.threshold >= 45.0 && r.threshold <= 50.0 + 1e-6,
            "threshold {} (probes {})",
            r.threshold,
            r.probes
        );
        assert!(w.verified_gap >= r.threshold - 1e-6);
    }
}
