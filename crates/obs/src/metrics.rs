//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! rendered in the Prometheus text exposition format.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cheap.** A metric is a pre-registered *handle* holding an
//!    `Arc<AtomicU64>`; recording is one relaxed `fetch_add`, no lock, no
//!    name lookup. Solver kernels record per-solve *deltas* (not per-pivot
//!    increments) so even the atomic is off the innermost loops.
//! 2. **Disable-able to nothing.** A handle minted from
//!    [`Registry::disabled`] carries no allocation at all; every record
//!    call is a branch on `Option` the optimizer folds away. The `bnb`
//!    bench measures this mode's overhead (documented in DESIGN.md §15).
//! 3. **Deterministic exposition.** Families and series render in
//!    `BTreeMap` order, bucket boundaries are fixed at registration, and
//!    two identical solves against fresh registries produce byte-identical
//!    counter sections — pinned by golden tests.
//!
//! Registration is idempotent: asking twice for the same family + label
//! set returns handles sharing one underlying cell, so layers can mint
//! their handle structs independently without double counting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op counter, for layers running without observability.
    pub const fn disabled() -> Counter {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A no-op gauge.
    pub const fn disabled() -> Gauge {
        Gauge { cell: None }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: f64) {
        if let Some(c) = &self.cell {
            // CAS loop: gauges are supervisory (connection counts, queue
            // depth), never in solver hot paths, so contention is trivial.
            let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + d).to_bits())
            });
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Strictly increasing upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One cell per bound plus the `+Inf` bucket. Cumulative counts are
    /// computed at render time; cells hold per-bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram. Bucket boundaries are set at registration and
/// never change, so the exposition layout is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A no-op histogram.
    pub const fn disabled() -> Histogram {
        Histogram { cell: None }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.cell {
            let idx = h.bounds.partition_point(|b| *b < v);
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            let _ = h
                .sum_bits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                    Some((f64::from_bits(bits) + v).to_bits())
                });
        }
    }

    /// Total number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

/// Sub-second-to-seconds boundaries for request/handler latencies.
pub const LATENCY_BUCKETS_SECS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Wider boundaries for solve, replay, and campaign-cell durations.
pub const DURATION_BUCKETS_SECS: &[f64] = &[
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: Kind,
    /// Keyed by the rendered label block (`{a="x",b="y"}` or `""`).
    series: BTreeMap<String, Series>,
}

#[derive(Debug)]
struct RegistryCore {
    // lock-order: registry.families (leaf; held only during registration
    // and render, never while recording).
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// A metrics registry. Cloning shares the underlying store; a registry
/// from [`Registry::disabled`] mints no-op handles and renders empty.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryCore>>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryCore {
                families: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A registry whose handles all no-op. This is the mode whose overhead
    /// the `bnb` bench measures.
    pub const fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether handles minted here actually record.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a counter series.
    pub fn counter(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Some(Series::Counter(c)) => Counter { cell: Some(c) },
            _ => Counter::disabled(),
        }
    }

    /// Registers (or re-fetches) a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || {
            Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Some(Series::Gauge(c)) => Gauge { cell: Some(c) },
            _ => Gauge::disabled(),
        }
    }

    /// Registers (or re-fetches) a histogram series with the given bucket
    /// upper bounds (must be strictly increasing; `+Inf` is implicit).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let make = || {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Series::Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }))
        };
        match self.series(name, help, Kind::Histogram, labels, make) {
            Some(Series::Histogram(h)) => Histogram { cell: Some(h) },
            _ => Histogram::disabled(),
        }
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Option<Series> {
        let core = self.inner.as_ref()?;
        let key = label_key(labels);
        let mut families = core.families.lock().expect("metrics registry lock poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            // A name registered under two kinds is a programming error; we
            // keep the first registration and hand back a detached no-op
            // rather than panicking in library code.
            return None;
        }
        Some(family.series.entry(key).or_insert_with(make).clone())
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format, families and series in lexicographic order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let Some(core) = self.inner.as_ref() else {
            return String::new();
        };
        let families = core.families.lock().expect("metrics registry lock poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition());
            for (key, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{key} {}", c.load(Ordering::Relaxed));
                    }
                    Series::Gauge(c) => {
                        let v = f64::from_bits(c.load(Ordering::Relaxed));
                        let _ = writeln!(out, "{name}{key} {}", fmt_value(v));
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.buckets[i].load(Ordering::Relaxed);
                            let le = merge_le(key, &fmt_value(*bound));
                            let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                        }
                        cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                        let le = merge_le(key, "+Inf");
                        let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                        let sum = f64::from_bits(h.sum_bits.load(Ordering::Relaxed));
                        let _ = writeln!(out, "{name}_sum{key} {}", fmt_value(sum));
                        let _ = writeln!(out, "{name}_count{key} {}", h.count.load(Ordering::Relaxed));
                    }
                }
            }
        }
        out
    }
}

/// Renders a label set as `{a="x",b="y"}` (keys sorted), or `""` for none.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Inserts an `le="…"` label into an existing (possibly empty) label block.
fn merge_le(key: &str, le: &str) -> String {
    if key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // key ends with `}`; splice before it.
        format!("{},le=\"{le}\"}}", &key[..key.len() - 1])
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus-friendly float rendering: integers without a trailing `.0`,
/// everything else via the shortest `Display` round-trip.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_free_and_renders_empty() {
        let reg = Registry::disabled();
        let c = reg.counter("x_total", "help", &[]);
        c.add(5);
        assert_eq!(c.get(), 0);
        assert_eq!(reg.render(), "");
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("jobs_total", "jobs", &[("kind", "dp")]);
        let b = reg.counter("jobs_total", "jobs", &[("kind", "dp")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn kind_conflicts_yield_detached_handles() {
        let reg = Registry::new();
        let c = reg.counter("dual_use", "first wins", &[]);
        let g = reg.gauge("dual_use", "loses", &[]);
        g.set(9.0);
        c.inc();
        assert_eq!(g.get(), 0.0);
        assert!(reg.render().contains("# TYPE dual_use counter"));
    }

    #[test]
    fn gauge_add_and_set() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(4.0);
        g.add(-1.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "latency", &[], &[0.1, 1.0]);
        h.observe(0.05); // bucket 0
        h.observe(0.5); // bucket 1
        h.observe(0.5);
        h.observe(7.0); // +Inf
        let text = reg.render();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_seconds_count 4"), "{text}");
        assert!(text.contains("lat_seconds_sum 8.05"), "{text}");
    }

    #[test]
    fn boundary_observation_lands_in_its_le_bucket() {
        // Prometheus buckets are `le` (less-or-equal): an observation
        // exactly on a bound belongs to that bound's bucket.
        let reg = Registry::new();
        let h = reg.histogram("b_seconds", "bounds", &[], &[1.0]);
        h.observe(1.0);
        let text = reg.render();
        assert!(text.contains("b_seconds_bucket{le=\"1\"} 1"), "{text}");
    }

    #[test]
    fn render_orders_families_and_series_deterministically() {
        let reg = Registry::new();
        reg.counter("z_total", "last", &[]).inc();
        reg.counter("a_total", "first", &[("m", "y")]).inc();
        reg.counter("a_total", "first", &[("m", "x")]).add(2);
        let text = reg.render();
        let expected = "# HELP a_total first\n\
                        # TYPE a_total counter\n\
                        a_total{m=\"x\"} 2\n\
                        a_total{m=\"y\"} 1\n\
                        # HELP z_total last\n\
                        # TYPE z_total counter\n\
                        z_total 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("esc_total", "esc", &[("p", "a\"b\\c")]).inc();
        assert!(reg.render().contains("esc_total{p=\"a\\\"b\\\\c\"} 1"));
    }
}
