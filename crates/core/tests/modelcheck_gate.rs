//! Golden mutation tests for the static model checker gate.
//!
//! Each test builds a *real* adversarial encoding (fig-1 triangle DP, POP,
//! or primal-only OPT), seeds one specific corruption through the
//! `metaopt_model::mutate` hooks, and asserts the checker flags it with the
//! documented code. The clean-encoding tests pin the zero-false-positive
//! guarantee the deny-by-default gate relies on.

use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{
    check_adversarial_model, find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec,
    ModelCheckMode, OptEncoding, PopMode,
};
use metaopt_model::{LinExpr, Model, Sense, VarKind, VarRef};
use metaopt_modelcheck::{Report, Severity};
use metaopt_te::pop::random_partitions;
use metaopt_te::TeInstance;
use metaopt_topology::synth::figure1_triangle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

fn dp_spec() -> HeuristicSpec {
    HeuristicSpec::DemandPinning { threshold: 50.0 }
}

/// Builds the fig-1 DP single-shot model and returns (instance, model).
fn dp_model() -> (TeInstance, metaopt_core::finder::AdversarialModel) {
    let inst = fig1();
    let am = build_adversarial_model(
        &inst,
        &dp_spec(),
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    (inst, am)
}

fn var_where(m: &Model, pred: impl Fn(&str) -> bool) -> VarRef {
    (0..m.n_vars())
        .map(VarRef)
        .find(|&v| pred(m.var_name(v)))
        .expect("no variable matches predicate")
}

fn compl_where(m: &Model, pred: impl Fn(&str) -> bool) -> usize {
    m.complementarities()
        .iter()
        .position(|c| pred(m.var_name(c.multiplier)))
        .expect("no complementarity matches predicate")
}

fn row_where(m: &Model, pred: impl Fn(&str) -> bool) -> usize {
    m.constraints()
        .iter()
        .position(|c| pred(c.name.as_deref().unwrap_or("")))
        .expect("no constraint matches predicate")
}

fn errors(r: &Report) -> Vec<String> {
    r.diagnostics()
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect()
}

// --- clean encodings: zero error-severity diagnostics --------------------

#[test]
fn clean_dp_encoding_is_error_free() {
    let (inst, am) = dp_model();
    let r = check_adversarial_model(&inst, &am);
    assert!(errors(&r).is_empty(), "{r}");
}

#[test]
fn clean_pop_encoding_is_error_free() {
    let inst = TeInstance::all_pairs(metaopt_topology::synth::line(3, 10.0), 1).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let spec = HeuristicSpec::Pop {
        partitions: random_partitions(inst.n_pairs(), 2, 2, &mut rng),
        mode: PopMode::Average,
    };
    let am = build_adversarial_model(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    let r = check_adversarial_model(&inst, &am);
    assert!(errors(&r).is_empty(), "{r}");
}

#[test]
fn clean_primal_only_encoding_is_error_free() {
    let inst = fig1();
    let cfg = FinderConfig {
        opt_encoding: OptEncoding::PrimalOnly,
        ..FinderConfig::default()
    };
    let am =
        build_adversarial_model(&inst, &dp_spec(), &ConstrainedSet::unconstrained(), &cfg).unwrap();
    let r = check_adversarial_model(&inst, &am);
    assert!(errors(&r).is_empty(), "{r}");
}

// --- seeded mutations: each flagged with its documented code -------------

#[test]
fn flipped_dual_sign_is_mc102() {
    let (inst, mut am) = dp_model();
    let lam = var_where(&am.model, |n| n.starts_with("opt::lam["));
    am.model.set_var_bounds_unchecked(lam, -10.0, 0.0);
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC102"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn dropped_complementarity_is_mc104() {
    let (inst, mut am) = dp_model();
    let i = compl_where(&am.model, |n| n.starts_with("opt::lam["));
    am.model.remove_complementarity(i);
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC104"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn duplicated_complementarity_is_mc104() {
    let (inst, mut am) = dp_model();
    let i = compl_where(&am.model, |n| n.starts_with("opt::lam["));
    let dup = am.model.complementarities()[i].clone();
    am.model.push_complementarity_unchecked(dup.multiplier, dup.slack);
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC104"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn perturbed_compl_slack_is_mc105() {
    let (inst, mut am) = dp_model();
    let i = compl_where(&am.model, |n| n.starts_with("opt::lam["));
    am.model.mutate_complementarity(i, |c| c.slack += 1.0);
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC105"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn renamed_multiplier_is_mc101() {
    let (inst, mut am) = dp_model();
    let lam = var_where(&am.model, |n| n.starts_with("opt::lam["));
    am.model.rename_var(lam, "not_a_multiplier");
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC101"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn perturbed_stationarity_coefficient_is_mc103() {
    let (inst, mut am) = dp_model();
    // Flow variables are natively nonnegative, so their stationarity lives
    // in the reduced-cost pair x ⟂ ν(x); perturb a multiplier coefficient
    // inside the carrier ν.
    let i = compl_where(&am.model, |n| n.starts_with("opt::f["));
    let lam = am.model.complementarities()[i]
        .slack
        .terms()
        .find(|(v, _)| am.model.var_name(*v).starts_with("opt::lam["))
        .map(|(v, _)| v)
        .expect("carrier references an inequality multiplier");
    am.model
        .mutate_complementarity(i, |c| c.slack += LinExpr::term(lam, 0.5));
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC103"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn corrupted_bigm_is_mc107() {
    let (inst, mut am) = dp_model();
    // A big-M row whose constant fails to dominate the binary: fixing the
    // indicator to 1 makes the row statically infeasible.
    let z = var_where(&am.model, |_| true);
    let z = (z.0..am.model.n_vars())
        .map(VarRef)
        .find(|&v| am.model.var_kind(v) == VarKind::Binary)
        .expect("DP encoding has pin binaries");
    am.model
        .constrain_named("dp::bigm_probe", LinExpr::term(z, 1e4), Sense::Le, 0.0)
        .unwrap();
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC107"), "{r}");
}

#[test]
fn infeasible_constant_row_is_mc001() {
    let (inst, mut am) = dp_model();
    am.model
        .constrain_named("dp::junk", LinExpr::from(1.0), Sense::Le, 0.0)
        .unwrap();
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC001"), "{r}");
    assert!(r.has_errors(), "{r}");
}

#[test]
fn fixed_multiplier_is_mc008() {
    let (inst, mut am) = dp_model();
    let lam = var_where(&am.model, |n| n.starts_with("opt::lam["));
    am.model.set_var_bounds_unchecked(lam, 1.0, 1.0);
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC008"), "{r}");
}

#[test]
fn pathological_coefficients_are_mc202_mc203() {
    let (inst, mut am) = dp_model();
    let a = VarRef(0);
    let b = VarRef(1);
    am.model
        .constrain_named(
            "dp::scale_probe",
            LinExpr::term(a, 1e-14) + LinExpr::term(b, 1e12),
            Sense::Le,
            1.0,
        )
        .unwrap();
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC202"), "{r}");
    assert!(r.has_code("MC203"), "{r}");
    assert!(r.has_code("MC201"), "{r}");
}

#[test]
fn broken_demand_row_is_mc301() {
    let (inst, mut am) = dp_model();
    // Point a demand-conservation row at a foreign commodity's flow var.
    let i = row_where(&am.model, |n| n.starts_with("opt::pf[opt::dem[0]"));
    let foreign = var_where(&am.model, |n| n.starts_with("opt::f[1]["));
    am.model
        .mutate_constraint(i, |c| c.expr += LinExpr::term(foreign, 1.0));
    let r = check_adversarial_model(&inst, &am);
    assert!(r.has_code("MC301"), "{r}");
    assert!(r.has_errors(), "{r}");
}

// --- the gate itself -----------------------------------------------------

#[test]
fn gate_runs_inside_finder_and_clean_models_pass() {
    let inst = fig1();
    let cfg = FinderConfig::budgeted(10.0);
    assert_eq!(cfg.modelcheck, ModelCheckMode::Deny, "deny is the default");
    let r = find_adversarial_gap(&inst, &dp_spec(), &ConstrainedSet::unconstrained(), &cfg)
        .expect("clean encoding must pass the deny gate");
    assert!(r.verified_gap.is_finite());
    // No encoding-suspect faults on a clean model, in any build profile.
    assert!(
        !r.faults.iter().any(|f| f.kind() == "encoding_suspect"),
        "{:?}",
        r.faults
    );
}
