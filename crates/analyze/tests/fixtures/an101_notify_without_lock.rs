//@ rel: crates/milp/src/parallel.rs
//@ expect: AN101 6:7
use std::sync::Condvar;

fn wake(cv: &Condvar) {
    cv.notify_one();
}
