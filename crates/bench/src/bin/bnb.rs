//! Branch-and-bound engine benchmark: serial vs deterministic-parallel vs
//! work-stealing on the fig-1 scaling grid, plus warm-vs-cold LP
//! iteration accounting from the basis-snapshot warm starts.
//!
//! Emits `target/figures/BENCH_bnb.json` (hand-rolled JSON, like every
//! other emitter in this crate) with one record per (model, engine,
//! threads) cell: wall-clock seconds, node throughput, certified
//! objective, and the warm/cold solve split. The file also records the
//! hardware thread count of the machine that produced it — speedup claims
//! are only meaningful relative to that.

use metaopt_bench::quick_mode;
use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_milp::{solve, MilpConfig, MilpSolution, ParallelMode};
use metaopt_model::Model;
use metaopt_te::pop::Partition;
use metaopt_te::TeInstance;
use metaopt_topology::synth::{figure1_triangle, line};
use std::fmt::Write as _;
use std::time::Instant;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

fn model_for(name: &str) -> Model {
    let (inst, spec) = match name {
        "fig1-dp" => (
            fig1(),
            HeuristicSpec::DemandPinning { threshold: 50.0 },
        ),
        "fig1-pop" => (
            fig1(),
            HeuristicSpec::Pop {
                partitions: vec![
                    Partition {
                        assignment: vec![0, 1, 0],
                        n_parts: 2,
                    },
                    Partition {
                        assignment: vec![1, 0, 1],
                        n_parts: 2,
                    },
                ],
                mode: PopMode::Average,
            },
        ),
        "line4-dp" => (
            TeInstance::all_pairs(line(4, 10.0), 2).unwrap(),
            HeuristicSpec::DemandPinning { threshold: 5.0 },
        ),
        other => panic!("unknown model {other}"),
    };
    build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &FinderConfig::default())
        .unwrap()
        .model
}

struct Cell {
    model: String,
    engine: &'static str,
    threads: usize,
    secs: f64,
    sol: MilpSolution,
}

fn run_cell(model_name: &str, model: &Model, engine: &'static str, threads: usize, reps: usize) -> Cell {
    let parallel = match engine {
        "serial" => ParallelMode::Serial,
        "deterministic" => ParallelMode::Deterministic,
        "work-stealing" => ParallelMode::WorkStealing,
        _ => unreachable!(),
    };
    let cfg = MilpConfig {
        threads,
        parallel,
        ..MilpConfig::default()
    };
    // Best-of-N wall clock to damp scheduler noise; the certified result
    // is identical across repetitions for the deterministic engines.
    let mut best_secs = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sol = solve(model, &cfg).expect("solve failed");
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        last = Some(sol);
    }
    Cell {
        model: model_name.to_string(),
        engine,
        threads,
        secs: best_secs,
        sol: last.unwrap(),
    }
}

fn json_escape_free(s: &str) -> &str {
    // Every string this emitter writes is a plain identifier.
    s
}

fn main() {
    let reps = if quick_mode() { 1 } else { 3 };
    let hardware_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let models = ["fig1-dp", "fig1-pop", "line4-dp"];
    let mut cells: Vec<Cell> = Vec::new();
    for name in models {
        let model = model_for(name);
        cells.push(run_cell(name, &model, "serial", 1, reps));
        for threads in [1usize, 2, 4, 8] {
            cells.push(run_cell(name, &model, "deterministic", threads, reps));
        }
        cells.push(run_cell(name, &model, "work-stealing", 8, reps));
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"bnb\",");
    let _ = writeln!(out, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(
        out,
        "  \"note\": \"speedups are wall-clock vs the serial engine on the same model; \
         only meaningful when hardware_threads exceeds the thread count\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let serial_secs = cells
            .iter()
            .find(|s| s.model == c.model && s.engine == "serial")
            .map_or(f64::NAN, |s| s.secs);
        let stats = &c.sol.lp_stats;
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
             \"secs\": {:.6}, \"speedup_vs_serial\": {:.3}, \"nodes\": {}, \
             \"objective\": {:.9}, \"best_bound\": {:.9}, \
             \"warm_solves\": {}, \"cold_solves\": {}, \
             \"mean_warm_iters\": {}, \"mean_cold_iters\": {}}}",
            json_escape_free(&c.model),
            c.engine,
            c.threads,
            c.secs,
            serial_secs / c.secs,
            c.sol.nodes,
            c.sol.objective,
            c.sol.best_bound,
            stats.warm_solves,
            stats.cold_solves,
            stats
                .mean_warm_iterations()
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            stats
                .mean_cold_iterations()
                .map_or("null".to_string(), |v| format!("{v:.3}")),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::create_dir_all("target/figures").expect("mkdir target/figures");
    let path = "target/figures/BENCH_bnb.json";
    std::fs::write(path, &out).expect("write BENCH_bnb.json");

    // Human-readable summary.
    println!("branch-and-bound engine benchmark ({hardware_threads} hardware threads)\n");
    println!(
        "  {:<10} {:<15} {:>7} {:>9} {:>8} {:>7} {:>10} {:>10}",
        "model", "engine", "threads", "secs", "speedup", "nodes", "warm-iters", "cold-iters"
    );
    for c in &cells {
        let serial_secs = cells
            .iter()
            .find(|s| s.model == c.model && s.engine == "serial")
            .map_or(f64::NAN, |s| s.secs);
        let stats = &c.sol.lp_stats;
        println!(
            "  {:<10} {:<15} {:>7} {:>9.4} {:>8.2} {:>7} {:>10} {:>10}",
            c.model,
            c.engine,
            c.threads,
            c.secs,
            serial_secs / c.secs,
            c.sol.nodes,
            stats
                .mean_warm_iterations()
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            stats
                .mean_cold_iterations()
                .map_or("-".to_string(), |v| format!("{v:.1}")),
        );
    }
    println!("\nwrote {path}");
}
