//! The approved time source for supervisory code.
//!
//! Every timeout, backoff, and queue-aging decision in the campaign
//! runner and the job server — and every span duration the tracer
//! records — flows through an injectable [`Clock`] instead of reading
//! `Instant::now()` directly. That buys two things:
//!
//! * **Deterministic tests.** A [`TestClock`] advances only when a test
//!   says so, so timeout, retry-promotion, and span-duration paths can be
//!   exercised exactly — no sleeps, no flakes.
//! * **Auditable wall-clock reads.** The `AN001` lint (`xtask analyze`)
//!   denies raw `Instant::now()` / `SystemTime::now()` everywhere outside
//!   this module; the handful of deliberate wall-clock reads left in the
//!   solver kernels (stall detection, real-time budgets, trajectory
//!   timestamps) each carry a justified `an:allow` annotation.
//!
//! The clock deals in [`Instant`]s, so supervisory code keeps its
//! ordinary `deadline: Option<Instant>` shapes; only the *source* of
//! "now" is injected.
//!
//! This module originally lived in `metaopt-campaign`; it moved here so
//! the observability layer (which everything, including `metaopt-lp`,
//! depends on) can drive span timing from the same injected source.
//! `metaopt_campaign::clock` re-exports it unchanged.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A source of monotonic time.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The production clock: a thin wrapper over the OS monotonic clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        // The one sanctioned raw read: everything else goes through a
        // `Clock`. (This module is the AN001 approved time module.)
        Instant::now()
    }
}

/// A manually-advanced clock for deterministic tests.
///
/// Starts at an arbitrary base instant; [`TestClock::advance`] moves it
/// forward. Time never advances on its own, so a test that never calls
/// `advance` sees a perfectly frozen clock.
#[derive(Debug)]
pub struct TestClock {
    base: Instant,
    // lock-order: clock.offset
    offset: Mutex<Duration>,
}

impl TestClock {
    /// A fresh clock frozen at its base instant.
    pub fn new() -> TestClock {
        TestClock {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }

    /// Advances the clock by `d`. Affects every holder of this clock.
    pub fn advance(&self, d: Duration) {
        let mut off = self.offset.lock().expect("test clock lock poisoned");
        *off += d;
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        self.base + *self.offset.lock().expect("test clock lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_frozen_until_advanced() {
        let clock = TestClock::new();
        let a = clock.now();
        let b = clock.now();
        assert_eq!(a, b);
        clock.advance(Duration::from_secs(7));
        assert_eq!(clock.now() - a, Duration::from_secs(7));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock;
        let a = clock.now();
        assert!(clock.now() >= a);
    }
}
