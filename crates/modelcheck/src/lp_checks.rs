//! Checks on a lowered [`LpProblem`] — the last stop before the simplex
//! solver sees the instance.
//!
//! Reuses the MC0xx/MC2xx codes at the LP layer (spans are `LpVar`/`LpRow`):
//!
//! * MC001 — row whose activity range excludes the only achievable activity
//!   (no nonzeros and `0 ∉ [rlo, rhi]`),
//! * MC002 — row with no nonzeros that is trivially satisfied,
//! * MC004 — empty variable box (`lo > hi`) or NaN data,
//! * MC005 — column that appears in no row and has zero objective weight,
//! * MC010 — duplicate `(row, col)` triplet entries (double-added
//!   coefficients silently sum),
//! * MC201/MC202/MC203/MC204 — same numeric-hygiene thresholds as the IR
//!   pass, applied to the triplet matrix.

use crate::{NumericThresholds, Report, Severity, Span};
use metaopt_lp::{LpProblem, VarId};
use std::collections::HashMap;

/// Runs the LP-layer families over `problem`.
pub fn check_lp(problem: &LpProblem, th: &NumericThresholds) -> Report {
    let mut report = Report::new();
    let n = problem.n_vars();
    let m = problem.n_rows();

    for j in 0..n {
        let (lo, hi) = problem.bounds(VarId(j));
        if lo.is_nan() || hi.is_nan() || lo > hi {
            report.push(
                "MC004",
                Severity::Error,
                Span::LpVar { index: j },
                format!("empty or non-finite bounds [{lo}, {hi}]"),
            );
        }
    }

    // Per-row and per-column tallies from the triplets.
    let mut row_nnz = vec![0usize; m];
    let mut col_used = vec![false; n];
    let mut row_min = vec![f64::INFINITY; m];
    let mut row_max = vec![0.0f64; m];
    let mut row_tiny = vec![0usize; m];
    let mut seen: HashMap<(usize, usize), usize> = HashMap::new();
    let mut global_min = f64::INFINITY;
    let mut global_max: f64 = 0.0;

    for (t, &(r, c, v)) in problem.triplets().iter().enumerate() {
        if r >= m || c >= n {
            report.push(
                "MC009",
                Severity::Error,
                Span::LpRow { index: r },
                format!("triplet #{t} references ({r}, {c}) outside the {m}x{n} matrix"),
            );
            continue;
        }
        if let Some(first) = seen.insert((r, c), t) {
            report.push(
                "MC010",
                Severity::Warning,
                Span::LpRow { index: r },
                format!(
                    "duplicate entry for column {c} (triplets #{first} and #{t} sum silently)"
                ),
            );
        }
        row_nnz[r] += 1;
        col_used[c] = true;
        let a = v.abs();
        row_min[r] = row_min[r].min(a);
        row_max[r] = row_max[r].max(a);
        global_min = global_min.min(a);
        global_max = global_max.max(a);
        if a < th.tiny {
            row_tiny[r] += 1;
        }
        if a > th.huge {
            report.push(
                "MC203",
                Severity::Warning,
                Span::LpRow { index: r },
                format!("coefficient {v:.3e} on column {c} risks conditioning trouble"),
            );
        }
    }

    for i in 0..m {
        let (rlo, rhi) = problem.row_bounds(i);
        if row_nnz[i] == 0 {
            if rlo > 0.0 || rhi < 0.0 {
                report.push(
                    "MC001",
                    Severity::Error,
                    Span::LpRow { index: i },
                    format!("row has no nonzeros but requires activity in [{rlo}, {rhi}]"),
                );
            } else {
                report.push(
                    "MC002",
                    Severity::Warning,
                    Span::LpRow { index: i },
                    "row has no nonzeros and is vacuous".to_string(),
                );
            }
            continue;
        }
        if row_tiny[i] > 0 {
            report.push(
                "MC202",
                Severity::Warning,
                Span::LpRow { index: i },
                format!(
                    "{} coefficient(s) below {:.0e} in magnitude",
                    row_tiny[i], th.tiny
                ),
            );
        }
        if row_nnz[i] >= 2 && row_max[i] / row_min[i] > th.row_range_ratio {
            report.push(
                "MC201",
                Severity::Warning,
                Span::LpRow { index: i },
                format!(
                    "mixed magnitudes in one row: |coef| spans [{:.3e}, {:.3e}]",
                    row_min[i], row_max[i]
                ),
            );
        }
    }

    for (j, used) in col_used.iter().enumerate() {
        if !used && problem.obj_coef(VarId(j)) == 0.0 {
            report.push(
                "MC005",
                Severity::Warning,
                Span::LpVar { index: j },
                "column appears in no row and has zero objective weight".to_string(),
            );
        }
    }

    if global_max > 0.0 && global_min.is_finite() && global_max / global_min > th.model_range_ratio
    {
        report.push(
            "MC204",
            Severity::Warning,
            Span::Model,
            format!(
                "matrix-wide coefficient range [{global_min:.3e}, {global_max:.3e}] is a \
                 conditioning hazard"
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_lp::RowSense;

    #[test]
    fn clean_lp_is_clean() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0).unwrap();
        let y = p.add_var(0.0, 10.0, 2.0).unwrap();
        p.add_row(RowSense::Le, 5.0, [(x, 1.0), (y, 2.0)]).unwrap();
        let r = check_lp(&p, &NumericThresholds::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn empty_infeasible_row_and_orphan_column() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        let _orphan = p.add_var(0.0, 1.0, 0.0).unwrap();
        // Coefficient 0.0 is dropped by the builder, leaving an empty row
        // that demands activity >= 3.
        p.add_row(RowSense::Ge, 3.0, [(x, 0.0)]).unwrap();
        let r = check_lp(&p, &NumericThresholds::default());
        assert!(r.has_code("MC001"), "{r}");
        assert!(r.has_code("MC005"), "{r}");
    }

    #[test]
    fn duplicate_triplets_flagged() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowSense::Le, 1.0, [(x, 0.5), (x, 0.5)]).unwrap();
        let r = check_lp(&p, &NumericThresholds::default());
        assert!(r.has_code("MC010"), "{r}");
    }
}
