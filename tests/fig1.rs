//! Integration test reproducing the paper's Figure-1 narrative end to end
//! through the public facade: the DP/OPT allocation table, the gap, and the
//! white-box finder's certified worst case on the same topology.

use metaopt::core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt::milp::MilpStatus;
use metaopt::te::{demand_pinning::demand_pinning, opt::opt_max_flow, TeInstance};
use metaopt::topology::synth::figure1_triangle;

#[test]
fn figure1_narrative() {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let demands = vec![50.0, 100.0, 100.0];

    // DP pins the at-threshold 1→3 demand over both hops.
    let dp = demand_pinning(&inst, &demands, 50.0).unwrap();
    assert!(dp.feasible);
    assert_eq!(dp.pinned, vec![true, false, false]);
    assert!((dp.flows[0][0] - 50.0).abs() < 1e-9); // pinned on shortest path
    assert!((dp.total_flow - 150.0).abs() < 1e-6);

    // OPT sacrifices the long demand entirely.
    let opt = opt_max_flow(&inst, &demands).unwrap();
    assert!((opt.total_flow - 200.0).abs() < 1e-6);
    let f13: f64 = opt.flows[0].iter().sum();
    assert!(f13 < 1e-6, "OPT should drop the two-hop demand, got {f13}");

    // The finder proves this demand set is the worst case for the topology.
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    assert!((r.model_gap - 50.0).abs() < 1e-4);
    assert!((r.verified_gap - (opt.total_flow - dp.total_flow)).abs() < 1e-4);
}

/// The gap of Figure 1 vanishes when the threshold cannot capture the
/// two-hop demand — a sanity boundary for the reconstruction.
#[test]
fn figure1_gap_vanishes_below_threshold() {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 0.0 },
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    assert!(
        r.model_gap.abs() < 1e-5,
        "threshold 0 pins nothing but zero-volume demands; gap {}",
        r.model_gap
    );
}
