//@ rel: crates/campaign/src/clock.rs
use std::time::Instant;

fn wall_now() -> Instant {
    Instant::now()
}
