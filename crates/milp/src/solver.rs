//! The branch-and-bound search.

use crate::{MilpError, MilpResult};
use metaopt_lp::{Simplex, SolveStatus, VarId};
use metaopt_model::{compile::compile, CompiledModel, Model};
use metaopt_resilience::{Budget, FaultPlan, FaultSite, SolverFault};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Contain at most this many incumbent-callback panics before disabling
/// the callback for the rest of the search.
pub(crate) const MAX_CALLBACK_PANICS: usize = 3;

/// Tunable branch-and-bound parameters (defaults follow the paper's §3.3
/// methodology where applicable).
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Hard wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Stop when `(incumbent − bound) / max(1, |incumbent|) <= rel_gap`.
    pub rel_gap: f64,
    /// §3.3 stall rule: stop when no relative improvement of at least
    /// [`MilpConfig::stall_improvement`] happened within this window.
    pub stall_window: Option<Duration>,
    /// Relative improvement threshold for the stall rule (paper: 0.5%).
    pub stall_improvement: f64,
    /// Node budget.
    pub max_nodes: usize,
    /// Integrality tolerance on binaries.
    pub int_tol: f64,
    /// Complementarity tolerance: a pair `(λ, s)` is violated when
    /// `min(λ, s) > compl_tol · (1 + max(λ, s))`.
    pub compl_tol: f64,
    /// Invoke the incumbent callback every this many nodes (0 = never).
    pub callback_every: usize,
    /// Stop as soon as an incumbent at least this good exists (model space:
    /// `>=` for Max objectives, `<=` for Min). Used by feasibility probes
    /// such as the §3.3 binary sweep ("any input with a gap at least g").
    pub target_objective: Option<f64>,
    /// First-class budget threaded from the caller (the finder layer).
    /// Composed with [`MilpConfig::time_limit`] / [`MilpConfig::max_nodes`]
    /// limit-by-limit; because a [`Budget`] holds an *absolute* deadline,
    /// passing one down never resets the clock.
    pub budget: Budget,
    /// Deterministic fault-injection plan (chaos tests only). Shared with
    /// the underlying simplex; clones share counters.
    pub fault_plan: Option<FaultPlan>,
    /// Worker-thread count for the parallel tree-search modes. `0` (the
    /// default) resolves the `METAOPT_THREADS` environment variable,
    /// falling back to `1`.
    pub threads: usize,
    /// Which tree-search engine runs the branch-and-bound (see
    /// [`crate::ParallelMode`]). The default `Auto` picks the serial engine
    /// at one resolved thread and the deterministic parallel engine above.
    pub parallel: crate::ParallelMode,
    /// Basis-factorization backend for every LP relaxation solved under
    /// this search (root, nodes, workers). The default resolves the
    /// `METAOPT_FACTOR` environment variable, falling back to sparse LU.
    pub factor: metaopt_lp::FactorBackend,
    /// Obs counter handles shared by every engine and worker simplex
    /// (no-op by default). Metrics never feed back into search order, so
    /// enabling them cannot perturb the deterministic engine.
    pub metrics: crate::MilpMetrics,
    /// Obs tracer for incumbent/gap-trajectory events (no-op by default).
    pub tracer: metaopt_obs::Tracer,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            time_limit: None,
            rel_gap: 1e-6,
            stall_window: None,
            stall_improvement: 0.005,
            max_nodes: usize::MAX,
            int_tol: 1e-6,
            compl_tol: 1e-6,
            callback_every: 1,
            target_objective: None,
            budget: Budget::unlimited(),
            fault_plan: None,
            threads: 0,
            parallel: crate::ParallelMode::Auto,
            factor: metaopt_lp::FactorBackend::from_env(),
            metrics: crate::MilpMetrics::disabled(),
            tracer: metaopt_obs::Tracer::disabled(),
        }
    }
}

impl MilpConfig {
    /// Convenience: a configuration with only a time budget set.
    pub fn with_time_limit(seconds: f64) -> Self {
        MilpConfig {
            time_limit: Some(Duration::from_secs_f64(seconds)),
            ..Default::default()
        }
    }

    /// Convenience: a configuration governed by `budget` alone.
    pub fn with_budget(budget: Budget) -> Self {
        MilpConfig {
            budget,
            ..Default::default()
        }
    }

    /// The budget the search actually runs under: [`MilpConfig::budget`]
    /// tightened by the legacy `time_limit` / `max_nodes` knobs.
    pub fn effective_budget(&self) -> Budget {
        let mut b = self.budget;
        if let Some(tl) = self.time_limit {
            b = b.min_with(Budget::from_duration(tl));
        }
        if self.max_nodes != usize::MAX {
            b = b.with_max_nodes(self.max_nodes);
        }
        b
    }
}

/// Terminal status of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal (within the configured relative gap).
    Optimal,
    /// A feasible incumbent exists but budgets expired before proving
    /// optimality.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// Budgets expired with no feasible point found (inconclusive).
    NoSolution,
}

/// Outcome of a branch-and-bound run, in *model* space (a `Max` objective is
/// reported as a maximum, etc.).
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Terminal status.
    pub status: MilpStatus,
    /// Values per model variable (meaningful for `Optimal`/`Feasible`).
    pub values: Vec<f64>,
    /// Incumbent objective.
    pub objective: f64,
    /// Best dual bound on the objective (for `Max`: an upper bound).
    pub best_bound: f64,
    /// `(incumbent − bound)` relative gap at termination.
    pub rel_gap: f64,
    /// Nodes processed.
    pub nodes: usize,
    /// Total LP simplex pivots.
    pub lp_iterations: usize,
    /// Nodes pruned due to LP numerical failures (soundness caveat if > 0).
    pub numerical_prunes: usize,
    /// Wall-clock time of the search.
    pub solve_time: Duration,
    /// `(seconds_since_start, incumbent_objective)` at every improvement —
    /// wall-clock seconds in *every* engine (the deterministic engine keeps
    /// its node-axis replay trajectory internal to the [`Checkpoint`]).
    pub trajectory: Vec<(f64, f64)>,
    /// Faults contained during the search (callback panics, LP breakdowns
    /// pruned, deadline interruptions). Empty on a clean run.
    pub faults: Vec<SolverFault>,
    /// Nodes whose relaxation came back degraded from the LP recovery
    /// ladder (their objectives were not used for pruning).
    pub degraded_nodes: usize,
    /// Warm-vs-cold accounting of the node LP solves.
    pub lp_stats: LpSolveStats,
}

/// Warm-vs-cold accounting of the node LP solves of one search: how many
/// relaxations finished inside the dual simplex (warm) versus falling back
/// to a cold two-phase run, and the pivots each kind consumed. The
/// `BENCH_bnb.json` emitter derives its warm-start speedup ratios from
/// these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpSolveStats {
    /// Node LPs that finished as genuine warm dual re-solves.
    pub warm_solves: usize,
    /// Total simplex pivots spent in warm solves.
    pub warm_iterations: usize,
    /// Node LPs that fell back to (or started as) cold two-phase runs.
    pub cold_solves: usize,
    /// Total simplex pivots spent in cold solves.
    pub cold_iterations: usize,
}

impl LpSolveStats {
    pub(crate) fn record(&mut self, warm: bool, iterations: usize) {
        if warm {
            self.warm_solves += 1;
            self.warm_iterations += iterations;
        } else {
            self.cold_solves += 1;
            self.cold_iterations += iterations;
        }
    }

    /// Mean pivots per warm solve (`None` until a warm solve happened).
    pub fn mean_warm_iterations(&self) -> Option<f64> {
        (self.warm_solves > 0)
            .then(|| self.warm_iterations as f64 / self.warm_solves as f64)
    }

    /// Mean pivots per cold solve (`None` until a cold solve happened).
    pub fn mean_cold_iterations(&self) -> Option<f64> {
        (self.cold_solves > 0)
            .then(|| self.cold_iterations as f64 / self.cold_solves as f64)
    }
}

/// Domain hook that turns a relaxation point into a true feasible solution.
///
/// `relaxation` holds model-variable values of the current LP relaxation.
/// Implementations return a *feasible* assignment of all model variables
/// together with its (model-space) objective value. The solver trusts the
/// reported objective for pruning — implementations must only return values
/// realized by a genuinely feasible point (e.g. obtained by running the
/// actual heuristic on candidate inputs).
pub trait IncumbentCallback {
    /// Proposes a feasible solution, or `None`.
    fn propose(&mut self, relaxation: &[f64]) -> Option<(Vec<f64>, f64)>;
}

/// No-op callback.
struct NoCallback;

impl IncumbentCallback for NoCallback {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

/// Solves `model` by branch-and-bound with default behaviour.
pub fn solve(model: &Model, cfg: &MilpConfig) -> MilpResult<MilpSolution> {
    solve_with_callback(model, cfg, &mut NoCallback)
}

/// An open node in checkpoint form: bound changes from root, parent
/// bound in min-space, and depth.
pub(crate) type FrontierNode = (Vec<(VarId, f64, f64)>, f64, usize);

/// Total order on frontier nodes by (bound, depth, change path): the
/// canonical order the deterministic parallel engine certifies nodes in
/// and serializes checkpoint frontiers in. Depending only on node
/// *content* (never on creation sequence numbers) is what makes the
/// engine's visit order — and hence its `Checkpoint::to_text` output —
/// identical at any thread count and across resume boundaries. Two open
/// nodes of one tree always differ in their change path, so the order is
/// strict.
pub(crate) fn canon_cmp(
    a: (&[(VarId, f64, f64)], f64, usize),
    b: (&[(VarId, f64, f64)], f64, usize),
) -> Ordering {
    a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)).then_with(|| {
        for ((va, la, ha), (vb, lb, hb)) in a.0.iter().zip(b.0) {
            let o = va
                .0
                .cmp(&vb.0)
                .then(la.total_cmp(lb))
                .then(ha.total_cmp(hb));
            if o != Ordering::Equal {
                return o;
            }
        }
        a.0.len().cmp(&b.0.len())
    })
}

/// Unit of the time axis of a [`Checkpoint`]'s stored trajectory. The
/// serial and work-stealing engines record incumbent improvements in
/// wall-clock seconds; the deterministic engine's replay clock is
/// certified *nodes* (seconds would differ run to run and break its
/// bit-identical `to_text` guarantee). Resume paths only adopt a stored
/// trajectory whose axis matches their own clock, so a checkpoint handed
/// across engines never mixes units in one trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum TrajAxis {
    /// Wall-clock seconds since the start of the run that recorded it.
    #[default]
    Seconds,
    /// Certified node count at the improvement (deterministic engine).
    Nodes,
}

/// Opaque resumable state of an interrupted branch-and-bound search:
/// the open frontier, the incumbent, and the bookkeeping counters.
/// Produced by [`solve_resumable`] when a budget interrupts the search;
/// feeding it back continues from exactly where the search stopped
/// instead of re-exploring the tree.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Open nodes: (bound changes from root, parent bound in min-space,
    /// depth).
    pub(crate) frontier: Vec<FrontierNode>,
    /// Incumbent in min-space.
    pub(crate) incumbent: Option<(Vec<f64>, f64)>,
    pub(crate) nodes: usize,
    pub(crate) numerical_prunes: usize,
    pub(crate) degraded_nodes: usize,
    pub(crate) trajectory: Vec<(f64, f64)>,
    /// Unit of `trajectory`'s time axis (see [`TrajAxis`]).
    pub(crate) traj_axis: TrajAxis,
    pub(crate) last_stall_value: f64,
    pub(crate) faults: Vec<SolverFault>,
}

impl Checkpoint {
    /// Number of open nodes in the stored frontier.
    pub fn open_nodes(&self) -> usize {
        self.frontier.len()
    }

    /// Nodes processed before the interruption.
    pub fn nodes_processed(&self) -> usize {
        self.nodes
    }

    /// Whether an incumbent was in hand at the interruption.
    pub fn has_incumbent(&self) -> bool {
        self.incumbent.is_some()
    }

    /// The incumbent objective in *min-space*, if one was in hand.
    pub fn incumbent_objective_min(&self) -> Option<f64> {
        self.incumbent.as_ref().map(|(_, o)| *o)
    }
}

/// A malformed [`Checkpoint`] text representation (see
/// [`Checkpoint::from_text`]). Carries a human-readable diagnostic; parsing
/// never panics and never constructs a partially-populated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointParseError(pub String);

impl std::fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointParseError {}

/// Exact text encoding of an `f64`: the 16 hex digits of its bit pattern.
/// Chosen over decimal so that round-tripping a frontier's bound values is
/// *bit-exact* — a resumed search must make the same pruning decisions the
/// interrupted one would have made.
fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, CheckpointParseError> {
    if s.len() != 16 {
        return Err(CheckpointParseError(format!(
            "float field `{s}` is not 16 hex digits"
        )));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointParseError(format!("bad float bits `{s}`")))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CheckpointParseError> {
    s.parse()
        .map_err(|_| CheckpointParseError(format!("bad {what} `{s}`")))
}

/// Escapes a fault detail string into a single whitespace-free token.
fn escape_detail(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    if s.is_empty() {
        return "~".into();
    }
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '~' => out.push_str("\\-"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_detail(s: &str) -> Result<String, CheckpointParseError> {
    if s == "~" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('_') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('-') => out.push('~'),
            other => {
                return Err(CheckpointParseError(format!(
                    "bad escape `\\{}` in detail",
                    other.map_or(String::from("<eof>"), String::from)
                )))
            }
        }
    }
    Ok(out)
}

const CHECKPOINT_MAGIC: &str = "milp-checkpoint v1";

impl Checkpoint {
    /// Serializes this checkpoint into a versioned, line-oriented text
    /// form. The format is hand-rolled (the build environment has no
    /// registry access, hence no serde): one `field value...` line per
    /// record, floats encoded as exact bit patterns, terminated by an
    /// explicit `end` line so truncation is always detectable.
    ///
    /// The encoding is *relative to a compiled model*: frontier nodes
    /// store `(VarId, lo, hi)` bound changes against the root relaxation.
    /// Resuming therefore requires rebuilding the **same** model the
    /// checkpoint was taken from (model compilation is deterministic), as
    /// the campaign journal does from its serialized cell specs.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_MAGIC);
        out.push('\n');
        out.push_str(&format!("nodes {}\n", self.nodes));
        out.push_str(&format!("prunes {}\n", self.numerical_prunes));
        out.push_str(&format!("degraded {}\n", self.degraded_nodes));
        out.push_str(&format!("stall {}\n", f64_to_hex(self.last_stall_value)));
        out.push_str(match self.traj_axis {
            TrajAxis::Seconds => "traj_axis secs\n",
            TrajAxis::Nodes => "traj_axis nodes\n",
        });
        for f in &self.faults {
            out.push_str(&format!(
                "fault {} {}\n",
                f.kind(),
                escape_detail(f.detail())
            ));
        }
        for (t, v) in &self.trajectory {
            out.push_str(&format!("traj {} {}\n", f64_to_hex(*t), f64_to_hex(*v)));
        }
        if let Some((vals, obj)) = &self.incumbent {
            out.push_str(&format!("incumbent {} {}", f64_to_hex(*obj), vals.len()));
            for v in vals {
                out.push(' ');
                out.push_str(&f64_to_hex(*v));
            }
            out.push('\n');
        }
        for (changes, bound, depth) in &self.frontier {
            out.push_str(&format!(
                "open {} {} {}",
                f64_to_hex(*bound),
                depth,
                changes.len()
            ));
            for (v, lo, hi) in changes {
                out.push_str(&format!(" {}:{}:{}", v.0, f64_to_hex(*lo), f64_to_hex(*hi)));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint previously produced by [`Checkpoint::to_text`].
    ///
    /// Rejects (never panics on) unknown versions, missing or duplicated
    /// fields, malformed numbers, truncation (missing `end`), and trailing
    /// garbage — a corrupted journal entry must surface as an error, not a
    /// silently wrong resume.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointParseError> {
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_MAGIC) {
            return Err(CheckpointParseError(format!(
                "missing `{CHECKPOINT_MAGIC}` header"
            )));
        }
        let mut nodes: Option<usize> = None;
        let mut prunes: Option<usize> = None;
        let mut degraded: Option<usize> = None;
        let mut stall: Option<f64> = None;
        let mut faults: Vec<SolverFault> = Vec::new();
        let mut trajectory: Vec<(f64, f64)> = Vec::new();
        let mut traj_axis: Option<TrajAxis> = None;
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        let mut frontier: Vec<FrontierNode> = Vec::new();
        let mut ended = false;
        for line in lines.by_ref() {
            let mut tok = line.split(' ');
            let key = tok.next().unwrap_or("");
            match key {
                "nodes" | "prunes" | "degraded" => {
                    let slot = match key {
                        "nodes" => &mut nodes,
                        "prunes" => &mut prunes,
                        _ => &mut degraded,
                    };
                    let v = parse_usize(tok.next().unwrap_or(""), key)?;
                    if slot.replace(v).is_some() {
                        return Err(CheckpointParseError(format!("duplicate `{key}`")));
                    }
                }
                "stall" => {
                    let v = f64_from_hex(tok.next().unwrap_or(""))?;
                    if stall.replace(v).is_some() {
                        return Err(CheckpointParseError("duplicate `stall`".into()));
                    }
                }
                "fault" => {
                    let kind = tok.next().unwrap_or("");
                    let detail = unescape_detail(tok.next().unwrap_or(""))?;
                    let f = SolverFault::from_kind(kind, &detail).ok_or_else(|| {
                        CheckpointParseError(format!("unknown fault kind `{kind}`"))
                    })?;
                    faults.push(f);
                }
                "traj" => {
                    let t = f64_from_hex(tok.next().unwrap_or(""))?;
                    let v = f64_from_hex(tok.next().unwrap_or(""))?;
                    trajectory.push((t, v));
                }
                "traj_axis" => {
                    let axis = match tok.next().unwrap_or("") {
                        "secs" => TrajAxis::Seconds,
                        "nodes" => TrajAxis::Nodes,
                        other => {
                            return Err(CheckpointParseError(format!(
                                "unknown trajectory axis `{other}`"
                            )))
                        }
                    };
                    if traj_axis.replace(axis).is_some() {
                        return Err(CheckpointParseError("duplicate `traj_axis`".into()));
                    }
                }
                "incumbent" => {
                    let obj = f64_from_hex(tok.next().unwrap_or(""))?;
                    let n = parse_usize(tok.next().unwrap_or(""), "incumbent arity")?;
                    let vals = tok
                        .by_ref()
                        .map(f64_from_hex)
                        .collect::<Result<Vec<_>, _>>()?;
                    if vals.len() != n {
                        return Err(CheckpointParseError(format!(
                            "incumbent arity {n} != {} values",
                            vals.len()
                        )));
                    }
                    if incumbent.replace((vals, obj)).is_some() {
                        return Err(CheckpointParseError("duplicate `incumbent`".into()));
                    }
                }
                "open" => {
                    let bound = f64_from_hex(tok.next().unwrap_or(""))?;
                    let depth = parse_usize(tok.next().unwrap_or(""), "depth")?;
                    let n = parse_usize(tok.next().unwrap_or(""), "change count")?;
                    let mut changes = Vec::with_capacity(n);
                    for t in tok.by_ref() {
                        let mut parts = t.split(':');
                        let var = parse_usize(parts.next().unwrap_or(""), "var id")?;
                        let lo = f64_from_hex(parts.next().unwrap_or(""))?;
                        let hi = f64_from_hex(parts.next().unwrap_or(""))?;
                        if parts.next().is_some() {
                            return Err(CheckpointParseError(format!(
                                "trailing fields in bound change `{t}`"
                            )));
                        }
                        changes.push((VarId(var), lo, hi));
                    }
                    if changes.len() != n {
                        return Err(CheckpointParseError(format!(
                            "open-node arity {n} != {} changes",
                            changes.len()
                        )));
                    }
                    frontier.push((changes, bound, depth));
                }
                "end" => {
                    if tok.next().is_some() {
                        return Err(CheckpointParseError("trailing tokens on `end`".into()));
                    }
                    ended = true;
                    break;
                }
                other => {
                    return Err(CheckpointParseError(format!("unknown field `{other}`")));
                }
            }
            if tok.next().is_some() && !matches!(key, "incumbent" | "open") {
                return Err(CheckpointParseError(format!("trailing tokens on `{key}`")));
            }
        }
        if !ended {
            return Err(CheckpointParseError("truncated: missing `end`".into()));
        }
        if lines.next().is_some() {
            return Err(CheckpointParseError("trailing garbage after `end`".into()));
        }
        let (nodes, prunes, degraded, stall) = match (nodes, prunes, degraded, stall) {
            (Some(n), Some(p), Some(d), Some(s)) => (n, p, d, s),
            _ => {
                return Err(CheckpointParseError(
                    "missing one of nodes/prunes/degraded/stall".into(),
                ))
            }
        };
        if frontier.is_empty() {
            // An interrupted search always has open work; an empty frontier
            // means resume would silently terminate immediately.
            return Err(CheckpointParseError("empty frontier".into()));
        }
        Ok(Checkpoint {
            frontier,
            incumbent,
            nodes,
            numerical_prunes: prunes,
            degraded_nodes: degraded,
            trajectory,
            // Pre-axis texts carry seconds: only the serial engine wrote
            // checkpoints before the axis marker existed.
            traj_axis: traj_axis.unwrap_or_default(),
            last_stall_value: stall,
            faults,
        })
    }
}

#[derive(Debug)]
struct Node {
    /// Cumulative bound changes from the root: `(var, lo, hi)`.
    changes: Vec<(VarId, f64, f64)>,
    /// Parent relaxation objective (min-space): a valid bound for this node.
    bound: f64,
    depth: usize,
}

/// Heap wrapper ordered so the smallest `bound` pops first.
struct ByBound(Node);

impl PartialEq for ByBound {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for ByBound {}
impl PartialOrd for ByBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByBound {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the min bound on top.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves `model` by branch-and-bound, consulting `callback` for incumbents.
pub fn solve_with_callback(
    model: &Model,
    cfg: &MilpConfig,
    callback: &mut dyn IncumbentCallback,
) -> MilpResult<MilpSolution> {
    solve_resumable(model, cfg, callback, None).map(|(sol, _)| sol)
}

/// Like [`solve_with_callback`], but the search can be interrupted and
/// continued: when a budget stops the search with open nodes, the second
/// return value carries a [`Checkpoint`]; passing it back (with a fresh
/// budget) resumes from the stored frontier instead of restarting.
pub fn solve_resumable(
    model: &Model,
    cfg: &MilpConfig,
    callback: &mut dyn IncumbentCallback,
    resume: Option<Checkpoint>,
) -> MilpResult<(MilpSolution, Option<Checkpoint>)> {
    // an:allow(AN001): `solve_time` and the reported trajectory are
    // wall-clock for every engine; bit-stable replay rides on the
    // checkpoint's node-axis trajectory instead.
    let start = Instant::now();
    let cm = compile(model)?;
    match cfg.resolved_engine() {
        crate::parallel::Engine::Serial => {
            let mut search = Search::new(&cm, cfg, callback, resume);
            search.run(start)?;
            Ok(search.finish(start))
        }
        crate::parallel::Engine::Deterministic(threads) => {
            crate::parallel::solve_deterministic(&cm, cfg, callback, resume, threads, start)
        }
        crate::parallel::Engine::WorkStealing(threads) => {
            crate::parallel::solve_work_stealing(&cm, cfg, callback, resume, threads, start)
        }
    }
}

struct Search<'a> {
    cm: &'a CompiledModel,
    cfg: &'a MilpConfig,
    callback: &'a mut dyn IncumbentCallback,
    simplex: Simplex,
    root_bounds: Vec<(f64, f64)>,
    /// Vars currently deviating from root bounds.
    applied: BTreeMap<usize, ()>,
    heap: BinaryHeap<ByBound>,
    dive: Option<Node>,
    /// Incumbent in min-space.
    incumbent: Option<(Vec<f64>, f64)>,
    /// Bound of the node currently being processed (min-space).
    nodes: usize,
    numerical_prunes: usize,
    degraded_nodes: usize,
    trajectory: Vec<(f64, f64)>,
    last_improvement: Instant,
    last_stall_value: f64,
    stopped_early: bool,
    proven_bound: f64,
    /// The budget this run operates under (cfg budget ∧ legacy knobs).
    budget: Budget,
    /// Shared-counter clone of the config's fault plan.
    fault_plan: Option<FaultPlan>,
    /// Faults contained so far.
    faults: Vec<SolverFault>,
    /// Callback panics contained; at [`MAX_CALLBACK_PANICS`] the callback
    /// is disabled for the rest of the search.
    callback_panics: usize,
    /// True when this run continues a [`Checkpoint`] (changes how the
    /// root node is seeded).
    resumed: bool,
    /// Warm-vs-cold accounting of the node LP solves.
    lp_stats: LpSolveStats,
}

impl<'a> Search<'a> {
    fn new(
        cm: &'a CompiledModel,
        cfg: &'a MilpConfig,
        callback: &'a mut dyn IncumbentCallback,
        resume: Option<Checkpoint>,
    ) -> Self {
        let budget = cfg.effective_budget();
        let mut simplex = Simplex::with_config(
            &cm.lp,
            metaopt_lp::SimplexConfig {
                backend: cfg.factor,
                ..Default::default()
            },
        );
        simplex.set_deadline(budget.deadline());
        simplex.set_fault_plan(cfg.fault_plan.clone());
        simplex.set_metrics(cfg.metrics.lp.clone());
        let root_bounds = (0..cm.lp.n_vars())
            .map(|j| cm.lp.bounds(VarId(j)))
            .collect();
        let mut search = Search {
            cm,
            cfg,
            callback,
            simplex,
            root_bounds,
            applied: BTreeMap::new(),
            heap: BinaryHeap::new(),
            dive: None,
            incumbent: None,
            nodes: 0,
            numerical_prunes: 0,
            degraded_nodes: 0,
            trajectory: Vec::new(),
            // an:allow(AN001): §3.3 stall rule measures real elapsed time;
            // stall stops are recorded as `stopped_early`, never certified.
            last_improvement: Instant::now(),
            last_stall_value: f64::INFINITY,
            stopped_early: false,
            proven_bound: f64::NEG_INFINITY,
            budget,
            fault_plan: cfg.fault_plan.clone(),
            faults: Vec::new(),
            callback_panics: 0,
            resumed: false,
            lp_stats: LpSolveStats::default(),
        };
        if let Some(cp) = resume {
            search.resumed = true;
            search.incumbent = cp.incumbent;
            search.nodes = cp.nodes;
            search.numerical_prunes = cp.numerical_prunes;
            search.degraded_nodes = cp.degraded_nodes;
            // Only adopt a seconds-axis history: a deterministic-engine
            // checkpoint stores node counts, which must not be spliced
            // into this engine's wall-clock trajectory.
            if cp.traj_axis == TrajAxis::Seconds {
                search.trajectory = cp.trajectory;
            }
            search.last_stall_value = cp.last_stall_value;
            search.faults = cp.faults;
            for (changes, bound, depth) in cp.frontier {
                search.heap.push(ByBound(Node {
                    changes,
                    bound,
                    depth,
                }));
            }
        }
        search
    }

    fn fire_fault(&self, site: FaultSite) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.fire(site))
    }

    /// Applies a node's bound set (restoring root bounds first).
    fn apply_bounds(&mut self, node: &Node) -> MilpResult<()> {
        let mut target: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
        for &(v, lo, hi) in &node.changes {
            target.insert(v.0, (lo, hi));
        }
        // Restore vars no longer constrained.
        let stale: Vec<usize> = self
            .applied
            .keys()
            .filter(|k| !target.contains_key(k))
            .copied()
            .collect();
        for j in stale {
            let (lo, hi) = self.root_bounds[j];
            self.simplex.set_var_bounds(VarId(j), lo, hi)?;
            self.applied.remove(&j);
        }
        for (j, (lo, hi)) in target {
            self.simplex.set_var_bounds(VarId(j), lo, hi)?;
            self.applied.insert(j, ());
        }
        Ok(())
    }

    /// Min-space incumbent objective (∞ if none).
    fn incumbent_obj(&self) -> f64 {
        self.incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o)
    }

    fn record_incumbent(&mut self, values: Vec<f64>, min_obj: f64, start: Instant) {
        if min_obj < self.incumbent_obj() - 1e-12 {
            let improvement = if self.last_stall_value.is_finite() {
                (self.last_stall_value - min_obj).abs() / self.last_stall_value.abs().max(1.0)
            } else {
                f64::INFINITY
            };
            if improvement >= self.cfg.stall_improvement {
                // an:allow(AN001): stall-rule wall clock, as at `new`.
                self.last_improvement = Instant::now();
                self.last_stall_value = min_obj;
            }
            self.incumbent = Some((values, min_obj));
            let model_obj = self.cm.restore_objective(min_obj);
            self.trajectory
                .push((start.elapsed().as_secs_f64(), model_obj));
            self.cfg.metrics.incumbents.inc();
            self.cfg.tracer.event(
                "milp.incumbent",
                vec![
                    ("engine", "serial".to_string()),
                    ("objective", format!("{model_obj}")),
                    ("nodes", self.nodes.to_string()),
                ],
            );
        }
    }

    /// Checks global stop conditions. Returns true when the search should
    /// halt.
    fn budgets_exhausted(&mut self, start: Instant, in_hand: f64) -> bool {
        let _ = start;
        if self.budget.expired() {
            self.stopped_early = true;
            return true;
        }
        let stall_injected = self.fire_fault(FaultSite::StallNow);
        if stall_injected
            || self.cfg.stall_window.is_some_and(|w| {
                self.incumbent.is_some() && self.last_improvement.elapsed() >= w
            })
        {
            if stall_injected {
                self.faults.push(SolverFault::StallDetected);
            }
            self.stopped_early = true;
            return true;
        }
        if self.nodes >= self.budget.max_nodes().unwrap_or(usize::MAX) {
            self.stopped_early = true;
            return true;
        }
        if let Some(target) = self.cfg.target_objective {
            // Convert once to min-space (restore_objective is an involution).
            let target_min = self.cm.restore_objective(target);
            if self.incumbent_obj() <= target_min + crate::CERT_TOL {
                self.stopped_early = true;
                return true;
            }
        }
        // Gap-based stop (the bound of the node currently in hand counts
        // as open: it has not been explored yet).
        if let Some((_, inc)) = &self.incumbent {
            let bound = self.open_bound().min(in_hand);
            let gap = (inc - bound) / inc.abs().max(1.0);
            if gap <= self.cfg.rel_gap {
                self.proven_bound = bound;
                return true;
            }
        }
        false
    }

    /// Best (lowest) bound among open nodes.
    fn open_bound(&self) -> f64 {
        let mut b = f64::INFINITY;
        if let Some(top) = self.heap.peek() {
            b = b.min(top.0.bound);
        }
        if let Some(d) = &self.dive {
            b = b.min(d.bound);
        }
        b.min(self.incumbent_obj())
    }

    /// Runs the incumbent callback with panic containment: a panicking
    /// callback loses its proposal for this node (downgraded to "no
    /// incumbent"), and the panic is recorded as a [`SolverFault`];
    /// repeated panics disable the callback for the rest of the search.
    fn propose_guarded(&mut self, relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        if self.cfg.callback_every == 0 || self.callback_panics >= MAX_CALLBACK_PANICS {
            return None;
        }
        let inject = self.fire_fault(FaultSite::CallbackPanic);
        match propose_contained(self.callback, relaxation, inject) {
            Ok(proposal) => proposal,
            Err(fault) => {
                self.callback_panics += 1;
                self.faults.push(fault);
                None
            }
        }
    }

    fn next_node(&mut self) -> Option<Node> {
        if let Some(n) = self.dive.take() {
            return Some(n);
        }
        while let Some(ByBound(n)) = self.heap.pop() {
            if n.bound < self.incumbent_obj() - 1e-9 {
                return Some(n);
            }
        }
        None
    }

    fn run(&mut self, start: Instant) -> MilpResult<()> {
        // Seed the incumbent before the (potentially expensive) root
        // relaxation: domain callbacks can produce certified solutions from
        // structural knowledge alone, keeping the search anytime even when
        // the root LP consumes most of a tight budget.
        let origin = vec![0.0; self.cm.var_map.len()];
        if let Some((vals, model_obj)) = self.propose_guarded(&origin) {
            let min_obj = to_min_space(self.cm, model_obj);
            self.record_incumbent(vals, min_obj, start);
        }
        // Root node — unless this run resumes a checkpointed frontier, in
        // which case the stored open nodes already cover the tree.
        if !self.resumed {
            let root = Node {
                changes: Vec::new(),
                bound: f64::NEG_INFINITY,
                depth: 0,
            };
            self.dive = Some(root);
        }

        while let Some(node) = self.next_node() {
            if self.budgets_exhausted(start, node.bound) {
                // Keep the node's bound visible to the final gap report.
                self.heap.push(ByBound(node));
                return Ok(());
            }
            self.nodes += 1;
            self.cfg.metrics.nodes.inc();
            self.process(node, start)?;
        }
        // Tree exhausted: the incumbent (if any) is optimal.
        self.proven_bound = self.incumbent_obj();
        Ok(())
    }

    fn process(&mut self, node: Node, start: Instant) -> MilpResult<()> {
        self.apply_bounds(&node)?;
        // The simplex runs its own recovery ladder; what surfaces here is
        // either terminal or a verdict.
        let iters_before = self.simplex.iterations();
        let sol = match self.simplex.resolve() {
            Ok(s) => {
                self.lp_stats.record(
                    self.simplex.last_solve_warm(),
                    self.simplex.iterations() - iters_before,
                );
                s
            }
            Err(metaopt_lp::LpError::Fault(SolverFault::DeadlineExceeded)) => {
                // The wall-clock budget interrupted the LP mid-solve; keep
                // the node open so the final bound stays honest.
                self.faults.push(SolverFault::DeadlineExceeded);
                self.stopped_early = true;
                self.heap.push(ByBound(node));
                return Ok(());
            }
            Err(e)
                if e.is_recoverable() || matches!(e, metaopt_lp::LpError::IterationLimit) =>
            {
                // The LP exhausted its recovery ladder (or its pivot
                // budget) on this node: prune conservatively, record the
                // fault, keep searching.
                if let Some(f) = e.fault() {
                    self.faults.push(f.clone());
                }
                self.numerical_prunes += 1;
                return Ok(());
            }
            Err(e) => return Err(MilpError::Lp(e)),
        };
        match sol.status {
            SolveStatus::Infeasible => return Ok(()),
            SolveStatus::Unbounded => {
                // Only possible at the root of a bounded search; treated by
                // the caller via proven_bound = −∞ and no incumbent.
                self.proven_bound = f64::NEG_INFINITY;
                return Err(MilpError::Model(
                    "relaxation is unbounded; bound the outer variables".into(),
                ));
            }
            SolveStatus::Optimal => {}
        }
        // A degraded relaxation point is feasible-ish but *not* a valid
        // relaxation optimum: its objective must not prune the node or
        // tighten child bounds. Inherit the parent bound instead.
        let obj = if sol.degraded {
            self.degraded_nodes += 1;
            node.bound
        } else {
            sol.objective
        };
        if !sol.degraded && obj >= self.incumbent_obj() - 1e-9 {
            return Ok(()); // pruned by bound
        }

        // Incumbent callback on the relaxation point (panic-contained).
        if self.cfg.callback_every > 0 && (self.nodes - 1).is_multiple_of(self.cfg.callback_every) {
            let relax_vals = self.cm.extract_values(&sol.x);
            if let Some((vals, model_obj)) = self.propose_guarded(&relax_vals) {
                let min_obj = to_min_space(self.cm, model_obj);
                self.record_incumbent(vals, min_obj, start);
            }
        }

        // Find a violated branching object. Binary branching is preferred:
        // indicator structure usually dominates the conditional heuristics'
        // search space.
        let lp_x = &sol.x;
        match (
            self.most_fractional_binary(lp_x),
            self.most_violated_compl(lp_x),
        ) {
            (None, None) => {
                if sol.degraded {
                    // An ε-perturbed point is not trustworthy as an
                    // incumbent and offers nothing to branch on: prune
                    // conservatively (recorded in the degraded counters).
                    self.numerical_prunes += 1;
                } else {
                    // Integer & complementary feasible: true solution.
                    let vals = self.cm.extract_values(lp_x);
                    self.record_incumbent(vals, obj, start);
                }
            }
            (Some((v, value, _frac)), _) => {
                self.branch_binary(node, v, value, obj);
            }
            (None, Some((mult, slack, mval, sval))) => {
                self.branch_compl(node, mult, slack, mval, sval, obj);
            }
        }
        Ok(())
    }

    fn most_fractional_binary(&self, lp_x: &[f64]) -> Option<(VarId, f64, f64)> {
        most_fractional_binary(self.cm, self.cfg.int_tol, lp_x)
    }

    fn most_violated_compl(&self, lp_x: &[f64]) -> Option<(VarId, VarId, f64, f64)> {
        most_violated_compl(self.cm, self.cfg.compl_tol, lp_x)
    }

    fn branch_binary(&mut self, node: Node, v: VarId, value: f64, obj: f64) {
        let rounded = value.round().clamp(0.0, 1.0);
        let mut dive_changes = node.changes.clone();
        dive_changes.push((v, rounded, rounded));
        let other = 1.0 - rounded;
        let mut alt_changes = node.changes;
        alt_changes.push((v, other, other));
        self.dive = Some(Node {
            changes: dive_changes,
            bound: obj,
            depth: node.depth + 1,
        });
        self.heap.push(ByBound(Node {
            changes: alt_changes,
            bound: obj,
            depth: node.depth + 1,
        }));
    }

    fn branch_compl(
        &mut self,
        node: Node,
        mult: VarId,
        slack: VarId,
        mval: f64,
        sval: f64,
        obj: f64,
    ) {
        // Dive on the side closer to zero (least disruptive fix).
        let (fix_first, fix_second) = if mval <= sval {
            (mult, slack)
        } else {
            (slack, mult)
        };
        let mut dive_changes = node.changes.clone();
        dive_changes.push((fix_first, 0.0, 0.0));
        let mut alt_changes = node.changes;
        alt_changes.push((fix_second, 0.0, 0.0));
        self.dive = Some(Node {
            changes: dive_changes,
            bound: obj,
            depth: node.depth + 1,
        });
        self.heap.push(ByBound(Node {
            changes: alt_changes,
            bound: obj,
            depth: node.depth + 1,
        }));
    }

    fn finish(mut self, start: Instant) -> (MilpSolution, Option<Checkpoint>) {
        let bound_min = if self.stopped_early {
            self.open_bound()
        } else {
            self.proven_bound
        };
        // Snapshot the open frontier before it is consumed below: resuming
        // only makes sense for an interrupted search with open work left.
        let checkpoint = if self.stopped_early {
            let mut frontier: Vec<FrontierNode> = Vec::new();
            if let Some(d) = self.dive.take() {
                frontier.push((d.changes, d.bound, d.depth));
            }
            for ByBound(n) in self.heap.drain() {
                frontier.push((n.changes, n.bound, n.depth));
            }
            if frontier.is_empty() {
                None
            } else {
                Some(Checkpoint {
                    frontier,
                    incumbent: self.incumbent.clone(),
                    nodes: self.nodes,
                    numerical_prunes: self.numerical_prunes,
                    degraded_nodes: self.degraded_nodes,
                    trajectory: self.trajectory.clone(),
                    traj_axis: TrajAxis::Seconds,
                    last_stall_value: self.last_stall_value,
                    faults: self.faults.clone(),
                })
            }
        } else {
            None
        };
        let (status, values, objective) = match (&self.incumbent, self.stopped_early) {
            (Some((vals, obj)), early) => {
                let gap = (obj - bound_min) / obj.abs().max(1.0);
                let st = if !early || gap <= self.cfg.rel_gap {
                    MilpStatus::Optimal
                } else {
                    MilpStatus::Feasible
                };
                (st, vals.clone(), *obj)
            }
            (None, true) => (MilpStatus::NoSolution, Vec::new(), f64::NAN),
            (None, false) => (MilpStatus::Infeasible, Vec::new(), f64::NAN),
        };
        let rel_gap = if objective.is_nan() {
            f64::INFINITY
        } else {
            ((objective - bound_min) / objective.abs().max(1.0)).max(0.0)
        };
        let solution = MilpSolution {
            status,
            values,
            objective: self.cm.restore_objective(objective),
            best_bound: self.cm.restore_objective(bound_min),
            rel_gap,
            nodes: self.nodes,
            lp_iterations: self.simplex.iterations(),
            numerical_prunes: self.numerical_prunes,
            solve_time: start.elapsed(),
            trajectory: std::mem::take(&mut self.trajectory),
            faults: std::mem::take(&mut self.faults),
            degraded_nodes: self.degraded_nodes,
            lp_stats: self.lp_stats,
        };
        (solution, checkpoint)
    }
}

pub(crate) fn to_min_space(cm: &CompiledModel, model_obj: f64) -> f64 {
    // restore_objective is an involution (negate or identity).
    cm.restore_objective(model_obj)
}

/// The binary branching rule, shared by every tree-search engine: the
/// binary whose relaxation value is farthest from integral.
pub(crate) fn most_fractional_binary(
    cm: &CompiledModel,
    int_tol: f64,
    lp_x: &[f64],
) -> Option<(VarId, f64, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for b in &cm.binaries {
        let id = cm.lp_var(*b);
        let x = lp_x[id.0];
        let frac = (x - x.round()).abs();
        if frac > int_tol {
            match best {
                Some((_, _, bf)) if bf >= frac => {}
                _ => best = Some((id, x, frac)),
            }
        }
    }
    best
}

/// The SOS1 branching rule, shared by every tree-search engine: the
/// complementarity pair `(λ, s)` with the largest `min(λ, s)` violation.
pub(crate) fn most_violated_compl(
    cm: &CompiledModel,
    compl_tol: f64,
    lp_x: &[f64],
) -> Option<(VarId, VarId, f64, f64)> {
    let mut best: Option<(VarId, VarId, f64, f64, f64)> = None;
    for &(m, s) in &cm.compl_pairs {
        let mv = lp_x[m.0];
        let sv = lp_x[s.0];
        let viol = mv.min(sv);
        if viol > compl_tol * (1.0 + mv.max(sv)) {
            match best {
                Some((.., bviol)) if bviol >= viol => {}
                _ => best = Some((m, s, mv, sv, viol)),
            }
        }
    }
    best.map(|(m, s, mv, sv, _)| (m, s, mv, sv))
}

/// Runs an incumbent callback with panic containment (shared by every
/// tree-search engine): a panicking callback loses its proposal and the
/// panic surfaces as a structured [`SolverFault`] for the caller's
/// bookkeeping.
pub(crate) fn propose_contained(
    callback: &mut dyn IncumbentCallback,
    relaxation: &[f64],
    inject: bool,
) -> Result<Option<(Vec<f64>, f64)>, SolverFault> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected incumbent-callback panic");
        }
        callback.propose(relaxation)
    }));
    outcome.map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(std::string::ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".into());
        SolverFault::CallbackPanic(msg)
    })
}
