//! Diverse adversarial inputs (§5 of the paper): "users can search for
//! diverse kinds of bad inputs by iteratively removing the previously-found
//! inputs from the search space of subsequent iterations."
//!
//! Each iteration excludes an L∞ ball around the previous answer, so an
//! operator sees *structurally different* failure modes — useful for
//! deciding between heuristics or pre-computing safe fallbacks.
//!
//! ```sh
//! cargo run --release --example diverse_inputs
//! ```

use metaopt::core::{find_diverse_inputs, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt::te::TeInstance;
use metaopt::topology::synth::circulant;

fn main() {
    let topo = circulant(6, 1, 100.0);
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 10.0 };

    let results = find_diverse_inputs(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(15.0),
        3,    // how many diverse inputs
        25.0, // L∞ exclusion radius between them
    )
    .unwrap();

    println!(
        "{} diverse adversarial inputs for DP(T=10) on a 6-ring:\n",
        results.len()
    );
    for (i, r) in results.iter().enumerate() {
        let active: Vec<String> = r
            .demands
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 1e-6)
            .map(|(k, &d)| {
                let (s, t) = inst.pairs[k];
                format!("{}→{}:{:.0}", s.0, t.0, d)
            })
            .collect();
        println!(
            "  input #{i}: normalized gap {:.4} ({:?})\n    demands: {}",
            r.verified_gap / norm,
            r.status,
            active.join("  ")
        );
    }
    if results.len() >= 2 {
        let linf: f64 = results[0]
            .demands
            .iter()
            .zip(&results[1].demands)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("\n  L∞ distance between inputs #0 and #1: {linf:.1} (radius was 25)");
    }
}
