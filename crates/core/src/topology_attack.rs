//! Adversarial *topology changes* (§5 of the paper).
//!
//! "The metaoptimization in (1) can be used to find topology changes that
//! cause the worst-case gap for a specific heuristic instead of focusing
//! only on the adversarial demands."
//!
//! Here the leader degrades edge capacities (e.g. partial fiber cuts or
//! maintenance drain) while the demand matrix is held fixed: each capacity
//! becomes an outer variable `c_e ∈ [(1−δ)·c⁰_e, c⁰_e]`, optionally with a
//! budget on the total capacity removed. The follower problems (OPT and the
//! heuristic) see the capacities as constants, so the same KKT machinery
//! applies unchanged.

use crate::finder::{FinderConfig, HeuristicSpec, OptEncoding};
use crate::result::GapResult;
use crate::{CoreError, CoreResult};
use metaopt_milp::{solve_with_callback, IncumbentCallback};
use metaopt_model::{kkt, LinExpr, Model, ModelStats, ObjSense, Sense, VarRef};
use metaopt_te::flow::feasible_flow_inner_caps;
use metaopt_te::{opt::opt_max_flow, TeInstance};
use metaopt_topology::EdgeId;
use std::time::Instant;

/// Capacity-degradation attack parameters.
#[derive(Debug, Clone)]
pub struct TopologyAttack {
    /// Maximum per-edge degradation fraction (`c_e >= (1−δ)·c⁰_e`).
    pub degrade_frac: f64,
    /// Optional bound on the *total* capacity removed across all edges.
    pub total_budget: Option<f64>,
}

impl TopologyAttack {
    /// An attack allowed to remove up to `frac` of each edge.
    pub fn per_edge(frac: f64) -> Self {
        TopologyAttack {
            degrade_frac: frac,
            total_budget: None,
        }
    }

    /// Adds a total-removal budget.
    pub fn with_total_budget(mut self, budget: f64) -> Self {
        self.total_budget = Some(budget);
        self
    }
}

/// Result of a topology attack: the degraded capacities plus the usual
/// certified gap bookkeeping.
#[derive(Debug, Clone)]
pub struct TopologyAttackResult {
    /// Chosen capacity per edge.
    pub capacities: Vec<f64>,
    /// The underlying gap result (demands field holds the *fixed* demand
    /// matrix for reference).
    pub gap: GapResult,
}

/// Builds an instance whose topology carries the given capacities (paths
/// are hop-based and therefore unchanged).
fn with_capacities(inst: &TeInstance, caps: &[f64]) -> CoreResult<TeInstance> {
    let mut out = inst.clone();
    for (e, &c) in caps.iter().enumerate() {
        out.topo
            .set_capacity(EdgeId(e), c.max(1e-9))
            .map_err(|te| CoreError::Config(te.to_string()))?;
    }
    Ok(out)
}

/// Incumbent callback for capacity attacks: vet candidate capacity vectors
/// with the real algorithms on a re-capacitated instance.
struct CapacityEvaluator<'a> {
    inst: &'a TeInstance,
    spec: &'a HeuristicSpec,
    demands: &'a [f64],
    cap_indices: Vec<usize>,
    cap_lo: Vec<f64>,
    cap_hi: Vec<f64>,
    n_model_vars: usize,
    best: Option<(Vec<f64>, f64)>,
    sweep_cursor: usize,
    evals_per_call: usize,
    calls: usize,
}

impl CapacityEvaluator<'_> {
    fn certify(&self, caps: &[f64]) -> Option<f64> {
        let inst = with_capacities(self.inst, caps).ok()?;
        let heu = self.spec.evaluate(&inst, self.demands).ok()??;
        let opt = opt_max_flow(&inst, self.demands).ok()?.total_flow;
        Some(opt - heu)
    }

    fn consider(&mut self, caps: Vec<f64>, evals: &mut usize) {
        *evals += 1;
        if let Some(g) = self.certify(&caps) {
            if self.best.as_ref().is_none_or(|(_, bg)| g > *bg) {
                self.best = Some((caps, g));
            }
        }
    }
}

impl IncumbentCallback for CapacityEvaluator<'_> {
    fn propose(&mut self, relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        self.calls += 1;
        let mut evals = 0usize;
        let before = self.best.as_ref().map(|(_, g)| *g);

        // Relaxation capacities, clamped to the attack box.
        let relax: Vec<f64> = self
            .cap_indices
            .iter()
            .enumerate()
            .map(|(e, &i)| relaxation[i].clamp(self.cap_lo[e], self.cap_hi[e]))
            .collect();
        self.consider(relax, &mut evals);
        if self.calls <= 2 {
            // Extremes: no attack / full per-edge degradation.
            self.consider(self.cap_hi.clone(), &mut evals);
            self.consider(self.cap_lo.clone(), &mut evals);
        }
        // Round-robin coordinate toggling between box ends.
        if let Some((base, _)) = self.best.clone() {
            let n = base.len();
            let mut cand = base;
            // One pass per call: avoids spinning when the attack box is
            // degenerate (zero degradation ⇒ lo == hi == current value).
            let mut visited = 0usize;
            while evals < self.evals_per_call && visited < n {
                visited += 1;
                let e = self.sweep_cursor % n;
                self.sweep_cursor = self.sweep_cursor.wrapping_add(1);
                for lv in [self.cap_lo[e], self.cap_hi[e]] {
                    if (lv - cand[e]).abs() > 1e-12 && evals < self.evals_per_call {
                        let mut probe = cand.clone();
                        probe[e] = lv;
                        self.consider(probe, &mut evals);
                    }
                }
                if let Some((b, _)) = &self.best {
                    cand = b.clone();
                }
            }
        }

        let (caps, gap) = self.best.as_ref()?;
        if before.is_some_and(|b| *gap <= b + 1e-12) {
            return None;
        }
        let mut values = vec![0.0; self.n_model_vars];
        for (e, &i) in self.cap_indices.iter().enumerate() {
            values[i] = caps[e];
        }
        Some((values, *gap))
    }
}

/// Finds the capacity degradation (within `attack`'s limits) that maximizes
/// `OPT − Heuristic` for a *fixed* demand matrix.
pub fn find_adversarial_topology(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    demands: &[f64],
    attack: &TopologyAttack,
    cfg: &FinderConfig,
) -> CoreResult<TopologyAttackResult> {
    inst.check_demands(demands)
        .map_err(|e| CoreError::Config(e.to_string()))?;
    if !(0.0..=1.0).contains(&attack.degrade_frac) {
        return Err(CoreError::Config(format!(
            "degrade_frac {} outside [0, 1]",
            attack.degrade_frac
        )));
    }
    // an:allow(AN001): reporting-only build timer, mirrors `find_gap`.
    let t0 = Instant::now();
    let mut model = Model::new();

    // Capacity variables (the leader's move).
    let mut cap_vars = Vec::with_capacity(inst.topo.n_edges());
    let mut cap_lo = Vec::new();
    let mut cap_hi = Vec::new();
    for e in inst.topo.edges() {
        let c0 = inst.topo.capacity(e);
        let lo = c0 * (1.0 - attack.degrade_frac);
        cap_vars.push(model.add_var(format!("cap[{}]", e.0), lo, c0)?);
        cap_lo.push(lo);
        cap_hi.push(c0);
    }
    if let Some(budget) = attack.total_budget {
        // Σ (c⁰_e − c_e) <= budget
        let mut removed = LinExpr::constant(inst.topo.total_capacity());
        for &cv in &cap_vars {
            removed.add_term(cv, -1.0);
        }
        model.constrain_named("attack::budget", removed, Sense::Le, budget)?;
    }
    let cap_exprs: Vec<LinExpr> = cap_vars.iter().map(|&v| LinExpr::from(v)).collect();
    let d_exprs: Vec<LinExpr> = demands.iter().map(|&v| LinExpr::constant(v)).collect();

    // Inner OPT over symbolic capacities.
    let (mut opt_inner, opt_flows) =
        feasible_flow_inner_caps(&mut model, "opt", inst, &d_exprs, &cap_exprs)?;
    let opt_total = opt_flows.total_flow();
    opt_inner.set_objective(ObjSense::Max, opt_total.clone());
    match cfg.opt_encoding {
        OptEncoding::Kkt => {
            kkt::append_kkt(&mut model, &opt_inner, cfg.dual_bound)?;
        }
        OptEncoding::PrimalOnly => {
            kkt::append_primal(&mut model, &opt_inner)?;
        }
    }

    // Inner heuristic over symbolic capacities. Demands are constants, so
    // we pin them through fixed variables and reuse the demand-space
    // encoders (their pin indicators collapse to constants under B&B).
    let d_fixed: Vec<VarRef> = demands
        .iter()
        .enumerate()
        .map(|(k, &v)| model.add_var(format!("dfix[{k}]"), v, v))
        .collect::<Result<_, _>>()?;
    let heu_value = match spec {
        HeuristicSpec::DemandPinning { threshold } => {
            let d_hi = demands.iter().copied().fold(0.0, f64::max).max(1.0);
            encode_dp_with_caps(
                &mut model,
                inst,
                &d_fixed,
                &cap_exprs,
                *threshold,
                d_hi,
                cfg.epsilon,
                cfg.dual_bound,
            )?
        }
        HeuristicSpec::Pop { partitions, mode } => {
            // POP's per-partition capacity is c_e / n_parts — still linear.
            encode_pop_with_caps(
                &mut model,
                inst,
                &d_fixed,
                &cap_exprs,
                partitions,
                *mode,
                cfg.dual_bound,
            )?
        }
    };

    let mut objective = opt_total.clone();
    objective -= heu_value;
    model.set_objective(ObjSense::Max, objective)?;

    let stats = ModelStats {
        n_vars: model.n_vars() + model.n_complementarities(),
        n_linear: model.n_constraints() + model.n_complementarities(),
        n_sos: model.n_complementarities(),
        n_binary: (0..model.n_vars())
            .filter(|&i| model.var_kind(VarRef(i)) == metaopt_model::VarKind::Binary)
            .count(),
    };
    let build_time = t0.elapsed();

    let mut cb = CapacityEvaluator {
        inst,
        spec,
        demands,
        cap_indices: cap_vars.iter().map(|v| v.0).collect(),
        cap_lo: cap_lo.clone(),
        cap_hi: cap_hi.clone(),
        n_model_vars: model.n_vars(),
        best: None,
        sweep_cursor: 0,
        evals_per_call: cfg.callback_evals_per_node,
        calls: 0,
    };
    let sol = solve_with_callback(&model, &cfg.milp, &mut cb)?;

    let capacities: Vec<f64> = if sol.values.is_empty() {
        cap_hi.clone()
    } else {
        cap_vars
            .iter()
            .enumerate()
            .map(|(e, v)| sol.values[v.0].clamp(cap_lo[e], cap_hi[e]))
            .collect()
    };
    let attacked = with_capacities(inst, &capacities)?;
    let verified_gap = match spec.evaluate(&attacked, demands)? {
        Some(heu) => opt_max_flow(&attacked, demands)?.total_flow - heu,
        None => f64::NAN,
    };

    Ok(TopologyAttackResult {
        capacities,
        gap: GapResult {
            demands: demands.to_vec(),
            model_gap: sol.objective,
            verified_gap,
            normalized_gap: verified_gap / inst.topo.total_capacity(),
            upper_bound: sol.best_bound,
            status: sol.status,
            stats,
            nodes: sol.nodes,
            build_time,
            solve_time: sol.solve_time,
            trajectory: sol.trajectory,
            degradation: metaopt_resilience::DegradationLevel::None,
            faults: sol.faults,
        },
    })
}

/// DP encoding over symbolic capacities: same as [`encode_dp`] but the
/// follower's capacity rows reference `cap_exprs`.
#[allow(clippy::too_many_arguments)]
fn encode_dp_with_caps(
    model: &mut Model,
    inst: &TeInstance,
    d: &[VarRef],
    cap_exprs: &[LinExpr],
    threshold: f64,
    d_hi: f64,
    epsilon: f64,
    dual_bound: f64,
) -> CoreResult<LinExpr> {
    // Reuse encode_dp by temporarily swapping the instance's capacities is
    // not possible (they live in the topology), so we mirror its structure
    // over `feasible_flow_inner_caps`.
    let _ = epsilon;
    let t = threshold.min(d_hi);
    let d_exprs: Vec<LinExpr> = d.iter().map(|&v| LinExpr::from(v)).collect();
    let (mut inner, flows) =
        feasible_flow_inner_caps(model, "dp", inst, &d_exprs, cap_exprs)?;
    // Demands are fixed, so the pin set is known at build time — no
    // binaries needed: emit hard pinning rows for pinned pairs only.
    for (k, &dk) in d.iter().enumerate().take(inst.n_pairs()) {
        let (lo, hi) = model.var_bounds(dk);
        debug_assert!((lo - hi).abs() < 1e-12, "demands must be fixed");
        let pinned = lo <= t;
        if !pinned {
            continue;
        }
        if inst.paths[k].len() > 1 {
            let mut off_sp = LinExpr::zero();
            for &f in flows.per_pair[k].iter().skip(1) {
                off_sp.add_term(f, 1.0);
            }
            inner.constrain_named(format!("dp::off_sp[{k}]"), off_sp, Sense::Le)?;
        }
        // d_k − f_k^{p̂} <= 0
        let mut on_sp = LinExpr::from(dk);
        on_sp.add_term(flows.per_pair[k][0], -1.0);
        inner.constrain_named(format!("dp::on_sp[{k}]"), on_sp, Sense::Le)?;
    }
    let total = flows.total_flow();
    inner.set_objective(ObjSense::Max, total.clone());
    kkt::append_kkt(model, &inner, dual_bound)?;
    Ok(total)
}

/// POP encoding over symbolic capacities.
fn encode_pop_with_caps(
    model: &mut Model,
    inst: &TeInstance,
    d: &[VarRef],
    cap_exprs: &[LinExpr],
    partitions: &[metaopt_te::pop::Partition],
    mode: crate::encode_pop::PopMode,
    dual_bound: f64,
) -> CoreResult<LinExpr> {
    use crate::encode_pop::PopMode;
    let mut per_instance = Vec::with_capacity(partitions.len());
    for (r, part) in partitions.iter().enumerate() {
        let factor = 1.0 / part.n_parts as f64;
        let mut instance_total = LinExpr::zero();
        for c in 0..part.n_parts {
            let members = part.members(c);
            if members.is_empty() {
                continue;
            }
            let sub = inst.restrict(&members, 1.0);
            let d_exprs: Vec<LinExpr> = members.iter().map(|&k| LinExpr::from(d[k])).collect();
            let caps: Vec<LinExpr> = cap_exprs.iter().map(|e| e.scaled(factor)).collect();
            let (mut inner, flows) = feasible_flow_inner_caps(
                model,
                &format!("pop[{r}][{c}]"),
                &sub,
                &d_exprs,
                &caps,
            )?;
            let total = flows.total_flow();
            inner.set_objective(ObjSense::Max, total.clone());
            kkt::append_kkt(model, &inner, dual_bound)?;
            instance_total += total;
        }
        per_instance.push(instance_total);
    }
    Ok(match mode {
        PopMode::Average => {
            let w = 1.0 / per_instance.len() as f64;
            let mut avg = LinExpr::zero();
            for e in &per_instance {
                avg += e.scaled(w);
            }
            avg
        }
        PopMode::TailWorst { rank } => {
            if rank >= per_instance.len() {
                return Err(CoreError::Config(format!(
                    "tail rank {rank} >= {} instantiations",
                    per_instance.len()
                )));
            }
            let vmax = inst.topo.total_capacity();
            let sorted = metaopt_model::sortnet::sort_ascending(
                model,
                "pop::tail",
                per_instance,
                0.0,
                vmax,
            )?;
            sorted[rank].clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_milp::MilpStatus;
    use metaopt_topology::synth::figure1_triangle;

    fn fig1() -> TeInstance {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
    }

    /// With demands (50, 100, 100) and threshold 50 the baseline gap is 50;
    /// degrading capacity cannot reduce it and the attack may find worse.
    #[test]
    fn capacity_attack_never_helps_the_heuristic() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let demands = vec![50.0, 100.0, 100.0];
        let r = find_adversarial_topology(
            &inst,
            &spec,
            &demands,
            &TopologyAttack::per_edge(0.3),
            &FinderConfig::budgeted(10.0),
        )
        .unwrap();
        assert!(r.gap.verified_gap >= 50.0 - 1e-6, "{}", r.gap.verified_gap);
        assert!(r.capacities.iter().all(|&c| (70.0 - 1e-9..=100.0 + 1e-9).contains(&c)));
        assert!(r.gap.certification_error() < 1e-5);
    }

    /// A zero-degradation attack reproduces the baseline gap exactly.
    #[test]
    fn zero_attack_is_baseline() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let demands = vec![50.0, 100.0, 100.0];
        let r = find_adversarial_topology(
            &inst,
            &spec,
            &demands,
            &TopologyAttack::per_edge(0.0),
            &FinderConfig::budgeted(5.0),
        )
        .unwrap();
        assert!((r.gap.verified_gap - 50.0).abs() < 1e-5, "{}", r.gap.verified_gap);
        assert!(matches!(
            r.gap.status,
            MilpStatus::Optimal | MilpStatus::Feasible
        ));
    }

    /// The budget constraint limits total removed capacity.
    #[test]
    fn budget_respected() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let demands = vec![50.0, 100.0, 100.0];
        let r = find_adversarial_topology(
            &inst,
            &spec,
            &demands,
            &TopologyAttack::per_edge(0.5).with_total_budget(20.0),
            &FinderConfig::budgeted(10.0),
        )
        .unwrap();
        let removed: f64 = r
            .capacities
            .iter()
            .enumerate()
            .map(|(e, &c)| inst.topo.capacity(EdgeId(e)) - c)
            .sum();
        assert!(removed <= 20.0 + 1e-6, "removed {removed}");
    }
}
